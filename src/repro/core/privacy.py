"""Privacy metrics and degrees (paper Sec. II-C).

The disclosure metric for owner ``t_j`` is the attacker's average success
probability over published positives:

    Pr(M(·,j) | M'(·,j)) = 1 − fp_j

where ``fp_j`` is the false-positive rate of the owner's published provider
list.  The *success ratio* of a constructed index is the fraction of owners
whose realized ``fp_j`` meets their requested degree (``fp_j ≥ ǫ_j``) -- the
headline metric of Fig. 4 and Fig. 5.

Privacy degrees (Table II) are represented by :class:`PrivacyDegree`;
:func:`classify_degree` maps empirical attack measurements onto them the way
the paper's analysis does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ModelError
from repro.core.model import MembershipMatrix

__all__ = [
    "PrivacyDegree",
    "PrivacyReport",
    "published_false_positive_rates",
    "attacker_confidences",
    "success_ratio",
    "evaluate_index",
    "classify_degree",
]


class PrivacyDegree(enum.Enum):
    """The four degrees of paper Sec. II-C, ordered strongest to weakest."""

    UNLEAKED = "unleaked"
    EPS_PRIVATE = "eps-private"
    NO_GUARANTEE = "no-guarantee"
    NO_PROTECT = "no-protect"


@dataclass
class PrivacyReport:
    """Per-owner privacy measurements of one published index."""

    false_positive_rates: np.ndarray  # fp_j per owner
    attacker_confidences: np.ndarray  # 1 - fp_j per owner
    epsilons: np.ndarray
    success_ratio: float  # fraction of owners with fp_j >= eps_j

    @property
    def n_owners(self) -> int:
        return len(self.false_positive_rates)

    def violations(self) -> np.ndarray:
        """Owner ids whose privacy requirement is not met."""
        return np.nonzero(self.false_positive_rates < self.epsilons)[0]


def published_false_positive_rates(
    matrix: MembershipMatrix, published: np.ndarray
) -> np.ndarray:
    """``fp_j`` for every owner from the true matrix and published ``M'``.

    Owners with an empty published list get fp = 1.0 (nothing disclosed).
    """
    published = np.asarray(published)
    if published.shape != (matrix.n_providers, matrix.n_owners):
        raise ModelError(
            f"published matrix shape {published.shape} does not match "
            f"({matrix.n_providers}, {matrix.n_owners})"
        )
    dense_true = matrix.to_dense()
    if np.any((dense_true == 1) & (published == 0)):
        raise ModelError("published index dropped a true positive (recall violation)")
    published_counts = published.sum(axis=0).astype(float)
    true_counts = dense_true.sum(axis=0).astype(float)
    false_counts = published_counts - true_counts
    with np.errstate(divide="ignore", invalid="ignore"):
        fp = false_counts / published_counts
    return np.where(published_counts == 0, 1.0, fp)


def attacker_confidences(false_positive_rates: np.ndarray) -> np.ndarray:
    """Primary-attack success probability per owner: ``1 − fp_j``."""
    return 1.0 - np.asarray(false_positive_rates, dtype=float)


def success_ratio(
    false_positive_rates: np.ndarray, epsilons: np.ndarray
) -> float:
    """Fraction of owners whose privacy requirement ``fp_j ≥ ǫ_j`` holds."""
    fp = np.asarray(false_positive_rates, dtype=float)
    eps = np.asarray(epsilons, dtype=float)
    if fp.shape != eps.shape:
        raise ModelError("fp/epsilon shapes must match")
    if fp.size == 0:
        return 1.0
    return float(np.mean(fp >= eps))


def evaluate_index(
    matrix: MembershipMatrix, published: np.ndarray, epsilons: np.ndarray
) -> PrivacyReport:
    """Full privacy evaluation of one published index."""
    fp = published_false_positive_rates(matrix, published)
    eps = np.asarray(epsilons, dtype=float)
    return PrivacyReport(
        false_positive_rates=fp,
        attacker_confidences=attacker_confidences(fp),
        epsilons=eps,
        success_ratio=success_ratio(fp, eps),
    )


def classify_degree(
    confidences: np.ndarray,
    epsilons: np.ndarray,
    tolerance: float = 0.02,
    certainty_threshold: float = 0.999,
    required_fraction: float = 1.0,
) -> PrivacyDegree:
    """Classify empirical attack results into a privacy degree (Table II).

    * every attack fully certain  → NO_PROTECT;
    * at least ``required_fraction`` of owners have confidence ≤ 1 − ǫ_j
      (within ``tolerance``) → EPS_PRIVATE.  ǫ-PPI's guarantee is statistical
      (Thm. 3.1 holds with success ratio γ), so Table II experiments pass the
      configured γ here;
    * otherwise → NO_GUARANTEE (a bound holds for some owners but not
      dependably, i.e. the achieved leakage is unpredictable).
    """
    conf = np.asarray(confidences, dtype=float)
    eps = np.asarray(epsilons, dtype=float)
    if conf.shape != eps.shape:
        raise ModelError("confidence/epsilon shapes must match")
    if not 0.0 < required_fraction <= 1.0:
        raise ModelError(
            f"required_fraction must be in (0, 1], got {required_fraction}"
        )
    if conf.size == 0:
        return PrivacyDegree.UNLEAKED
    if np.all(conf >= certainty_threshold):
        return PrivacyDegree.NO_PROTECT
    satisfied = np.mean(conf <= (1.0 - eps) + tolerance)
    if satisfied >= required_fraction:
        return PrivacyDegree.EPS_PRIVATE
    return PrivacyDegree.NO_GUARANTEE
