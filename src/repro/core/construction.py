"""Centralized (reference) ǫ-PPI construction.

This is the *computation model* of paper Sec. III run in one process:

    frequencies σ → policy β* → identity mixing (Eq. 6/7) → final β
    → randomized publication (Eq. 2) → published index M'

The distributed realization in :mod:`repro.protocol` computes the same
function securely (SecSumShare + CountBelow + local publication) and the test
suite checks the two agree distributionally.  Keeping a trusted reference
implementation is what lets every secure-path test assert "same β vector,
same mixing decisions" without re-deriving the math.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConstructionError
from repro.core.index import PPIIndex
from repro.core.mixing import MixingResult, mix_betas
from repro.core.model import InformationNetwork, MembershipMatrix
from repro.core.policies import BetaPolicy, ChernoffPolicy
from repro.core.privacy import PrivacyReport, evaluate_index
from repro.core.publication import publish_matrix

__all__ = ["ConstructionResult", "construct_epsilon_ppi", "compute_betas"]


@dataclass
class ConstructionResult:
    """Everything produced by one ConstructPPI run."""

    index: PPIIndex
    policy_betas: np.ndarray  # β* straight from the policy (pre-mixing)
    mixing: MixingResult  # final β + mixing diagnostics
    report: PrivacyReport  # realized privacy of the published index

    @property
    def betas(self) -> np.ndarray:
        """Final publishing probabilities used by providers."""
        return self.mixing.betas


def compute_betas(
    matrix: MembershipMatrix,
    epsilons: np.ndarray,
    policy: BetaPolicy,
    rng: np.random.Generator,
    mixing_enabled: bool = True,
) -> tuple[np.ndarray, MixingResult]:
    """Phase 1 of construction: σ → β* → mixed β (Eq. 3-7)."""
    epsilons = np.asarray(epsilons, dtype=float)
    if epsilons.shape != (matrix.n_owners,):
        raise ConstructionError(
            f"need one epsilon per owner ({matrix.n_owners}), got {epsilons.shape}"
        )
    sigmas = matrix.sigmas()
    policy_betas = policy.beta_vector(sigmas, epsilons, matrix.n_providers)
    mixing = mix_betas(
        policy_betas, epsilons, rng, sigmas=sigmas, enabled=mixing_enabled
    )
    return policy_betas, mixing


def construct_epsilon_ppi(
    network: InformationNetwork,
    policy: BetaPolicy | None = None,
    rng: np.random.Generator | None = None,
    mixing_enabled: bool = True,
) -> ConstructionResult:
    """``ConstructPPI({ǫ_j})``: build the personalized index for a network.

    Defaults follow the paper's recommended configuration: Chernoff policy
    with γ = 0.9.
    """
    if network.n_owners == 0:
        raise ConstructionError("cannot construct an index over zero owners")
    policy = policy if policy is not None else ChernoffPolicy(gamma=0.9)
    rng = rng if rng is not None else np.random.default_rng()
    matrix = network.membership_matrix()
    epsilons = network.epsilons()

    policy_betas, mixing = compute_betas(matrix, epsilons, policy, rng, mixing_enabled)
    published = publish_matrix(matrix, mixing.betas, rng)
    index = PPIIndex(published, owner_names=[o.name for o in network.owners])
    report = evaluate_index(matrix, published, epsilons)
    return ConstructionResult(
        index=index,
        policy_betas=policy_betas,
        mixing=mixing,
        report=report,
    )
