"""Randomized publication (paper Eq. 2, phase 2 of construction).

Each provider independently publishes its private membership bit per owner:

* ``M(i, j) = 1`` is always published as ``M'(i, j) = 1`` (truthful rule --
  this is what guarantees 100 % query recall);
* ``M(i, j) = 0`` is flipped to ``M'(i, j) = 1`` with probability β_j
  (false-positive rule -- the source of privacy).

Two equivalent implementations are provided:

* :func:`publish_matrix` -- the exact per-cell Bernoulli process, used by the
  end-to-end system and the distributed protocol (each provider flips its own
  row);
* :func:`sample_false_positive_counts` -- the per-identity Binomial shortcut
  used by the large-scale effectiveness experiments: since the m − f_j
  negative providers flip i.i.d., the number of false positives is exactly
  ``Binomial(m − f_j, β_j)``.  Sampling the count directly is
  distribution-identical to flipping cells and lets Fig. 4/5 sweep thousands
  of identities at 10,000 providers cheaply.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.errors import ConstructionError
from repro.core.model import MembershipMatrix

__all__ = [
    "publish_matrix",
    "publish_provider_row",
    "sample_false_positive_counts",
    "false_positive_rates",
]


def publish_provider_row(
    private_row: np.ndarray, betas: Sequence[float], rng: np.random.Generator
) -> np.ndarray:
    """One provider's published vector from its private vector (Eq. 2).

    This is the only publication primitive a real provider runs: it needs its
    own row and the public β vector, nothing else.
    """
    private_row = np.asarray(private_row, dtype=np.uint8)
    betas = np.asarray(betas, dtype=float)
    if private_row.shape != betas.shape:
        raise ConstructionError(
            f"row has {private_row.shape} entries but betas has {betas.shape}"
        )
    if np.any((betas < 0.0) | (betas > 1.0)):
        raise ConstructionError("beta values must lie in [0, 1]")
    flips = rng.random(private_row.shape) < betas
    return np.where(private_row == 1, 1, flips.astype(np.uint8))


def publish_matrix(
    matrix: MembershipMatrix, betas: Sequence[float], rng: np.random.Generator
) -> np.ndarray:
    """Full published matrix ``M'`` (dense uint8, providers x owners).

    One whole-matrix Bernoulli draw (``rng.random(shape) < betas``): the
    generator fills in C order, so this consumes the *identical* uniform
    stream as the per-provider :func:`publish_provider_row` loop it
    replaces -- bit-for-bit the same output for the same seed, at a
    fraction of the Python overhead (``tests/core/test_publication.py``
    pins both the stream identity and the Binomial marginals).
    """
    betas = np.asarray(betas, dtype=float)
    if betas.shape != (matrix.n_owners,):
        raise ConstructionError(
            f"need one beta per owner ({matrix.n_owners}), got shape {betas.shape}"
        )
    if np.any((betas < 0.0) | (betas > 1.0)):
        raise ConstructionError("beta values must lie in [0, 1]")
    dense = matrix.to_dense()
    flips = rng.random(dense.shape) < betas
    return np.where(dense == 1, np.uint8(1), flips.astype(np.uint8))


def sample_false_positive_counts(
    frequencies: np.ndarray,
    betas: np.ndarray,
    m: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample per-identity false-positive counts ``X_j ~ Binomial(m−f_j, β_j)``."""
    frequencies = np.asarray(frequencies)
    betas = np.asarray(betas, dtype=float)
    if frequencies.shape != betas.shape:
        raise ConstructionError("frequencies/betas shapes must match")
    if np.any(frequencies > m) or np.any(frequencies < 0):
        raise ConstructionError("frequencies must lie in [0, m]")
    negatives = m - frequencies
    return rng.binomial(negatives.astype(np.int64), betas)


def false_positive_rates(
    frequencies: np.ndarray, false_positives: np.ndarray
) -> np.ndarray:
    """``fp_j = X_j / (X_j + f_j)`` -- the privacy metric denominator is the
    full published positive list (paper Sec. II-C).

    Identities with no published positives at all (f = 0 and X = 0) get
    fp = 1.0: an empty result list discloses nothing.
    """
    frequencies = np.asarray(frequencies, dtype=float)
    false_positives = np.asarray(false_positives, dtype=float)
    published = frequencies + false_positives
    with np.errstate(divide="ignore", invalid="ignore"):
        fp = false_positives / published
    return np.where(published == 0, 1.0, fp)
