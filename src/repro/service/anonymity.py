"""Searcher anonymity: mix-chain query routing (paper Sec. II-B, ref [20]).

The paper's threat model names *searcher anonymity* -- hiding which owner a
searcher queried for, and who is searching -- as a privacy goal handled by
"various anonymity protocols [20]" (Wright et al.'s analysis of anonymous
protocol degradation).  This module provides that layer over the network
simulator:

* :class:`RelayNode` -- a mix relay: unwraps one onion layer, remembers the
  return path for the flow, forwards after a batching delay;
* :class:`AnonymousQueryClient` -- wraps a PPI query in an onion over a
  chosen relay chain and routes the reply back through it;
* :func:`predecessor_attack_probability` -- the [20] degradation result:
  with a fraction ``f`` of relays compromised, repeated rounds deanonymize
  the initiator with probability ``1 − (1 − f²)^rounds`` for 2+-hop chains
  (the attacker needs the first relay *and* an observation point).

Layered encryption is *modeled*, not implemented: payloads are nested
tuples only the intended relay inspects (the simulator is single-process;
what we measure is anonymity-set behaviour, hop latency and the
degradation curve, not cryptographic strength -- consistent with how the
substitution table in DESIGN.md treats crypto substrates).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.simulator import Node
from repro.net.transport import Message

__all__ = [
    "ONION",
    "ONION_REPLY",
    "OnionLayer",
    "RelayNode",
    "AnonymousQueryClient",
    "predecessor_attack_probability",
]

ONION = "anon/onion"
ONION_REPLY = "anon/onion-reply"

# Batching delay per relay (mixes traffic, costs latency).
RELAY_DELAY_S = 0.002
LAYER_BITS = 256  # wire overhead per onion layer


@dataclass(frozen=True)
class OnionLayer:
    """One layer: the next hop and the (opaque) inner payload."""

    next_hop: int
    inner: object


class RelayNode(Node):
    """A mix relay.

    Forward path: strip one layer, remember ``flow_id -> previous hop``,
    forward inward after the batching delay.  Reply path: look the flow up
    and send the reply back outward.  A compromised relay additionally
    logs (previous hop, flow) pairs -- the observations the predecessor
    attack aggregates.
    """

    def __init__(self, node_id: int, compromised: bool = False):
        super().__init__(node_id)
        self.compromised = compromised
        self._flows: dict[int, int] = {}  # flow id -> previous hop
        self.observations: list[tuple[int, int]] = []  # (prev hop, flow id)
        self.forwarded = 0

    def on_message(self, message: Message) -> None:
        if message.kind == ONION:
            flow_id, layer = message.payload
            if not isinstance(layer, OnionLayer):
                raise RuntimeError("malformed onion")
            self.compute(RELAY_DELAY_S)
            self._flows[flow_id] = message.sender
            if self.compromised:
                self.observations.append((message.sender, flow_id))
            self.forwarded += 1
            self.send(
                layer.next_hop,
                ONION if isinstance(layer.inner, OnionLayer) else layer.inner[0],
                (flow_id, layer.inner)
                if isinstance(layer.inner, OnionLayer)
                else (flow_id, layer.inner[1]),
                payload_bits=message.payload_bits - LAYER_BITS,
            )
        elif message.kind == ONION_REPLY:
            flow_id, payload = message.payload
            prev = self._flows.get(flow_id)
            if prev is None:
                return  # unknown flow: drop (defensive)
            self.compute(RELAY_DELAY_S)
            self.send(prev, ONION_REPLY, (flow_id, payload), message.payload_bits)
        else:
            raise RuntimeError(f"unexpected message kind {message.kind}")


class AnonymousQueryClient(Node):
    """A searcher that tunnels PPI queries through a relay chain.

    The PPI server receives the query from the exit relay and learns
    nothing about the initiator; replies retrace the chain.
    """

    def __init__(
        self,
        node_id: int,
        relay_chain: list[int],
        server_id: int,
        queries: list[int],
        rng: random.Random,
    ):
        super().__init__(node_id)
        if not relay_chain:
            raise ValueError("need at least one relay in the chain")
        self.relay_chain = relay_chain
        self.server_id = server_id
        self._queue = list(queries)
        self._rng = rng
        self.replies: list[tuple[int, list[int]]] = []  # (owner, providers)
        self._flow_of_owner: dict[int, int] = {}

    def on_start(self) -> None:
        self._send_next()

    def _send_next(self) -> None:
        if not self._queue:
            return
        owner_id = self._queue.pop(0)
        flow_id = self._rng.getrandbits(48)
        self._flow_of_owner[flow_id] = owner_id
        # Build the onion inside-out: innermost is the real query message
        # addressed to the server ("kind", payload).
        inner: object = ("service/query", owner_id)
        layer = OnionLayer(next_hop=self.server_id, inner=inner)
        for hop in reversed(self.relay_chain[1:]):
            layer = OnionLayer(next_hop=hop, inner=layer)
        bits = 64 + LAYER_BITS * (len(self.relay_chain) + 1)
        self.send(self.relay_chain[0], ONION, (flow_id, layer), payload_bits=bits)

    def on_message(self, message: Message) -> None:
        if message.kind != ONION_REPLY:
            raise RuntimeError(f"unexpected message kind {message.kind}")
        flow_id, payload = message.payload
        owner_id, providers = payload
        self.replies.append((owner_id, providers))
        self._send_next()


class AnonymityAwarePPIServer(Node):
    """A PPI server variant that answers flow-tagged onion queries and logs
    the *apparent* querier (what an honest-but-curious server learns)."""

    def __init__(self, node_id: int, index):
        super().__init__(node_id)
        self.index = index
        self.apparent_senders: list[int] = []

    def on_message(self, message: Message) -> None:
        if message.kind != "service/query":
            raise RuntimeError(f"unexpected message kind {message.kind}")
        flow_id, owner_id = message.payload
        self.apparent_senders.append(message.sender)
        providers = self.index.query(owner_id)
        self.send(
            message.sender,
            ONION_REPLY,
            (flow_id, (owner_id, providers)),
            payload_bits=32 * max(1, len(providers)),
        )


def predecessor_attack_probability(
    compromised_fraction: float, rounds: int
) -> float:
    """Deanonymization probability after ``rounds`` chain reformations [20].

    Per round the initiator is exposed when the adversary controls both the
    first relay (sees the initiator address) and the exit (links the flow
    to the server): probability ``f²`` with independent relay choice.
    """
    if not 0.0 <= compromised_fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if rounds < 0:
        raise ValueError("rounds must be >= 0")
    per_round = compromised_fraction ** 2
    return 1.0 - (1.0 - per_round) ** rounds
