"""One-call deployment of the locator service on the network simulator.

Wires a constructed index, the provider fleet and a searcher into a
:class:`~repro.net.simulator.Simulator` and runs a query workload, returning
per-query outcomes plus the aggregate network metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.authsearch import AccessControl
from repro.core.index import PPIIndex
from repro.core.model import InformationNetwork
from repro.net.latency import EMULAB_LAN, LatencyModel
from repro.net.metrics import NetworkMetrics
from repro.net.simulator import Simulator
from repro.core.model import MembershipMatrix
from repro.service.nodes import (
    PPIServerNode,
    ProviderServiceNode,
    SearcherNode,
    SearchOutcome,
)

__all__ = [
    "ConcurrentRun",
    "ServiceRun",
    "compute_recall",
    "run_concurrent_searchers",
    "run_locator_service",
]


def compute_recall(
    outcomes: list[SearchOutcome], matrix: MembershipMatrix
) -> float:
    """Fraction of searches that reached every reachable true provider.

    A search counts as recalled when its positive providers cover the
    owner's true provider set minus the providers the searcher was denied
    at or that failed outright (those are availability/authorization
    losses, not index losses).  Empty outcome lists score 1.0.
    """
    if not outcomes:
        return 1.0
    hits = [
        set(o.positive_providers) >= (
            matrix.providers_of(o.owner_id)
            - set(o.denied_providers)
            - set(o.failed_providers)
        )
        for o in outcomes
    ]
    return float(np.mean(hits))


@dataclass
class ServiceRun:
    """Everything produced by one simulated service session."""

    outcomes: list[SearchOutcome]
    metrics: NetworkMetrics
    queries_served: int
    recall: float  # fraction of queries that reached every true provider

    @property
    def mean_latency_s(self) -> float:
        if not self.outcomes:
            return 0.0
        return float(np.mean([o.latency_s for o in self.outcomes]))

    @property
    def mean_contacted(self) -> float:
        if not self.outcomes:
            return 0.0
        return float(np.mean([o.contacted for o in self.outcomes]))


def run_locator_service(
    network: InformationNetwork,
    index: PPIIndex,
    queries: list[int],
    searcher_name: str = "searcher",
    acls: dict[int, AccessControl] | None = None,
    latency: LatencyModel = EMULAB_LAN,
    loss_probability: float = 0.0,
    loss_seed: int = 0,
    timeout_s: float = 0.05,
    max_retries: int = 3,
) -> ServiceRun:
    """Deploy and drive the two-phase search service for ``queries``.

    With ``acls=None`` the searcher is trusted everywhere (the paper's
    assumption that authorization has been set up out of band).
    ``loss_probability`` injects message loss; the searcher's timeout/retry
    machinery (``timeout_s``, ``max_retries``) must then recover.
    """
    sim = Simulator(
        latency=latency, loss_probability=loss_probability, loss_seed=loss_seed
    )
    m = network.n_providers
    # Node-id layout: providers 0..m-1, server m, searcher m+1.
    provider_node_ids = {pid: pid for pid in range(m)}
    for pid in range(m):
        acl = (acls or {}).get(pid, AccessControl(trusted={searcher_name}))
        sim.add_node(ProviderServiceNode(pid, network.providers[pid], acl))
    server = sim.add_node(PPIServerNode(m, index))
    searcher = sim.add_node(
        SearcherNode(
            m + 1,
            searcher_name,
            server_id=m,
            provider_node_ids=provider_node_ids,
            queries=list(queries),
            timeout_s=timeout_s,
            max_retries=max_retries,
        )
    )
    metrics = sim.run()
    # Recall check against the true matrix: every query must have reached
    # every provider that truly holds the owner's records, except those the
    # searcher was denied at or that failed outright.
    return ServiceRun(
        outcomes=searcher.outcomes,
        metrics=metrics,
        queries_served=server.queries_served,
        recall=compute_recall(searcher.outcomes, network.membership_matrix()),
    )


@dataclass
class ConcurrentRun:
    """Aggregate of a multi-searcher session."""

    per_searcher: list[ServiceRun]
    metrics: NetworkMetrics

    @property
    def total_queries(self) -> int:
        return sum(len(r.outcomes) for r in self.per_searcher)

    @property
    def mean_latency_s(self) -> float:
        latencies = [
            o.latency_s for r in self.per_searcher for o in r.outcomes
        ]
        return float(np.mean(latencies)) if latencies else 0.0

    @property
    def throughput_qps(self) -> float:
        if self.metrics.finish_time_s <= 0:
            return 0.0
        return self.total_queries / self.metrics.finish_time_s


def run_concurrent_searchers(
    network: InformationNetwork,
    index: PPIIndex,
    query_lists: list[list[int]],
    latency: LatencyModel = EMULAB_LAN,
) -> ConcurrentRun:
    """Drive several searchers against one PPI server simultaneously.

    Models service load: the single-threaded server (and each provider)
    serializes its request handling, so concurrent searchers contend for
    server compute -- the throughput/latency trade-off reported by
    ``benchmarks/bench_service_load.py``.
    """
    sim = Simulator(latency=latency)
    m = network.n_providers
    provider_node_ids = {pid: pid for pid in range(m)}
    for pid in range(m):
        sim.add_node(
            ProviderServiceNode(
                pid, network.providers[pid], AccessControl(trusted={"searcher"})
            )
        )
    server = sim.add_node(PPIServerNode(m, index))
    searchers = []
    for i, queries in enumerate(query_lists):
        searchers.append(
            sim.add_node(
                SearcherNode(
                    m + 1 + i,
                    "searcher",
                    server_id=m,
                    provider_node_ids=provider_node_ids,
                    queries=list(queries),
                )
            )
        )
    metrics = sim.run()
    matrix = network.membership_matrix()
    runs = [
        ServiceRun(
            outcomes=s.outcomes,
            metrics=metrics,
            queries_served=len(s.outcomes),
            recall=compute_recall(s.outcomes, matrix),
        )
        for s in searchers
    ]
    return ConcurrentRun(per_searcher=runs, metrics=metrics)
