"""The locator service as live network actors (paper Fig. 1).

Completes the system picture: after construction, the published index is
hosted by a third-party *PPI server* node; a *searcher* node performs the
two-phase search as timed messages:

1. ``QueryPPI(t)`` to the server, which answers with the obscured provider
   list;
2. ``AuthSearch`` fan-out: the searcher contacts every candidate provider,
   each of which checks its local ACL and answers with records or a denial.

The searcher is fault tolerant: every request carries a retransmission
timer, so the service survives the simulator's injected message loss
(dropped requests or replies are retried up to ``max_retries`` times; a
provider that never answers is recorded as failed rather than hanging the
query).

The simulation yields the end-to-end *search latency* and per-query message
cost -- the operational face of the privacy/overhead trade-off benchmarked
in `benchmarks/bench_search_latency.py`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.authsearch import AccessControl
from repro.core.index import PPIIndex
from repro.core.model import Provider, Record
from repro.net.simulator import Node
from repro.net.transport import Message

__all__ = [
    "QUERY",
    "QUERY_REPLY",
    "SEARCH",
    "SEARCH_REPLY",
    "PPIServerNode",
    "ProviderServiceNode",
    "SearcherNode",
    "SearchOutcome",
]

QUERY = "service/query"
QUERY_REPLY = "service/query-reply"
SEARCH = "service/search"
SEARCH_REPLY = "service/search-reply"

# CPU cost models for service-side work.
LOOKUP_COMPUTE_S = 1e-5  # index lookup at the PPI server
ACL_COMPUTE_S = 5e-5  # authentication + authorization at a provider
# Searcher-side cost per provider contact (session setup, credential
# presentation, response validation) -- this is what makes noise providers
# expensive for the client even though the fan-out is parallel.
CONTACT_COMPUTE_S = 2e-4
RECORD_BITS = 4096  # wire size of one personal record


@dataclass
class SearchOutcome:
    """Result of one two-phase search, as observed by the searcher."""

    owner_id: int
    records: list[Record] = field(default_factory=list)
    positive_providers: list[int] = field(default_factory=list)
    noise_providers: list[int] = field(default_factory=list)
    denied_providers: list[int] = field(default_factory=list)
    failed_providers: list[int] = field(default_factory=list)
    retransmissions: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def latency_s(self) -> float:
        return self.finished_at - self.started_at

    @property
    def contacted(self) -> int:
        return (
            len(self.positive_providers)
            + len(self.noise_providers)
            + len(self.denied_providers)
            + len(self.failed_providers)
        )


class PPIServerNode(Node):
    """The third-party locator service hosting the published index.

    The server is *untrusted*: everything it stores (the published matrix)
    is public information, which is the whole point of the PPI design.
    """

    def __init__(self, node_id: int, index: PPIIndex):
        super().__init__(node_id)
        self.index = index
        self.queries_served = 0

    def on_message(self, message: Message) -> None:
        if message.kind != QUERY:
            raise RuntimeError(f"unexpected message kind {message.kind}")
        owner_id = message.payload
        self.compute(LOOKUP_COMPUTE_S)
        providers = self.index.query(owner_id)
        self.queries_served += 1
        self.send(
            message.sender,
            QUERY_REPLY,
            (owner_id, providers),
            payload_bits=32 * max(1, len(providers)),
        )


class ProviderServiceNode(Node):
    """A provider's service endpoint: ACL check + local record search.

    Stateless per request, so retransmitted requests are answered
    idempotently (at-least-once semantics from the searcher's side).
    """

    def __init__(self, node_id: int, provider: Provider, acl: AccessControl):
        super().__init__(node_id)
        self.provider = provider
        self.acl = acl
        self.requests_served = 0
        self.denials = 0

    def on_message(self, message: Message) -> None:
        if message.kind != SEARCH:
            raise RuntimeError(f"unexpected message kind {message.kind}")
        searcher_name, owner_id = message.payload
        self.compute(ACL_COMPUTE_S)
        self.requests_served += 1
        if not self.acl.authorize(searcher_name, owner_id):
            self.denials += 1
            reply = ("denied", [])
            bits = 16
        else:
            records = self.provider.records.get(owner_id, [])
            reply = ("ok", records)
            bits = 16 + RECORD_BITS * len(records)
        self.send(message.sender, SEARCH_REPLY, reply, payload_bits=bits)


class SearcherNode(Node):
    """A searcher driving two-phase lookups for a queue of owners."""

    def __init__(
        self,
        node_id: int,
        name: str,
        server_id: int,
        provider_node_ids: dict[int, int],
        queries: list[int],
        on_complete: Optional[Callable[[SearchOutcome], None]] = None,
        timeout_s: float = 0.05,
        max_retries: int = 3,
    ):
        super().__init__(node_id)
        self.name = name
        self.server_id = server_id
        self.provider_node_ids = provider_node_ids  # provider id -> node id
        self._queue = list(queries)
        self._on_complete = on_complete
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.outcomes: list[SearchOutcome] = []
        self._current: Optional[SearchOutcome] = None
        self._node_to_provider = {v: k for k, v in provider_node_ids.items()}
        self._query_answered = False
        self._query_attempts = 0
        self._awaiting: dict[int, int] = {}  # provider id -> attempts so far
        # Serial number of the in-flight query: timer callbacks capture it
        # so a timer armed for query k is inert once query k+1 started.
        self._serial = 0

    def on_start(self) -> None:
        self._next_query()

    # -- phase 1 ------------------------------------------------------------

    def _next_query(self) -> None:
        if not self._queue:
            return
        owner_id = self._queue.pop(0)
        self._serial += 1
        self._current = SearchOutcome(owner_id=owner_id, started_at=self.now)
        self._query_answered = False
        self._query_attempts = 1
        self.send(self.server_id, QUERY, owner_id, payload_bits=64)
        serial = self._serial
        self.set_timer(self.timeout_s, lambda: self._query_timeout(serial))

    def _query_timeout(self, serial: int) -> None:
        if serial != self._serial or self._query_answered or self._current is None:
            return
        if self._query_attempts > self.max_retries:
            # Locator service unreachable: give up on this query.
            self._current.finished_at = self.now
            self._finish()
            return
        self._query_attempts += 1
        self._current.retransmissions += 1
        self.send(self.server_id, QUERY, self._current.owner_id, payload_bits=64)
        self.set_timer(self.timeout_s, lambda: self._query_timeout(serial))

    def on_message(self, message: Message) -> None:
        if message.kind == QUERY_REPLY:
            self._on_query_reply(message)
        elif message.kind == SEARCH_REPLY:
            self._on_search_reply(message)
        else:
            raise RuntimeError(f"unexpected message kind {message.kind}")

    def _on_query_reply(self, message: Message) -> None:
        if self._query_answered or self._current is None:
            return  # duplicate reply to a retransmitted query
        self._query_answered = True
        owner_id, providers = message.payload
        outcome = self._current
        if not providers:
            outcome.finished_at = self.now
            self._finish()
            return
        # Phase 2: AuthSearch fan-out to every candidate in parallel.
        self._awaiting = {pid: 1 for pid in providers}
        for pid in providers:
            self._send_search(pid, owner_id)
        serial = self._serial
        self.set_timer(self.timeout_s, lambda: self._search_timeout(serial))

    # -- phase 2 --------------------------------------------------------------

    def _send_search(self, pid: int, owner_id: int) -> None:
        self.send(
            self.provider_node_ids[pid],
            SEARCH,
            (self.name, owner_id),
            payload_bits=128,
        )

    def _search_timeout(self, serial: int) -> None:
        if serial != self._serial or self._current is None or not self._awaiting:
            return
        outcome = self._current
        for pid in list(self._awaiting):
            attempts = self._awaiting[pid]
            if attempts > self.max_retries:
                del self._awaiting[pid]
                outcome.failed_providers.append(pid)
            else:
                self._awaiting[pid] = attempts + 1
                outcome.retransmissions += 1
                self._send_search(pid, outcome.owner_id)
        if self._awaiting:
            self.set_timer(self.timeout_s, lambda: self._search_timeout(serial))
        else:
            outcome.finished_at = self.now
            self._finish()

    def _on_search_reply(self, message: Message) -> None:
        if self._current is None:
            return
        pid = self._node_to_provider[message.sender]
        if pid not in self._awaiting:
            return  # duplicate or post-failure reply
        del self._awaiting[pid]
        self.compute(CONTACT_COMPUTE_S)
        status, records = message.payload
        outcome = self._current
        if status == "denied":
            outcome.denied_providers.append(pid)
        elif records:
            outcome.positive_providers.append(pid)
            outcome.records.extend(records)
        else:
            outcome.noise_providers.append(pid)
        if not self._awaiting:
            outcome.finished_at = self.now
            self._finish()

    def _finish(self) -> None:
        outcome = self._current
        self._current = None
        self._awaiting = {}
        self.outcomes.append(outcome)
        if self._on_complete:
            self._on_complete(outcome)
        self._next_query()
