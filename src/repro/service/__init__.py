"""Locator-service deployment: the Fig. 1 system as live simulator actors,
plus the searcher-anonymity mix layer (paper Sec. II-B, ref [20])."""

from repro.service.anonymity import (
    AnonymityAwarePPIServer,
    AnonymousQueryClient,
    RelayNode,
    predecessor_attack_probability,
)
from repro.service.deployment import (
    ConcurrentRun,
    ServiceRun,
    compute_recall,
    run_concurrent_searchers,
    run_locator_service,
)
from repro.service.nodes import (
    PPIServerNode,
    ProviderServiceNode,
    SearcherNode,
    SearchOutcome,
)

__all__ = [
    "AnonymityAwarePPIServer",
    "AnonymousQueryClient",
    "ConcurrentRun",
    "PPIServerNode",
    "ProviderServiceNode",
    "RelayNode",
    "SearcherNode",
    "SearchOutcome",
    "ServiceRun",
    "compute_recall",
    "predecessor_attack_probability",
    "run_concurrent_searchers",
    "run_locator_service",
]
