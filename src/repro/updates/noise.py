"""Per-owner sticky-noise streams for incremental republication.

When an owner's row changes (enrollment, move, revocation), the delta
pipeline must re-publish it -- and ``bench_ablation_refresh.py`` showed that
doing so with *fresh* flip coins hands the multi-version intersection
attack a β^k confidence boost per republication.  The fix is the same
sticky policy :mod:`repro.core.sticky` validated for whole-index refresh,
transposed to the owner-major view the update path works in:

* each delta log holds one long-lived ``noise_key`` (persisted in the log
  header, so reopening the log reproduces the identical streams);
* owner ``j``'s flip coins are one deterministic PRG stream seeded by
  ``SHA-256(domain || key || j)`` -- **prefix-stable**, so growing the
  provider universe extends the stream without disturbing earlier coins;
* the published row is ``true ∪ {p : coin[p] < β_j}``: monotone in β, and
  republishing with the same β_j reproduces the *same* false positives.

The intersection of any number of republications of owner ``j`` therefore
equals the first one, and an observer diffing index versions learns only
the true bit changes the owner actually made -- never which standing bits
are noise.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.core.errors import ConstructionError

__all__ = ["StickyOwnerStream"]

_DOMAIN = b"eppi-sticky-owner-v1"


class StickyOwnerStream:
    """Deterministic per-owner flip-coin streams under one secret key."""

    def __init__(self, key: bytes):
        if not key:
            raise ConstructionError("noise key must be non-empty")
        self._key = bytes(key)

    @property
    def key(self) -> bytes:
        return self._key

    def coins(self, owner_id: int, n_providers: int) -> np.ndarray:
        """The first ``n_providers`` uniform draws of owner ``owner_id``'s
        stream.  Prefix-stable: ``coins(j, n)[:k] == coins(j, k)`` for any
        ``k <= n``, so the same coins survive provider-universe growth.
        """
        if owner_id < 0:
            raise ConstructionError(f"invalid owner id {owner_id}")
        if n_providers < 0:
            raise ConstructionError(f"invalid provider count {n_providers}")
        digest = hashlib.sha256(
            _DOMAIN + self._key + owner_id.to_bytes(8, "big")
        ).digest()
        rng = np.random.default_rng(int.from_bytes(digest, "big"))
        return rng.random(n_providers)

    def publish_row(
        self,
        owner_id: int,
        true_providers,
        beta: float,
        n_providers: int,
    ) -> np.ndarray:
        """Sticky owner-major analogue of Eq. 2: the published provider ids.

        Returns a sorted ``int32`` array ``true ∪ {p : coin[p] < beta}``.
        Same β -> identical false-positive set; β' >= β -> superset
        (coins are compared, never redrawn).
        """
        if not 0.0 <= beta <= 1.0:
            raise ConstructionError(f"beta must lie in [0, 1], got {beta}")
        true = np.asarray(true_providers, dtype=np.int64)
        if true.ndim != 1:
            raise ConstructionError("true_providers must be a flat id sequence")
        if true.size and (true.min() < 0 or true.max() >= n_providers):
            raise ConstructionError("true provider id out of range")
        published = self.coins(owner_id, n_providers) < beta
        published[true] = True
        return np.nonzero(published)[0].astype(np.int32)
