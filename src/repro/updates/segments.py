"""Sealed segments: immutable published overlays between compactions.

Sealing a :class:`~repro.updates.deltalog.DeltaLog` materializes its net
per-owner state into a *segment*: a mini postings index of only the changed
owners, with sticky noise already applied (the segment stores **published**
rows -- true bits plus the owner's stable false positives -- never the raw
truth, so a segment file is as public as the snapshot it overlays).

Archive layout (npz, stored uncompressed, atomic-rename write)::

    meta        uint64[5] = [segment_version=1, n_providers, n_entries,
                             base_epoch, crc32(owner/postings/flag bytes)]
    owners      int64[n_entries]      changed owner ids, strictly increasing
    indptr      int64[n_entries + 1]  postings offsets per changed owner
    indices     int32[...]            published provider ids
    tombstones  uint8[n_entries]      1 = owner removed (postings empty)
    betas       float64[n_entries]    β_j at sealing time (0 for tombstones)
    owner_names unicode[n_entries]    "" when unknown

``base_epoch`` records which snapshot epoch the segment was cut against;
the compactor refuses to fold a segment into a different base.

:class:`OverlayIndex` layers segments (newest wins per owner) over a base
:class:`~repro.core.postings.PostingsIndex` and reproduces its full query
surface with identical results and error behavior -- property-tested
byte-for-byte against a from-scratch rebuild in
``tests/property/test_property_updates.py``.
"""

from __future__ import annotations

import os
import zlib
from typing import Any, Optional, Sequence, Union

import numpy as np

from repro.core.errors import ModelError
from repro.core.index import IndexStats, PPIIndex
from repro.core.postings import PostingsIndex
from repro.updates.deltalog import DeltaLog
from repro.updates.noise import StickyOwnerStream

__all__ = [
    "OverlayIndex",
    "SEGMENT_FORMAT_VERSION",
    "Segment",
    "SegmentError",
    "load_segment",
    "seal_segment",
]

SEGMENT_FORMAT_VERSION = 1


class SegmentError(ModelError):
    """The file is not a readable segment of a supported version."""


def _segment_checksum(
    owners: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    tombstones: np.ndarray,
    betas: np.ndarray,
) -> int:
    crc = 0
    for arr in (owners, indptr, indices, tombstones, betas):
        crc = zlib.crc32(np.ascontiguousarray(arr).tobytes(), crc)
    return crc


def seal_segment(log: DeltaLog, path: str, base_epoch: int) -> dict[str, Any]:
    """Publish ``log``'s net state into an immutable segment at ``path``.

    Every changed owner's row goes through the log's sticky stream
    (:class:`StickyOwnerStream`), so re-sealing the same log -- or sealing
    a later log that upserts the same truth with the same β -- reproduces
    the identical published row.  Returns a summary dict.
    """
    if base_epoch < 0:
        raise SegmentError(f"base epoch must be >= 0, got {base_epoch}")
    state = log.state()
    owners = np.array(sorted(state), dtype=np.int64)
    stream = StickyOwnerStream(log.noise_key)
    rows: list[np.ndarray] = []
    tombstones = np.zeros(owners.size, dtype=np.uint8)
    betas = np.zeros(owners.size, dtype=np.float64)
    names = []
    for k, owner in enumerate(owners.tolist()):
        delta = state[owner]
        names.append(delta.name or "")
        if delta.removed:
            tombstones[k] = 1
            rows.append(np.zeros(0, dtype=np.int32))
            continue
        betas[k] = delta.beta
        rows.append(
            stream.publish_row(
                owner, sorted(delta.providers), delta.beta, log.n_providers
            )
        )
    indptr = np.zeros(owners.size + 1, dtype=np.int64)
    np.cumsum([row.size for row in rows], out=indptr[1:])
    indices = (
        np.concatenate(rows).astype(np.int32)
        if rows
        else np.zeros(0, dtype=np.int32)
    )
    meta = np.array(
        [
            SEGMENT_FORMAT_VERSION,
            log.n_providers,
            owners.size,
            base_epoch,
            _segment_checksum(owners, indptr, indices, tombstones, betas),
        ],
        dtype=np.uint64,
    )
    arrays = {
        "meta": meta,
        "owners": owners,
        "indptr": indptr,
        "indices": indices,
        "tombstones": tombstones,
        "betas": betas,
        "owner_names": np.array(names, dtype=np.str_),
        # Log records folded into this segment -- drift accounting for the
        # compactor.  Optional (outside the checksum) so segments sealed by
        # older writers still load; readers default it to n_entries.
        "n_ops": np.array([len(log)], dtype=np.uint64),
    }
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "wb") as f:
            np.savez(f, **arrays)
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
    return {
        "path": path,
        "n_entries": int(owners.size),
        "n_providers": log.n_providers,
        "base_epoch": base_epoch,
        "n_ops": len(log),
        "tombstones": int(tombstones.sum()),
        "published_positives": int(indices.size),
        "file_bytes": os.path.getsize(path),
    }


class Segment:
    """One loaded segment: an immutable owner -> published-row overlay."""

    def __init__(
        self,
        owners: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        tombstones: np.ndarray,
        betas: np.ndarray,
        n_providers: int,
        base_epoch: int,
        owner_names: Optional[Sequence[str]] = None,
        path: Optional[str] = None,
        n_ops: Optional[int] = None,
    ):
        self.owners = owners
        self.indptr = indptr
        self.indices = indices
        self.tombstones = tombstones
        self.betas = betas
        self.n_providers = int(n_providers)
        self.base_epoch = int(base_epoch)
        self.owner_names = list(owner_names) if owner_names is not None else None
        self.path = path
        # Log records folded into this segment; older segment files don't
        # record it, where one-op-per-changed-owner is the best lower bound.
        self.n_ops = int(n_ops) if n_ops is not None else int(owners.size)
        self._slot = {int(o): k for k, o in enumerate(owners.tolist())}

    def __len__(self) -> int:
        return self.owners.size

    def __contains__(self, owner_id: int) -> bool:
        return owner_id in self._slot

    def postings(self, owner_id: int) -> Optional[np.ndarray]:
        """Published row for ``owner_id``: an id array (empty for a
        tombstone), or ``None`` when this segment doesn't touch the owner."""
        slot = self._slot.get(owner_id)
        if slot is None:
            return None
        return self.indices[self.indptr[slot] : self.indptr[slot + 1]]

    def name_of(self, owner_id: int) -> Optional[str]:
        slot = self._slot.get(owner_id)
        if slot is None or self.owner_names is None:
            return None
        return self.owner_names[slot] or None

    def max_owner(self) -> int:
        return int(self.owners[-1]) if self.owners.size else -1


def load_segment(path: str) -> Segment:
    """Load and fully verify one segment file."""
    try:
        archive = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise SegmentError(f"cannot read segment {path!r}: {exc}") from exc
    with archive:
        required = ("meta", "owners", "indptr", "indices", "tombstones", "betas")
        if any(key not in archive for key in required):
            raise SegmentError(f"{path!r} is not a segment (missing keys)")
        meta = archive["meta"]
        if meta.shape != (5,):
            raise SegmentError(f"{path!r} has a malformed meta block")
        version = int(meta[0])
        if version != SEGMENT_FORMAT_VERSION:
            raise SegmentError(
                f"segment format version {version} unsupported "
                f"(this reader speaks version {SEGMENT_FORMAT_VERSION})"
            )
        n_providers, n_entries = int(meta[1]), int(meta[2])
        owners = archive["owners"]
        indptr = archive["indptr"]
        indices = archive["indices"]
        tombstones = archive["tombstones"]
        betas = archive["betas"]
        names = (
            [str(n) for n in archive["owner_names"]]
            if "owner_names" in archive
            else None
        )
        n_ops = int(archive["n_ops"][0]) if "n_ops" in archive else None
    checksum = _segment_checksum(owners, indptr, indices, tombstones, betas)
    if checksum != int(meta[4]):
        raise SegmentError(f"segment {path!r} failed its checksum")
    if (
        owners.shape != (n_entries,)
        or indptr.shape != (n_entries + 1,)
        or tombstones.shape != (n_entries,)
        or betas.shape != (n_entries,)
        or indices.shape != (int(indptr[-1]) if indptr.size else 0,)
        or (owners.size and (owners[0] < 0 or np.any(np.diff(owners) <= 0)))
    ):
        raise SegmentError(f"segment {path!r} has malformed arrays")
    if indices.size and (indices.min() < 0 or indices.max() >= n_providers):
        raise SegmentError(f"segment {path!r} has provider ids out of range")
    return Segment(
        owners,
        indptr,
        indices,
        tombstones,
        betas,
        n_providers,
        int(meta[3]),
        owner_names=names,
        path=path,
        n_ops=n_ops,
    )


class OverlayIndex:
    """Base postings + sealed segments, serving the merged view.

    Newest segment wins per owner; owners past the base that no segment
    names (id gaps) answer the empty list, exactly as a from-scratch
    rebuild with the same owner-id space would.  Implements the complete
    :class:`PostingsIndex` query surface so every serving-layer consumer
    (shard stores, stats, recall checks) works unchanged.
    """

    def __init__(
        self,
        base: Union[PostingsIndex, PPIIndex],
        segments: Sequence[Segment] = (),
    ):
        if isinstance(base, PPIIndex):
            base = PostingsIndex.from_index(base)
        self.base = base
        self.segments = list(segments)
        n_owners = base.n_owners
        overlay: dict[int, np.ndarray] = {}
        names: dict[int, str] = {}
        for segment in self.segments:  # oldest -> newest: later wins
            if segment.n_providers != base.n_providers:
                raise ModelError(
                    f"segment spans {segment.n_providers} providers, "
                    f"base has {base.n_providers}"
                )
            for owner in segment.owners.tolist():
                overlay[owner] = segment.postings(owner)
                name = segment.name_of(owner)
                if name is not None:
                    names[owner] = name
            n_owners = max(n_owners, segment.max_owner() + 1)
        self._overlay = overlay
        self._n_owners = n_owners
        self._owner_names = self._merge_names(names)
        self._name_to_id: Optional[dict] = None
        sizes = np.zeros(n_owners, dtype=np.int64)
        sizes[: base.n_owners] = base.result_sizes()
        for owner, postings in overlay.items():
            sizes[owner] = postings.size
        self._sizes = sizes

    def _merge_names(self, segment_names: dict[int, str]) -> Optional[list]:
        base_names = self.base.owner_names
        if base_names is None and not segment_names:
            return None
        names = [""] * self._n_owners
        if base_names is not None:
            names[: len(base_names)] = base_names
        for owner, name in segment_names.items():
            names[owner] = name
        return names

    # -- QueryPPI (PostingsIndex-compatible surface) --------------------------

    def query(self, owner_id: int) -> list[int]:
        self._check_owner(owner_id)
        postings = self._overlay.get(owner_id)
        if postings is not None:
            return postings.tolist()
        if owner_id < self.base.n_owners:
            return self.base.query(owner_id)
        return []  # id-gap owner: enrolled later than this one, empty row

    def query_by_name(self, name: str) -> list[int]:
        if self._name_to_id is None:
            self._name_to_id = (
                {str(n): j for j, n in enumerate(self._owner_names)}
                if self._owner_names is not None
                else {}
            )
        if name not in self._name_to_id:
            raise ModelError(f"unknown owner name {name!r}")
        return self.query(self._name_to_id[name])

    def query_many(self, owner_ids) -> list[list[int]]:
        ids = self._check_batch(owner_ids)
        return [self.query(int(owner)) for owner in ids]

    def query_many_arrays(self, owner_ids) -> tuple[np.ndarray, np.ndarray]:
        ids = self._check_batch(owner_ids)
        if ids.size == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int32)
        rows = [
            np.asarray(self.query(int(owner)), dtype=np.int32) for owner in ids
        ]
        counts = np.array([row.size for row in rows], dtype=np.int64)
        flat = (
            np.concatenate(rows).astype(np.int32)
            if counts.sum()
            else np.zeros(0, dtype=np.int32)
        )
        return counts, flat

    def _check_batch(self, owner_ids) -> np.ndarray:
        ids = np.asarray(owner_ids, dtype=np.int64)
        if ids.ndim != 1:
            raise ModelError("owner_ids must be a flat sequence of ids")
        if ids.size:
            out_of_range = (ids < 0) | (ids >= self.n_owners)
            if out_of_range.any():
                raise ModelError(f"unknown owner id {int(ids[out_of_range][0])}")
        return ids

    def result_size(self, owner_id: int) -> int:
        self._check_owner(owner_id)
        return int(self._sizes[owner_id])

    def result_sizes(self) -> np.ndarray:
        return self._sizes.copy()

    def published_frequency(self, owner_id: int) -> float:
        return self.result_size(owner_id) / self.base.n_providers

    def stats(self) -> IndexStats:
        return IndexStats(
            n_providers=self.n_providers,
            n_owners=self.n_owners,
            published_positives=self.nnz,
            avg_result_size=float(self._sizes.mean()) if self.n_owners else 0.0,
            broadcast_owners=int(np.sum(self._sizes == self.n_providers)),
        )

    # -- views ----------------------------------------------------------------

    @property
    def nnz(self) -> int:
        return int(self._sizes.sum())

    @property
    def n_providers(self) -> int:
        return self.base.n_providers

    @property
    def n_owners(self) -> int:
        return self._n_owners

    @property
    def owner_names(self) -> Optional[list]:
        return list(self._owner_names) if self._owner_names is not None else None

    @property
    def overlay_owners(self) -> list[int]:
        """Owners whose rows come from segments rather than the base."""
        return sorted(self._overlay)

    def _check_owner(self, owner_id: int) -> None:
        if not 0 <= owner_id < self.n_owners:
            raise ModelError(f"unknown owner id {owner_id}")

    # -- conversions ----------------------------------------------------------

    def to_postings(self) -> PostingsIndex:
        """Materialize the merged index -- the compactor's core step.

        Splice merge: base CSR runs between overlaid owners are copied as
        single slices (their offsets shift but their relative layout is
        unchanged), so the merge is O(nnz copy + #overlaid owners), never
        a per-owner Python loop over the whole base.
        """
        n_owners = self.n_owners
        base_n = self.base.n_owners
        indptr = np.zeros(n_owners + 1, dtype=np.int64)
        np.cumsum(self._sizes, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int32)
        boundary = sorted(self._overlay) + [n_owners]
        prev = 0
        for owner in boundary:
            lo, hi = prev, min(owner, base_n)
            if lo < hi:  # untouched base run [lo, hi)
                src_lo = int(self.base.indptr[lo])
                src_hi = int(self.base.indptr[hi])
                dst_lo = int(indptr[lo])
                indices[dst_lo : dst_lo + (src_hi - src_lo)] = self.base.indices[
                    src_lo:src_hi
                ]
            if owner < n_owners:
                postings = self._overlay[owner]
                dst_lo = int(indptr[owner])
                indices[dst_lo : dst_lo + postings.size] = postings
            prev = owner + 1
        return PostingsIndex(
            indptr,
            indices,
            self.n_providers,
            owner_names=self.owner_names,
        )
