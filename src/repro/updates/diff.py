"""Snapshot diffing: what changed between two published index versions.

``eppi snapshot diff A B`` answers the operator questions around a rollout:
which owners appeared or disappeared, how many published bits churned per
owner (sticky noise should keep this at exactly the *true* change -- a
large churn on an owner nobody updated means the noise policy regressed),
and how far apart the publication epochs are.

An owner counts as *present* when its published row is non-empty; removal
tombstones publish the empty row, so added/removed falls out of that
convention directly.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.serving.snapshot import load_postings, snapshot_epoch, snapshot_version

__all__ = ["diff_snapshots"]


def diff_snapshots(path_a: str, path_b: str, top_k: int = 10) -> dict[str, Any]:
    """Structured diff of two snapshots (``A`` = before, ``B`` = after)."""
    index_a = load_postings(path_a, mmap=False)
    index_b = load_postings(path_b, mmap=False)
    n_owners = max(index_a.n_owners, index_b.n_owners)

    sizes_a = np.zeros(n_owners, dtype=np.int64)
    sizes_a[: index_a.n_owners] = index_a.result_sizes()
    sizes_b = np.zeros(n_owners, dtype=np.int64)
    sizes_b[: index_b.n_owners] = index_b.result_sizes()

    present_a = sizes_a > 0
    present_b = sizes_b > 0
    added = np.nonzero(~present_a & present_b)[0]
    removed = np.nonzero(present_a & ~present_b)[0]

    bits_added = np.zeros(n_owners, dtype=np.int64)
    bits_removed = np.zeros(n_owners, dtype=np.int64)
    for owner in range(n_owners):
        row_a = (
            set(index_a.query(owner)) if owner < index_a.n_owners else set()
        )
        row_b = (
            set(index_b.query(owner)) if owner < index_b.n_owners else set()
        )
        if row_a == row_b:
            continue
        bits_added[owner] = len(row_b - row_a)
        bits_removed[owner] = len(row_a - row_b)

    churn = bits_added + bits_removed
    changed = np.nonzero(churn)[0]
    order = changed[np.argsort(churn[changed])[::-1]][:top_k]
    names_b = index_b.owner_names

    def _label(owner: int) -> str:
        if names_b is not None and owner < len(names_b) and names_b[owner]:
            return names_b[owner]
        return str(owner)

    epoch_a, epoch_b = snapshot_epoch(path_a), snapshot_epoch(path_b)
    return {
        "a": {
            "path": path_a,
            "format_version": snapshot_version(path_a),
            "epoch": epoch_a,
            "n_providers": index_a.n_providers,
            "n_owners": index_a.n_owners,
            "nnz": index_a.nnz,
        },
        "b": {
            "path": path_b,
            "format_version": snapshot_version(path_b),
            "epoch": epoch_b,
            "n_providers": index_b.n_providers,
            "n_owners": index_b.n_owners,
            "nnz": index_b.nnz,
        },
        "epoch_delta": epoch_b - epoch_a,
        "owners_added": [int(o) for o in added],
        "owners_removed": [int(o) for o in removed],
        "owners_changed": int(changed.size),
        "bits_added": int(bits_added.sum()),
        "bits_removed": int(bits_removed.sum()),
        "top_churn": [
            {
                "owner": int(owner),
                "label": _label(int(owner)),
                "bits_added": int(bits_added[owner]),
                "bits_removed": int(bits_removed[owner]),
            }
            for owner in order
        ],
    }
