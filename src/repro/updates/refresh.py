"""Drift-triggered incremental β refresh: closing the maintenance loop.

PR 5 made the *index* live (delta log -> segments -> compaction -> rolling
reload) but left β maintenance batch: any churn that moved an owner's
frequency still demanded a full secure construction.  This module is the
bridge between the two systems:

* the serving-side churn pipeline reports drift
  (:class:`~repro.updates.compactor.CompactionStats` out of every
  ``Compactor.run_once``);
* :class:`BetaRefresher` accumulates the dirty owners, and once a
  configurable *drift threshold* (dirtied fraction of the identity
  universe) trips, folds them into the held secure construction with
  :func:`~repro.mpc.betacalc.secure_beta_update` -- ``O(k)`` secure work in
  the dirty count, never a full rerun;
* owners whose β actually changed are *republished* as ordinary ``upsert``
  records into a fresh :class:`~repro.updates.deltalog.DeltaLog` sharing
  the live log's ``noise_key``, so the republication rides the normal
  seal -> compact -> ``rollout`` path to an epoch+1 snapshot -- and stays
  intersection-closed, because :class:`StickyOwnerStream` coins are keyed,
  persisted, and never redrawn.

The refresher deliberately does *not* read truth out of segments: segments
hold published rows (truth + sticky noise), and deriving membership from
them would launder noise into the β computation.  Truth arrives through
:meth:`BetaRefresher.fold` from the same :class:`DeltaLog` state the
segments were sealed from.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.core.errors import ModelError
from repro.mpc.betacalc import (
    IncrementalBetaState,
    SecureBetaResult,
    secure_beta_update,
)
from repro.serving.snapshot import snapshot_epoch
from repro.updates.compactor import CompactionStats, compact_snapshot
from repro.updates.deltalog import DeltaLog, OwnerDelta
from repro.updates.segments import seal_segment

__all__ = ["BetaRefresher", "RefreshOutcome"]


@dataclass
class RefreshOutcome:
    """What one incremental refresh did, end to end."""

    dirty: list[int]  # identities securely re-evaluated
    closure: list[int]  # identities whose selection bit could move
    republished: list[int]  # owners upserted with a changed β
    lambda_before: float
    lambda_after: float
    result: SecureBetaResult
    # Landing info -- populated by :meth:`BetaRefresher.refresh_and_land`.
    epoch: Optional[int] = None
    snapshot: dict[str, Any] = field(default_factory=dict)
    rollout_events: list = field(default_factory=list)


class BetaRefresher:
    """Maintain a held secure construction against serving-side churn.

    ``state`` is a :class:`IncrementalBetaState` captured by
    ``secure_beta_calculation(..., keep_state=True)``; ``provider_bits`` is
    the matching ``m x n`` truth matrix (mutated in place as churn folds
    in).  ``drift_threshold`` is the dirtied fraction of the identity
    universe at which :attr:`should_refresh` trips -- wire
    :meth:`observe` as a ``Compactor(on_compaction=...)`` hook and call
    :meth:`refresh` (or :meth:`refresh_and_land`) when it returns True.

    Owners enrolled past the held universe cannot be folded in (the share
    vectors have no column for them); they are collected in
    :attr:`out_of_universe` and :attr:`needs_full_rebuild` turns True --
    the caller's cue to run a fresh ``keep_state=True`` full construction.
    """

    def __init__(
        self,
        state: IncrementalBetaState,
        provider_bits: list[list[int]],
        drift_threshold: float = 0.01,
        triple_source: str = "dealer",
    ):
        if not 0.0 < drift_threshold <= 1.0:
            raise ModelError(
                f"drift threshold must lie in (0, 1], got {drift_threshold}"
            )
        if len(provider_bits) != state.m:
            raise ModelError(
                f"state covers {state.m} providers, bits cover {len(provider_bits)}"
            )
        for i, row in enumerate(provider_bits):
            if len(row) != state.n_identities:
                raise ModelError(
                    f"provider {i} row has {len(row)} bits, "
                    f"state covers {state.n_identities} identities"
                )
        self.state = state
        self.provider_bits = provider_bits
        self.drift_threshold = drift_threshold
        self.triple_source = triple_source
        self.pending: set[int] = set()
        self.out_of_universe: set[int] = set()
        self.refreshes = 0

    # -- drift intake ---------------------------------------------------------

    @property
    def n_identities(self) -> int:
        return self.state.n_identities

    @property
    def drift_fraction(self) -> float:
        return len(self.pending) / max(1, self.n_identities)

    @property
    def should_refresh(self) -> bool:
        return self.drift_fraction >= self.drift_threshold

    @property
    def needs_full_rebuild(self) -> bool:
        """True when churn grew the owner universe past the held state."""
        return bool(self.out_of_universe)

    def fold(self, deltas: dict[int, OwnerDelta]) -> list[int]:
        """Fold a delta log's net per-owner truth into the bit matrix.

        Call with ``log.state()`` *before* the log is sealed away.  Updates
        ``provider_bits`` columns and marks the owners dirty; returns the
        in-universe owners folded this call.  A removed owner's column
        zeroes out (frequency 0 -- the identity drops out of every count).
        """
        folded = []
        for owner, delta in deltas.items():
            if owner >= self.n_identities:
                self.out_of_universe.add(owner)
                continue
            members = set() if delta.removed else delta.providers
            for i in range(self.state.m):
                self.provider_bits[i][owner] = 1 if i in members else 0
            self.pending.add(owner)
            folded.append(owner)
        return sorted(folded)

    def observe(self, stats: CompactionStats) -> bool:
        """Compactor hook: absorb one round's drift; True when the
        threshold trips.  Marking an owner dirty whose truth was already
        folded (or never changed) is sound -- incremental re-evaluation of
        an unchanged identity reproduces its bits exactly -- so the hook
        can run even when ``fold`` and compaction interleave arbitrarily.
        """
        for owner in stats.dirty_owners:
            if owner >= self.n_identities:
                self.out_of_universe.add(owner)
            else:
                self.pending.add(owner)
        return self.should_refresh

    # -- the refresh ----------------------------------------------------------

    def refresh(self, rng: Optional[random.Random] = None) -> RefreshOutcome:
        """One incremental secure pass over the accumulated dirty set.

        Runs :func:`secure_beta_update` (which mutates and re-attaches
        ``self.state``), diffs β before/after, and clears the dirty set.
        Safe to call with an empty dirty set (zero secure work).
        """
        rng = rng if rng is not None else random.Random()
        dirty = sorted(self.pending)
        before = self.state.betas.copy()
        result = secure_beta_update(
            self.state,
            self.provider_bits,
            dirty,
            rng,
            triple_source=self.triple_source,
        )
        changed = np.flatnonzero(result.betas != before)
        self.pending.clear()
        self.refreshes += 1
        return RefreshOutcome(
            dirty=dirty,
            closure=list(result.incremental.closure),
            republished=[int(j) for j in changed],
            lambda_before=result.incremental.lambda_before,
            lambda_after=result.incremental.lambda_after,
            result=result,
        )

    # -- landing: epoch+1 snapshot + rolling reload ---------------------------

    def refresh_and_land(
        self,
        base_path: str,
        workdir: str,
        noise_key: bytes,
        rng: Optional[random.Random] = None,
        supervisor=None,
    ) -> RefreshOutcome:
        """Refresh, then land the changed β as a normal epoch+1 snapshot.

        Republication is deliberately boring: the changed owners are
        ``upsert``-ed (same truth, new β) into a scratch :class:`DeltaLog`
        carrying the *live log's* ``noise_key``, sealed into a segment, and
        compacted onto ``base_path`` -- so every republished row reuses the
        owner's persisted sticky coins and the republication is
        intersection-closed (β up -> superset, β down -> subset, same-β
        bits byte-identical).  If a ``supervisor`` is passed, the fleet is
        rolled onto the new snapshot shard by shard
        (:meth:`FleetSupervisor.rollout` semantics).  A refresh that
        changes no β lands nothing and leaves the epoch alone.
        """
        outcome = self.refresh(rng)
        if not outcome.republished:
            outcome.epoch = snapshot_epoch(base_path)
            return outcome
        base_epoch = snapshot_epoch(base_path)
        tag = f"beta-refresh-{base_epoch + 1}"
        log_path = os.path.join(workdir, f"{tag}.dlt")
        seg_path = os.path.join(workdir, f"{tag}.seg.npz")
        log = DeltaLog.create(log_path, self.state.m, noise_key=noise_key)
        try:
            for j in outcome.republished:
                providers = [
                    i for i in range(self.state.m) if self.provider_bits[i][j]
                ]
                log.upsert(j, providers, float(self.state.betas[j]))
            seal_segment(log, seg_path, base_epoch=base_epoch)
        finally:
            log.close()
        try:
            summary = compact_snapshot(base_path, [seg_path])
        finally:
            for path in (seg_path, log_path):
                if os.path.exists(path):
                    os.unlink(path)
        outcome.epoch = int(summary["epoch"])
        outcome.snapshot = summary
        if supervisor is not None:
            outcome.rollout_events = supervisor.rollout(base_path)
        return outcome
