"""Background compaction: fold sealed segments back into one snapshot.

Serving a long segment chain costs memory and boot time, so a compactor
periodically merges base + segments into a fresh format-v3 snapshot with
``epoch = base_epoch + 1``.  Two invariants carry the whole design:

* **atomicity** -- the merged snapshot goes through
  :func:`~repro.serving.snapshot.save_snapshot`'s same-directory temp file
  + ``os.replace``, so a compactor killed mid-write leaves the base
  snapshot byte-identical and at most a stray ``*.tmp.<pid>`` file; a
  partial compaction is *invisible*, never a torn snapshot;
* **epoch discipline** -- every segment records the ``base_epoch`` it was
  cut against, and :func:`compact_snapshot` refuses a mismatched segment:
  folding deltas into the wrong base would silently resurrect rows the
  segment meant to overwrite.

:class:`Compactor` wraps the one-shot merge in a directory-watching
background thread (seal segments into ``segment_dir``; they are deleted
only after the new snapshot is durably in place).
"""

from __future__ import annotations

import glob
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.serving.snapshot import (
    load_postings,
    save_snapshot,
    snapshot_epoch,
)
from repro.updates.segments import OverlayIndex, SegmentError, load_segment

__all__ = ["CompactionStats", "Compactor", "compact_snapshot"]


@dataclass
class CompactionStats:
    """Structured outcome of one compaction round.

    The drift triple -- ``ops_applied`` (delta-log records folded),
    ``owners_touched`` (overlay entries across segments, with multiplicity),
    ``identities_dirtied`` (distinct owners, i.e. the dirty set an
    incremental β refresh re-evaluates, listed in ``dirty_owners``) -- is
    what :class:`~repro.updates.refresh.BetaRefresher` consumes to decide
    when privacy maintenance must run.  ``per_owner`` maps each dirty owner
    to its drift detail.  Supports ``stats["epoch"]``-style access for
    callers written against the old summary-dict return shape.
    """

    epoch: int
    base_epoch: int
    n_segments: int
    ops_applied: int
    owners_touched: int
    identities_dirtied: int
    dirty_owners: list[int]
    tombstones: int
    consumed_segments: list[str]
    per_owner: dict[int, dict[str, Any]] = field(default_factory=dict)
    snapshot: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        merged = dict(self.snapshot)
        merged.update(
            epoch=self.epoch,
            base_epoch=self.base_epoch,
            n_segments=self.n_segments,
            ops_applied=self.ops_applied,
            owners_touched=self.owners_touched,
            identities_dirtied=self.identities_dirtied,
            dirty_owners=list(self.dirty_owners),
            tombstones=self.tombstones,
            consumed_segments=list(self.consumed_segments),
        )
        return merged

    # Dict-compatible reads (the pre-drift-stats return type was a dict).
    def __getitem__(self, key: str) -> Any:
        merged = self.as_dict()
        return merged[key]

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default


def compact_snapshot(
    base_path: str,
    segment_paths: Sequence[str],
    out_path: Optional[str] = None,
) -> dict[str, Any]:
    """Merge ``base_path`` + segments into a v3 snapshot at ``out_path``.

    ``out_path`` defaults to ``base_path`` (compact in place; readers that
    already mmap'd the old file keep their pages -- the old inode lives
    until they release it).  Returns the new snapshot's summary, with the
    bumped ``epoch`` and the segment paths it consumed.
    """
    base_epoch = snapshot_epoch(base_path)
    segments = []
    for path in segment_paths:
        segment = load_segment(path)
        if segment.base_epoch != base_epoch:
            raise SegmentError(
                f"segment {path!r} was cut against epoch {segment.base_epoch}, "
                f"base {base_path!r} is at epoch {base_epoch}"
            )
        segments.append(segment)
    # Copying load, not mmap: the merge reads every base byte exactly once,
    # and holding no mapping lets an in-place replace retire the old inode.
    base = load_postings(base_path, mmap=False)
    merged = OverlayIndex(base, segments).to_postings()
    summary = save_snapshot(
        merged, out_path or base_path, format_version=3, epoch=base_epoch + 1
    )
    summary["consumed_segments"] = [str(p) for p in segment_paths]
    summary["overlaid_owners"] = sum(len(s) for s in segments)
    return summary


class Compactor:
    """Watch a segment directory; compact when enough segments pile up.

    Segment files are consumed in name order, which is creation order when
    the sealer names them with a zero-padded sequence (the CLI does).  A
    consumed segment is unlinked only *after* ``os.replace`` has published
    the merged snapshot, so a crash at any point loses no update: either
    the old base + segments survive, or the new base does.
    """

    def __init__(
        self,
        base_path: str,
        segment_dir: str,
        min_segments: int = 1,
        interval_s: float = 1.0,
        pattern: str = "*.seg.npz",
        on_compaction: Optional[Callable[["CompactionStats"], Any]] = None,
    ):
        if min_segments < 1:
            raise ValueError("min_segments must be >= 1")
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.base_path = base_path
        self.segment_dir = segment_dir
        self.min_segments = min_segments
        self.interval_s = interval_s
        self.pattern = pattern
        # Called with the round's CompactionStats after every successful
        # compaction -- the drift hook an incremental β refresher latches
        # onto (see :mod:`repro.updates.refresh`).
        self.on_compaction = on_compaction
        self.compactions = 0
        self.last_summary: Optional[CompactionStats] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    def pending(self) -> list[str]:
        """Sealed segments waiting to be folded in, oldest first."""
        return sorted(glob.glob(os.path.join(self.segment_dir, self.pattern)))

    def run_once(self) -> Optional[CompactionStats]:
        """One compaction round; returns the round's drift stats, or
        ``None`` when the backlog is below ``min_segments``."""
        pending = self.pending()
        if len(pending) < self.min_segments:
            return None
        # Drift accounting reads the segments before the merge consumes
        # them; segment files only hold the *changed* owners, so this scan
        # is O(churn), not O(index).
        ops_applied = 0
        owners_touched = 0
        tombstones = 0
        per_owner: dict[int, dict[str, Any]] = {}
        for path in pending:
            segment = load_segment(path)
            ops_applied += segment.n_ops
            owners_touched += len(segment)
            tombstones += int(segment.tombstones.sum())
            for k, owner in enumerate(segment.owners.tolist()):
                drift = per_owner.setdefault(
                    owner, {"segments": 0, "removed": False, "beta": 0.0}
                )
                drift["segments"] += 1  # later segments win, like the merge
                drift["removed"] = bool(segment.tombstones[k])
                drift["beta"] = float(segment.betas[k])
        summary = compact_snapshot(self.base_path, pending)
        for path in pending:
            os.unlink(path)
        stats = CompactionStats(
            epoch=int(summary["epoch"]),
            base_epoch=int(summary["epoch"]) - 1,
            n_segments=len(pending),
            ops_applied=ops_applied,
            owners_touched=owners_touched,
            identities_dirtied=len(per_owner),
            dirty_owners=sorted(per_owner),
            tombstones=tombstones,
            consumed_segments=list(pending),
            per_owner=per_owner,
            snapshot=summary,
        )
        self.compactions += 1
        self.last_summary = stats
        if self.on_compaction is not None:
            self.on_compaction(stats)
        return stats

    # -- background thread ----------------------------------------------------

    def start(self) -> "Compactor":
        if self._thread is not None:
            raise RuntimeError("compactor already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="compactor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=30.0)
        self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.run_once()
            except Exception:  # noqa: BLE001 -- keep watching; next round retries
                pass

    def __enter__(self) -> "Compactor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
