"""Crc-checksummed append-only delta log: the write path of live updates.

The published index is rebuilt rarely (compaction); everything that happens
between compactions -- owners enrolling, moving between providers, revoking
consent -- lands here first, as one durable record per operation:

``upsert``
    Replace owner ``j``'s *true* provider set and publication degree β_j
    (new owners enroll this way too).
``remove``
    Tombstone owner ``j``: queries answer the empty list from the next
    segment on.  An empty list discloses nothing (the fp=1.0 convention of
    the paper's broadcast rows, inverted).
``flip``
    Set/clear individual true bits against the owner's *latest logged*
    truth -- the incremental form of a provider gaining/losing the owner's
    records.

File layout::

    EPPIDLT1 | u32 header_len | header JSON
    ( u32 body_len | u32 crc32(body) | body JSON ) *

The header persists the log's ``n_providers`` and the hex ``noise_key`` of
its :class:`~repro.updates.noise.StickyOwnerStream` -- the key *is* the
sticky-noise state, so reopening the log republishes every owner with the
identical false positives (see ``noise.py`` for the privacy argument).

Each record is independently crc-checked.  A torn tail (crash mid-append)
is detected, reported, and truncated before the next append, so one bad
write can never poison the records behind it -- the classic write-ahead-log
recovery contract.
"""

from __future__ import annotations

import json
import os
import secrets
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.core.errors import ModelError

__all__ = [
    "DeltaLog",
    "DeltaLogError",
    "OP_FLIP",
    "OP_REMOVE",
    "OP_UPSERT",
    "OwnerDelta",
]

MAGIC = b"EPPIDLT1"
_U32 = struct.Struct(">I")
_RECORD_HEADER = struct.Struct(">II")  # body length, crc32(body)

OP_UPSERT = "upsert"
OP_REMOVE = "remove"
OP_FLIP = "flip"


class DeltaLogError(ModelError):
    """The file is not a readable delta log, or an operation is invalid."""


@dataclass
class OwnerDelta:
    """Net effect of the log on one owner (the replayed state)."""

    owner_id: int
    providers: set = field(default_factory=set)  # true provider ids
    beta: float = 0.0
    name: Optional[str] = None
    removed: bool = False


class DeltaLog:
    """One append-only update log, replayable into per-owner net deltas.

    Use :meth:`create` for a new log and :meth:`open` for an existing one;
    both return a handle with the replayed state in memory, so appends are
    validated against what the log already says (a ``flip`` needs a prior
    truth to flip).  Appends are flushed per record; call :meth:`sync` for
    an fsync barrier when durability beyond the OS cache matters.
    """

    def __init__(
        self,
        path: str,
        n_providers: int,
        noise_key: bytes,
        *,
        _internal: bool = False,
    ):
        if not _internal:
            raise DeltaLogError("use DeltaLog.create() or DeltaLog.open()")
        self.path = path
        self.n_providers = n_providers
        self.noise_key = noise_key
        self.repaired_bytes = 0  # torn tail dropped by the last open
        self._state: dict[int, OwnerDelta] = {}
        self._n_records = 0
        self._data_start = 0  # byte offset of the first record
        self._end_offset = 0  # byte offset one past the last good record
        self._file: Optional[Any] = None

    # -- construction ---------------------------------------------------------

    @classmethod
    def create(
        cls, path: str, n_providers: int, noise_key: Optional[bytes] = None
    ) -> "DeltaLog":
        """Write a fresh empty log (refuses to clobber an existing file)."""
        if n_providers < 1:
            raise DeltaLogError(f"need at least one provider, got {n_providers}")
        if os.path.exists(path):
            raise DeltaLogError(f"delta log {path!r} already exists")
        noise_key = noise_key if noise_key is not None else secrets.token_bytes(16)
        if not noise_key:
            raise DeltaLogError("noise key must be non-empty")
        header = json.dumps(
            {
                "version": 1,
                "n_providers": n_providers,
                "noise_key": noise_key.hex(),
            },
            separators=(",", ":"),
        ).encode("utf-8")
        with open(path, "xb") as f:
            f.write(MAGIC + _U32.pack(len(header)) + header)
        log = cls(path, n_providers, noise_key, _internal=True)
        log._data_start = len(MAGIC) + _U32.size + len(header)
        log._end_offset = log._data_start
        return log

    @classmethod
    def open(cls, path: str, repair: bool = True) -> "DeltaLog":
        """Open and replay an existing log.

        A torn tail (crash mid-append) is truncated when ``repair`` is set
        -- required before any further append, or the new record would sit
        behind unreadable bytes; with ``repair=False`` the tail is only
        counted in ``repaired_bytes``.
        """
        header, data_start = cls._read_header(path)
        log = cls(
            path,
            int(header["n_providers"]),
            bytes.fromhex(header["noise_key"]),
            _internal=True,
        )
        good_end = data_start
        with open(path, "rb") as f:
            f.seek(data_start)
            while True:
                head = f.read(_RECORD_HEADER.size)
                if not head:
                    break
                if len(head) < _RECORD_HEADER.size:
                    break  # torn header
                length, crc = _RECORD_HEADER.unpack(head)
                body = f.read(length)
                if len(body) < length or zlib.crc32(body) != crc:
                    break  # torn or corrupt body: stop, keep the prefix
                try:
                    record = json.loads(body.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    break
                log._apply(record)
                log._n_records += 1
                good_end = f.tell()
        file_size = os.path.getsize(path)
        log.repaired_bytes = file_size - good_end
        if log.repaired_bytes and repair:
            with open(path, "r+b") as f:
                f.truncate(good_end)
        log._data_start = data_start
        log._end_offset = good_end
        return log

    @staticmethod
    def _read_header(path: str) -> tuple[dict[str, Any], int]:
        try:
            with open(path, "rb") as f:
                magic = f.read(len(MAGIC))
                if magic != MAGIC:
                    raise DeltaLogError(f"{path!r} is not a delta log (bad magic)")
                raw_len = f.read(_U32.size)
                if len(raw_len) < _U32.size:
                    raise DeltaLogError(f"{path!r} has a truncated header")
                (header_len,) = _U32.unpack(raw_len)
                raw = f.read(header_len)
                if len(raw) < header_len:
                    raise DeltaLogError(f"{path!r} has a truncated header")
                data_start = f.tell()
        except OSError as exc:
            raise DeltaLogError(f"cannot read delta log {path!r}: {exc}") from exc
        try:
            header = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise DeltaLogError(f"{path!r} has an undecodable header") from exc
        if (
            not isinstance(header, dict)
            or header.get("version") != 1
            or not isinstance(header.get("n_providers"), int)
            or not isinstance(header.get("noise_key"), str)
        ):
            raise DeltaLogError(f"{path!r} has a malformed header")
        return header, data_start

    # -- appends --------------------------------------------------------------

    def upsert(
        self,
        owner_id: int,
        providers,
        beta: float,
        name: Optional[str] = None,
    ) -> int:
        """Replace owner ``owner_id``'s true provider set and β."""
        providers = sorted({int(p) for p in providers})
        record: dict[str, Any] = {
            "op": OP_UPSERT,
            "owner": int(owner_id),
            "providers": providers,
            "beta": float(beta),
        }
        if name is not None:
            record["name"] = str(name)
        return self.append(record)

    def remove(self, owner_id: int) -> int:
        """Tombstone owner ``owner_id`` (idempotent)."""
        return self.append({"op": OP_REMOVE, "owner": int(owner_id)})

    def flip(
        self,
        owner_id: int,
        set_providers=(),
        clear_providers=(),
        beta: Optional[float] = None,
    ) -> int:
        """Set/clear individual true bits of owner ``owner_id``."""
        record: dict[str, Any] = {
            "op": OP_FLIP,
            "owner": int(owner_id),
            "set": sorted({int(p) for p in set_providers}),
            "clear": sorted({int(p) for p in clear_providers}),
        }
        if beta is not None:
            record["beta"] = float(beta)
        return self.append(record)

    def append(self, record: dict[str, Any]) -> int:
        """Validate, apply and durably append one record; returns its seq."""
        record = dict(record)
        record["seq"] = self._n_records
        self._validate(record)
        body = json.dumps(record, separators=(",", ":"), sort_keys=True).encode(
            "utf-8"
        )
        if self._file is None:
            self._file = open(self.path, "ab")
        self._file.write(_RECORD_HEADER.pack(len(body), zlib.crc32(body)) + body)
        self._file.flush()
        self._apply(record)
        self._n_records += 1
        self._end_offset += _RECORD_HEADER.size + len(body)
        return record["seq"]

    def _validate(self, record: dict[str, Any]) -> None:
        op = record.get("op")
        owner = record.get("owner")
        if not isinstance(owner, int) or owner < 0:
            raise DeltaLogError(f"invalid owner id {owner!r}")
        if op == OP_UPSERT:
            self._check_ids(record["providers"])
            self._check_beta(record["beta"])
        elif op == OP_REMOVE:
            pass
        elif op == OP_FLIP:
            self._check_ids(record["set"])
            self._check_ids(record["clear"])
            if "beta" in record:
                self._check_beta(record["beta"])
            else:
                prior = self._state.get(owner)
                if prior is None or prior.removed:
                    raise DeltaLogError(
                        f"flip for owner {owner} with no logged truth needs a beta"
                    )
        else:
            raise DeltaLogError(f"unknown delta op {op!r}")

    def _check_ids(self, providers) -> None:
        for p in providers:
            if not isinstance(p, int) or not 0 <= p < self.n_providers:
                raise DeltaLogError(f"provider id {p!r} out of range")

    def _check_beta(self, beta) -> None:
        if not isinstance(beta, (int, float)) or not 0.0 <= float(beta) <= 1.0:
            raise DeltaLogError(f"beta must lie in [0, 1], got {beta!r}")

    def _apply(self, record: dict[str, Any]) -> None:
        owner = int(record["owner"])
        op = record["op"]
        if op == OP_UPSERT:
            self._state[owner] = OwnerDelta(
                owner_id=owner,
                providers=set(record["providers"]),
                beta=float(record["beta"]),
                name=record.get("name"),
            )
        elif op == OP_REMOVE:
            prior = self._state.get(owner)
            self._state[owner] = OwnerDelta(
                owner_id=owner,
                name=prior.name if prior else None,
                removed=True,
            )
        elif op == OP_FLIP:
            prior = self._state.get(owner)
            if prior is None or prior.removed:
                prior = OwnerDelta(owner_id=owner)
            providers = (prior.providers | set(record["set"])) - set(
                record["clear"]
            )
            self._state[owner] = OwnerDelta(
                owner_id=owner,
                providers=providers,
                beta=float(record.get("beta", prior.beta)),
                name=prior.name,
            )

    # -- reads ----------------------------------------------------------------

    def __len__(self) -> int:
        return self._n_records

    def state(self) -> dict[int, OwnerDelta]:
        """Replayed net-per-owner state (a shallow copy; do not mutate)."""
        return dict(self._state)

    def records(self) -> Iterator[dict[str, Any]]:
        """Re-scan the file record by record (crc-verified)."""
        for record, _ in self.records_from(self.data_offset()):
            yield record

    def data_offset(self) -> int:
        """Byte offset of the first record (just past the header)."""
        if not self._data_start:
            _, self._data_start = self._read_header(self.path)
        return self._data_start

    @property
    def end_offset(self) -> int:
        """Byte offset one past the last good record -- the resume cursor."""
        return self._end_offset

    def records_from(
        self, offset: int
    ) -> Iterator[tuple[dict[str, Any], int]]:
        """Crc-verified scan from byte ``offset``, as ``(record, next_offset)``.

        The cursor contract for tailing readers (segment streamers): persist
        ``next_offset`` after consuming a record and pass it back later to
        resume without rereading the log from the top.  Valid offsets are
        :meth:`data_offset` or any ``next_offset`` this method yielded; an
        offset landing mid-record fails the crc check and raises.
        """
        data_start = self.data_offset()
        if not data_start <= offset <= self._end_offset:
            raise DeltaLogError(
                f"offset {offset} outside the record region "
                f"[{data_start}, {self._end_offset}] of {self.path!r}"
            )
        with open(self.path, "rb") as f:
            f.seek(offset)
            while f.tell() < self._end_offset:
                head = f.read(_RECORD_HEADER.size)
                if len(head) < _RECORD_HEADER.size:
                    raise DeltaLogError(
                        f"{self.path!r} corrupted under our feet"
                    )
                length, crc = _RECORD_HEADER.unpack(head)
                body = f.read(length)
                if len(body) < length or zlib.crc32(body) != crc:
                    raise DeltaLogError(f"{self.path!r} corrupted under our feet")
                yield json.loads(body.decode("utf-8")), f.tell()

    # -- lifecycle ------------------------------------------------------------

    def sync(self) -> None:
        """fsync the log file (durability barrier)."""
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "DeltaLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
