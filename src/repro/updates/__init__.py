"""Live index maintenance: delta log -> sealed segments -> compaction.

The paper builds the ǫ-PPI index once and serves it statically; this
package makes it a living index without giving up the privacy argument:

* :class:`DeltaLog` -- crc-checksummed append-only log of owner
  add/remove/bit-flip operations (:mod:`repro.updates.deltalog`);
* :class:`StickyOwnerStream` -- per-owner persisted noise streams, so a
  republished row keeps the *same* false positives and the multi-version
  intersection attack stays defeated (:mod:`repro.updates.noise`);
* :func:`seal_segment` / :class:`OverlayIndex` -- immutable mini postings
  overlays with the full query surface (:mod:`repro.updates.segments`);
* :func:`compact_snapshot` / :class:`Compactor` -- atomic merge of base +
  segments into a fresh epoch-stamped snapshot
  (:mod:`repro.updates.compactor`);
* :func:`diff_snapshots` -- operator-facing snapshot diff
  (:mod:`repro.updates.diff`).

The serving side (``reload`` verb, :meth:`FleetSupervisor.rollout`,
epoch-tagged caches) lives in :mod:`repro.serving`; ``docs/PROTOCOL.md``
and DESIGN.md §7.8 describe the end-to-end update path.
"""

from repro.updates.compactor import CompactionStats, Compactor, compact_snapshot
from repro.updates.deltalog import (
    OP_FLIP,
    OP_REMOVE,
    OP_UPSERT,
    DeltaLog,
    DeltaLogError,
    OwnerDelta,
)
from repro.updates.diff import diff_snapshots
from repro.updates.noise import StickyOwnerStream
from repro.updates.refresh import BetaRefresher, RefreshOutcome
from repro.updates.segments import (
    SEGMENT_FORMAT_VERSION,
    OverlayIndex,
    Segment,
    SegmentError,
    load_segment,
    seal_segment,
)

__all__ = [
    "BetaRefresher",
    "CompactionStats",
    "Compactor",
    "DeltaLog",
    "DeltaLogError",
    "OP_FLIP",
    "OP_REMOVE",
    "OP_UPSERT",
    "OverlayIndex",
    "OwnerDelta",
    "RefreshOutcome",
    "SEGMENT_FORMAT_VERSION",
    "Segment",
    "SegmentError",
    "StickyOwnerStream",
    "compact_snapshot",
    "diff_snapshots",
    "load_segment",
    "seal_segment",
]
