"""Message model and wire-size accounting for the network simulator.

The paper's prototype serialized protocol objects with Google protocol
buffers over Netty; we model wire cost as a fixed per-message header plus a
payload size that callers state explicitly (protocol code knows exactly how
many ring elements / bits it ships, so sizes are exact rather than guessed
from Python object graphs).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message", "HEADER_BITS", "ring_elements_bits"]

# TCP/IP + framing overhead per message, in bits (40-byte header equivalent).
HEADER_BITS = 40 * 8

_message_counter = itertools.count()


def ring_elements_bits(count: int, modulus: int) -> int:
    """Wire size of ``count`` ring elements of ``Z_modulus``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if modulus < 2:
        raise ValueError(f"modulus must be >= 2, got {modulus}")
    return count * max(1, (modulus - 1).bit_length())


@dataclass
class Message:
    """A point-to-point protocol message.

    ``payload`` is an arbitrary Python object consumed by the receiving
    node's handler; ``payload_bits`` is its declared wire size.  ``kind`` is a
    routing tag so node handlers can dispatch without isinstance checks.
    """

    sender: int
    recipient: int
    kind: str
    payload: Any
    payload_bits: int
    uid: int = field(default_factory=lambda: next(_message_counter))

    def __post_init__(self) -> None:
        if self.payload_bits < 0:
            raise ValueError(f"payload_bits must be >= 0, got {self.payload_bits}")

    @property
    def total_bits(self) -> int:
        return self.payload_bits + HEADER_BITS
