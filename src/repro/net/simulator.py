"""Deterministic discrete-event network simulator.

This substrate stands in for the paper's Emulab deployment (real machines,
Netty transport).  Protocol code runs as :class:`Node` actors exchanging
:class:`~repro.net.transport.Message` objects; the simulator delivers each
message after the latency-model transit time and charges declared compute
time to the receiving node, so the resulting ``finish_time_s`` is the same
start-to-end execution-time metric the paper reports.

Beyond delivery, the simulator supports:

* **timers** -- :meth:`Node.set_timer` schedules a callback, enabling
  timeout/retry protocols (used by the fault-tolerant service layer);
* **failure injection** -- a seeded per-message ``loss_probability`` drops
  messages in transit, for testing protocol robustness.

Determinism: event ordering ties are broken by a monotone sequence number,
and message loss draws come from a dedicated seeded RNG, so a fixed
protocol + seed always yields the identical trace (an invariant covered by
the test suite).
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable, Optional

from repro.net.latency import EMULAB_LAN, LatencyModel
from repro.net.metrics import NetworkMetrics
from repro.net.transport import Message

__all__ = ["Simulator", "Node"]


class Node:
    """Base class for protocol actors.

    Subclasses implement :meth:`on_start` and :meth:`on_message`.  A node has
    a private busy-clock: incoming messages queue behind compute it already
    scheduled, mimicking a single-threaded event-loop server.
    """

    def __init__(self, node_id: int):
        self.node_id = node_id
        self._sim: Optional["Simulator"] = None
        self._available_at = 0.0

    # -- lifecycle hooks (overridden by protocols) -----------------------------

    def on_start(self) -> None:
        """Called once at simulation start."""

    def on_message(self, message: Message) -> None:
        """Called when a message is delivered to this node."""

    # -- actions available to protocol code ------------------------------------

    @property
    def sim(self) -> "Simulator":
        if self._sim is None:
            raise RuntimeError("node is not attached to a simulator")
        return self._sim

    @property
    def now(self) -> float:
        return self.sim.now

    def send(self, recipient: int, kind: str, payload, payload_bits: int) -> None:
        """Queue a message to another node (delivered after transit time)."""
        self.sim._dispatch(
            Message(
                sender=self.node_id,
                recipient=recipient,
                kind=kind,
                payload=payload,
                payload_bits=payload_bits,
            )
        )

    def compute(self, seconds: float) -> None:
        """Charge local CPU time; later deliveries queue behind it."""
        if seconds < 0:
            raise ValueError(f"compute time must be >= 0, got {seconds}")
        busy_from = max(self._available_at, self.sim.now)
        self._available_at = busy_from + seconds
        self.sim.metrics.observe_time(self._available_at)

    def set_timer(self, delay_s: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` to run on this node after ``delay_s``.

        Returns a timer id usable with :meth:`cancel_timer`.  Timer
        callbacks run on the node's event loop (they queue behind pending
        compute like message deliveries do).
        """
        if delay_s < 0:
            raise ValueError(f"timer delay must be >= 0, got {delay_s}")
        return self.sim._schedule_timer(self.node_id, delay_s, callback)

    def cancel_timer(self, timer_id: int) -> None:
        """Cancel a pending timer (no-op if it already fired)."""
        self.sim._cancel_timer(timer_id)


class Simulator:
    """Event loop: attach nodes, call :meth:`run`, read :attr:`metrics`."""

    def __init__(
        self,
        latency: LatencyModel = EMULAB_LAN,
        loss_probability: float = 0.0,
        loss_seed: int = 0,
    ):
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(
                f"loss probability must be in [0, 1), got {loss_probability}"
            )
        self.latency = latency
        self.loss_probability = loss_probability
        self.nodes: dict[int, Node] = {}
        self.metrics = NetworkMetrics()
        self.now = 0.0
        self._queue: list[tuple[float, int, object]] = []
        self._seq = itertools.count()
        self._started = False
        self._loss_rng = random.Random(loss_seed)
        self._timer_ids = itertools.count()
        self._cancelled_timers: set[int] = set()
        self.dropped_messages = 0

    def add_node(self, node: Node) -> Node:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id}")
        node._sim = self
        self.nodes[node.node_id] = node
        return node

    def add_nodes(self, nodes) -> None:
        for n in nodes:
            self.add_node(n)

    def _dispatch(self, message: Message) -> None:
        if message.recipient not in self.nodes:
            raise ValueError(f"unknown recipient {message.recipient}")
        sender_node = self.nodes[message.sender]
        # A node cannot transmit before its pending compute finishes.
        depart = max(self.now, sender_node._available_at)
        self.metrics.record_send(message.sender, message.kind, message.total_bits)
        if self.loss_probability and self._loss_rng.random() < self.loss_probability:
            self.dropped_messages += 1
            return
        arrival = depart + self.latency.transit_time(message)
        heapq.heappush(self._queue, (arrival, next(self._seq), message))

    def _schedule_timer(
        self, node_id: int, delay_s: float, callback: Callable[[], None]
    ) -> int:
        timer_id = next(self._timer_ids)
        fire_at = self.now + delay_s
        heapq.heappush(
            self._queue, (fire_at, next(self._seq), _Timer(node_id, timer_id, callback))
        )
        return timer_id

    def _cancel_timer(self, timer_id: int) -> None:
        self._cancelled_timers.add(timer_id)

    def run(self, max_events: int = 10_000_000) -> NetworkMetrics:
        """Start all nodes and drain the event queue to quiescence."""
        if not self._started:
            self._started = True
            for node in self.nodes.values():
                node.on_start()
        events = 0
        while self._queue:
            events += 1
            if events > max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events (livelock?)"
                )
            when, _, event = heapq.heappop(self._queue)
            if isinstance(event, _Timer):
                if event.timer_id in self._cancelled_timers:
                    self._cancelled_timers.discard(event.timer_id)
                    continue
                node = self.nodes[event.node_id]
                self.now = max(when, node._available_at)
                self.metrics.observe_time(self.now)
                event.callback()
            else:
                node = self.nodes[event.recipient]
                # Delivery waits for the node to become free.
                self.now = max(when, node._available_at)
                self.metrics.observe_time(self.now)
                node.on_message(event)
        return self.metrics


class _Timer:
    """Internal timer event."""

    __slots__ = ("node_id", "timer_id", "callback")

    def __init__(self, node_id: int, timer_id: int, callback: Callable[[], None]):
        self.node_id = node_id
        self.timer_id = timer_id
        self.callback = callback
