"""Discrete-event network simulation substrate.

Stands in for the Emulab testbed of the paper's evaluation: protocol actors
(:class:`Node`) exchange sized messages through a :class:`Simulator` whose
latency model is configurable (LAN profile matching the paper's deployment,
plus a WAN profile for ablations).  The simulator reports the same
start-to-end execution-time metric as Fig. 6a/6c.
"""

from repro.net.latency import EMULAB_LAN, WAN, LatencyModel
from repro.net.metrics import NetworkMetrics
from repro.net.simulator import Node, Simulator
from repro.net.transport import HEADER_BITS, Message, ring_elements_bits

__all__ = [
    "EMULAB_LAN",
    "HEADER_BITS",
    "LatencyModel",
    "Message",
    "NetworkMetrics",
    "Node",
    "Simulator",
    "WAN",
    "ring_elements_bits",
]
