"""Aggregate network/execution metrics collected by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NetworkMetrics"]


@dataclass
class NetworkMetrics:
    """Counters accumulated over one simulation run.

    ``finish_time_s`` is the start-to-end execution time metric of the paper
    (Fig. 6a/6c): the simulated wall-clock instant at which the last node
    finished its last action.
    """

    messages: int = 0
    bits_sent: int = 0
    finish_time_s: float = 0.0
    per_node_bits: dict[int, int] = field(default_factory=dict)
    per_node_messages: dict[int, int] = field(default_factory=dict)
    per_kind_messages: dict[str, int] = field(default_factory=dict)

    @property
    def bytes_sent(self) -> float:
        return self.bits_sent / 8

    def record_send(self, sender: int, kind: str, bits: int) -> None:
        self.messages += 1
        self.bits_sent += bits
        self.per_node_bits[sender] = self.per_node_bits.get(sender, 0) + bits
        self.per_node_messages[sender] = self.per_node_messages.get(sender, 0) + 1
        self.per_kind_messages[kind] = self.per_kind_messages.get(kind, 0) + 1

    def observe_time(self, t: float) -> None:
        if t > self.finish_time_s:
            self.finish_time_s = t
