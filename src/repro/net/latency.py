"""Latency / cost models for the simulated network.

The default parameters approximate the paper's Emulab testbed (LAN of Quad
Core Xeon machines): sub-millisecond propagation, ~1 Gbps links, and a CPU
cost per MPC gate calibrated so that FairplayMP-scale circuits land in the
seconds-to-minutes range of Fig. 6a.  Absolute values need not match the
paper (their hardware, not ours); only ratios and scaling shape matter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.transport import Message

__all__ = ["LatencyModel", "EMULAB_LAN", "WAN"]


@dataclass(frozen=True)
class LatencyModel:
    """Transmission cost model: ``latency + bits / bandwidth``."""

    base_latency_s: float
    bandwidth_bps: float
    # CPU cost charged by the MPC cost replayer per Boolean gate evaluated.
    gate_compute_s: float = 1e-4
    # CPU cost per AND gate *per peer* on top of gate_compute_s: each AND
    # opening is an all-to-all exchange whose crypto/serialization work
    # scales with the number of protocol peers (this is what makes
    # many-party generic MPC super-linear, as in FairplayMP).
    and_extra_compute_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.base_latency_s < 0:
            raise ValueError("base latency must be >= 0")
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be > 0")

    def transit_time(self, message: Message) -> float:
        """Seconds for ``message`` to reach its recipient."""
        return self.base_latency_s + message.total_bits / self.bandwidth_bps


# Parameters chosen to echo the paper's Emulab LAN deployment.
EMULAB_LAN = LatencyModel(base_latency_s=0.0002, bandwidth_bps=1e9)

# A wide-area profile for the geo-distributed ablations.
WAN = LatencyModel(base_latency_s=0.040, bandwidth_bps=1e8)
