"""Tests for the discrete-event network simulator."""

import pytest

from repro.net.latency import EMULAB_LAN, WAN, LatencyModel
from repro.net.simulator import Node, Simulator
from repro.net.transport import Message


class PingNode(Node):
    """Sends one ping to a target at start; replies once to any ping."""

    def __init__(self, node_id, target=None):
        super().__init__(node_id)
        self.target = target
        self.received = []

    def on_start(self):
        if self.target is not None:
            self.send(self.target, "ping", "hello", payload_bits=80)

    def on_message(self, message: Message):
        self.received.append((message.kind, self.now))
        if message.kind == "ping":
            self.send(message.sender, "pong", "world", payload_bits=80)


class ComputeNode(Node):
    def __init__(self, node_id, seconds):
        super().__init__(node_id)
        self.seconds = seconds

    def on_start(self):
        self.compute(self.seconds)


class TestBasics:
    def test_ping_pong_delivery(self):
        sim = Simulator()
        a = sim.add_node(PingNode(0, target=1))
        b = sim.add_node(PingNode(1))
        metrics = sim.run()
        assert b.received and b.received[0][0] == "ping"
        assert a.received and a.received[0][0] == "pong"
        assert metrics.messages == 2

    def test_transit_time_applied(self):
        latency = LatencyModel(base_latency_s=1.0, bandwidth_bps=1e9)
        sim = Simulator(latency=latency)
        sim.add_node(PingNode(0, target=1))
        b = sim.add_node(PingNode(1))
        sim.run()
        # Ping arrives after >= 1s of base latency.
        assert b.received[0][1] >= 1.0

    def test_finish_time_covers_round_trip(self):
        latency = LatencyModel(base_latency_s=0.5, bandwidth_bps=1e9)
        sim = Simulator(latency=latency)
        sim.add_node(PingNode(0, target=1))
        sim.add_node(PingNode(1))
        metrics = sim.run()
        assert metrics.finish_time_s >= 1.0  # two hops

    def test_compute_time_counts_toward_finish(self):
        sim = Simulator()
        sim.add_node(ComputeNode(0, 2.5))
        metrics = sim.run()
        assert metrics.finish_time_s == pytest.approx(2.5)

    def test_delivery_queues_behind_compute(self):
        sim = Simulator(latency=LatencyModel(base_latency_s=0.001, bandwidth_bps=1e9))
        sim.add_node(PingNode(0, target=1))
        busy = ComputeNode(1, 5.0)
        busy.received = []
        busy.on_message = lambda msg: busy.received.append(busy.now)
        sim.add_node(busy)
        sim.run()
        assert busy.received[0] >= 5.0


class TestValidation:
    def test_duplicate_node_rejected(self):
        sim = Simulator()
        sim.add_node(PingNode(0))
        with pytest.raises(ValueError):
            sim.add_node(PingNode(0))

    def test_unknown_recipient_rejected(self):
        sim = Simulator()
        sim.add_node(PingNode(0, target=9))
        with pytest.raises(ValueError):
            sim.run()

    def test_negative_compute_rejected(self):
        sim = Simulator()
        node = sim.add_node(PingNode(0))
        sim.run()
        with pytest.raises(ValueError):
            node.compute(-1)

    def test_detached_node_has_no_sim(self):
        node = PingNode(0)
        with pytest.raises(RuntimeError):
            _ = node.sim

    def test_livelock_guard(self):
        class Chatter(Node):
            def on_start(self):
                self.send(1 - self.node_id, "spam", None, 8)

            def on_message(self, message):
                self.send(message.sender, "spam", None, 8)

        sim = Simulator()
        sim.add_node(Chatter(0))
        sim.add_node(Chatter(1))
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)


class TestDeterminism:
    def test_same_topology_same_trace(self):
        def build_and_run():
            sim = Simulator()
            for i in range(5):
                sim.add_node(PingNode(i, target=(i + 1) % 5))
            return sim.run()

        m1, m2 = build_and_run(), build_and_run()
        assert m1.messages == m2.messages
        assert m1.finish_time_s == m2.finish_time_s
        assert m1.bits_sent == m2.bits_sent


class TestMetrics:
    def test_per_node_accounting(self):
        sim = Simulator()
        sim.add_node(PingNode(0, target=1))
        sim.add_node(PingNode(1))
        metrics = sim.run()
        assert metrics.per_node_messages[0] == 1
        assert metrics.per_node_messages[1] == 1
        assert metrics.per_kind_messages == {"ping": 1, "pong": 1}

    def test_bytes_property(self):
        sim = Simulator()
        sim.add_node(PingNode(0, target=1))
        sim.add_node(PingNode(1))
        metrics = sim.run()
        assert metrics.bytes_sent == metrics.bits_sent / 8


class TestLatencyModels:
    def test_wan_slower_than_lan(self):
        msg = Message(sender=0, recipient=1, kind="x", payload=None, payload_bits=1000)
        assert WAN.transit_time(msg) > EMULAB_LAN.transit_time(msg)

    def test_bandwidth_term(self):
        model = LatencyModel(base_latency_s=0.0, bandwidth_bps=1000.0)
        msg = Message(sender=0, recipient=1, kind="x", payload=None, payload_bits=1000)
        assert model.transit_time(msg) == pytest.approx(msg.total_bits / 1000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyModel(base_latency_s=-1, bandwidth_bps=1e9)
        with pytest.raises(ValueError):
            LatencyModel(base_latency_s=0, bandwidth_bps=0)
