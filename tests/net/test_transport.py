"""Tests for message model and wire-size accounting."""

import pytest

from repro.net.transport import HEADER_BITS, Message, ring_elements_bits


class TestMessage:
    def test_total_includes_header(self):
        msg = Message(sender=0, recipient=1, kind="x", payload=None, payload_bits=100)
        assert msg.total_bits == 100 + HEADER_BITS

    def test_unique_uids(self):
        a = Message(sender=0, recipient=1, kind="x", payload=None, payload_bits=0)
        b = Message(sender=0, recipient=1, kind="x", payload=None, payload_bits=0)
        assert a.uid != b.uid

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Message(sender=0, recipient=1, kind="x", payload=None, payload_bits=-1)


class TestRingElementsBits:
    def test_bit_width_of_modulus(self):
        assert ring_elements_bits(10, 256) == 10 * 8
        assert ring_elements_bits(10, 257) == 10 * 9

    def test_binary_modulus(self):
        assert ring_elements_bits(4, 2) == 4  # 1 bit per element

    def test_zero_count(self):
        assert ring_elements_bits(0, 64) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_elements_bits(-1, 64)
        with pytest.raises(ValueError):
            ring_elements_bits(1, 1)
