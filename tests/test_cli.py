"""Tests for the command-line interface (full pipeline on temp files)."""

import json

import pytest

from repro.cli import load_dataset, main, save_dataset
from repro.core.model import InformationNetwork


@pytest.fixture
def dataset_path(tmp_path):
    path = tmp_path / "net.json"
    assert main([
        "generate", "--kind", "trec", "--providers", "20", "--owners", "40",
        "--seed", "3", "--output", str(path),
    ]) == 0
    return path


@pytest.fixture
def index_path(tmp_path, dataset_path):
    path = tmp_path / "index.json"
    assert main([
        "construct", "--dataset", str(dataset_path), "--output", str(path),
        "--policy", "chernoff", "--gamma", "0.9", "--seed", "1",
    ]) == 0
    return path


class TestGenerate:
    def test_dataset_file_valid(self, dataset_path):
        payload = json.loads(dataset_path.read_text())
        assert payload["n_providers"] == 20
        assert len(payload["owners"]) == 40
        assert payload["memberships"]

    def test_zipf_kind(self, tmp_path):
        path = tmp_path / "zipf.json"
        assert main([
            "generate", "--kind", "zipf", "--providers", "30", "--owners", "50",
            "--output", str(path),
        ]) == 0
        net = load_dataset(str(path))
        assert net.n_providers == 30
        assert net.n_owners == 50

    def test_roundtrip_preserves_network(self, tmp_path):
        net = InformationNetwork(5)
        a = net.register_owner("a", 0.5)
        net.delegate(a, 2)
        path = tmp_path / "x.json"
        save_dataset(str(path), net)
        loaded = load_dataset(str(path))
        assert loaded.n_providers == 5
        assert loaded.owner_by_name("a").epsilon == 0.5
        assert loaded.membership_matrix().providers_of(0) == {2}


class TestConstructQueryAttack:
    def test_construct_writes_index(self, index_path):
        payload = json.loads(index_path.read_text())
        assert payload["n_providers"] == 20

    def test_query_by_name(self, index_path, capsys):
        assert main([
            "query", "--index", str(index_path), "--owner", "host-000000.example.org",
        ]) == 0
        out = capsys.readouterr().out
        assert "candidate providers" in out

    def test_query_by_id(self, index_path, capsys):
        assert main(["query", "--index", str(index_path), "--owner", "0"]) == 0
        assert "candidate providers" in capsys.readouterr().out

    def test_attack_reports_degree(self, dataset_path, index_path, capsys):
        assert main([
            "attack", "--dataset", str(dataset_path), "--index", str(index_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "primary attack" in out
        assert "degree:" in out

    def test_inspect(self, index_path, capsys):
        assert main(["inspect", "--index", str(index_path)]) == 0
        out = capsys.readouterr().out
        assert "providers: 20" in out
        assert "owners: 40" in out

    def test_basic_policy_flag(self, tmp_path, dataset_path):
        path = tmp_path / "basic.json"
        assert main([
            "construct", "--dataset", str(dataset_path), "--output", str(path),
            "--policy", "basic",
        ]) == 0

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()


class TestSnapshotCLI:
    @pytest.fixture
    def snapshot_path(self, tmp_path, index_path):
        path = tmp_path / "index.npz"
        assert main([
            "snapshot", "build", "--index", str(index_path),
            "--output", str(path),
        ]) == 0
        return path

    def test_build_then_inspect(self, snapshot_path, capsys):
        assert main(["snapshot", "inspect", "--snapshot", str(snapshot_path)]) == 0
        out = capsys.readouterr().out
        assert "format_version: 3" in out  # v3 (epoch-stamped CSR) is the default
        assert "epoch: 0" in out
        assert "n_providers: 20" in out
        assert "n_owners: 40" in out
        assert "checksum_ok: True" in out

    def test_build_with_an_explicit_epoch(self, tmp_path, index_path, capsys):
        path = tmp_path / "index_e5.npz"
        assert main([
            "snapshot", "build", "--index", str(index_path),
            "--output", str(path), "--epoch", "5",
        ]) == 0
        assert main(["snapshot", "inspect", "--snapshot", str(path)]) == 0
        assert "epoch: 5" in capsys.readouterr().out

    def test_build_v1_format_flag(self, tmp_path, index_path, capsys):
        path = tmp_path / "index_v1.npz"
        assert main([
            "snapshot", "build", "--index", str(index_path),
            "--output", str(path), "--format", "v1",
        ]) == 0
        assert main(["snapshot", "inspect", "--snapshot", str(path)]) == 0
        assert "format_version: 1" in capsys.readouterr().out

    def test_snapshot_agrees_with_json_index(self, snapshot_path, index_path):
        import numpy as np

        from repro.core.index import PPIIndex
        from repro.serving.snapshot import load_snapshot

        from_snapshot = load_snapshot(str(snapshot_path))
        from_json = PPIIndex.from_json(index_path.read_text())
        assert np.array_equal(from_snapshot.matrix, from_json.matrix)
        assert from_snapshot.owner_names == from_json.owner_names

    def test_corrupt_snapshot_inspect_exits_nonzero(self, snapshot_path, capsys):
        import numpy as np

        with np.load(str(snapshot_path)) as archive:
            arrays = dict(archive)
        arrays["packed"] = arrays["packed"].copy()
        arrays["packed"][0] ^= 0xFF
        np.savez(str(snapshot_path), **arrays)
        assert main(["snapshot", "inspect", "--snapshot", str(snapshot_path)]) == 1
        assert "checksum_ok: False" in capsys.readouterr().out


class TestUpdateCLI:
    """The live-update pipeline end to end through the console entry point:
    init -> append -> apply -> compact -> diff."""

    @pytest.fixture
    def base_snapshot(self, tmp_path, index_path):
        path = tmp_path / "base.npz"
        assert main([
            "snapshot", "build", "--index", str(index_path),
            "--output", str(path),
        ]) == 0
        return path

    def test_full_pipeline(self, tmp_path, base_snapshot, capsys):
        log = tmp_path / "updates.log"
        assert main([
            "update", "init", "--log", str(log), "--providers", "20",
        ]) == 0
        assert main([
            "update", "append", "--log", str(log), "--op", "upsert",
            "--owner", "3", "--providers", "1,4,9", "--beta", "0.0",
            "--name", "moved-owner",
        ]) == 0
        assert main([
            "update", "append", "--log", str(log), "--op", "remove",
            "--owner", "7",
        ]) == 0
        assert main([
            "update", "append", "--log", str(log), "--op", "flip",
            "--owner", "3", "--set", "2", "--clear", "9",
        ]) == 0

        segment = tmp_path / "0001.seg.npz"
        assert main([
            "update", "apply", "--log", str(log), "--base", str(base_snapshot),
            "--output", str(segment),
        ]) == 0
        out = capsys.readouterr().out
        assert "n_entries: 2" in out
        assert "tombstones: 1" in out

        merged = tmp_path / "epoch1.npz"
        assert main([
            "update", "compact", "--base", str(base_snapshot),
            "--segment", str(segment), "--output", str(merged),
            "--delete-segments",
        ]) == 0
        out = capsys.readouterr().out
        assert "epoch 1" in out
        # The drift triple an incremental β refresh consumes is surfaced.
        assert "ops applied: 3" in out
        assert "owners touched: 2" in out
        assert "identities dirtied: 2" in out
        assert not segment.exists()

        assert main([
            "snapshot", "diff", str(base_snapshot), str(merged),
        ]) == 0
        out = capsys.readouterr().out
        assert "epoch delta: +1" in out
        assert "owners removed: 1" in out

        # The merged snapshot serves the updated truth (true bits forced).
        from repro.serving.snapshot import load_postings, snapshot_epoch

        assert snapshot_epoch(str(merged)) == 1
        postings = load_postings(str(merged))
        # beta=0.0 publishes the exact truth, so the row is deterministic
        # even though ``update init`` drew a random noise key.
        assert set(postings.query(3)) == {1, 2, 4}
        assert postings.query(7) == []

    def test_init_refuses_existing_log(self, tmp_path, capsys):
        log = tmp_path / "u.log"
        assert main(["update", "init", "--log", str(log), "--providers", "4"]) == 0
        assert main(["update", "init", "--log", str(log), "--providers", "4"]) == 1
        assert "already exists" in capsys.readouterr().err

    def test_apply_refuses_epoch_drift(self, tmp_path, base_snapshot, capsys):
        """A segment sealed against epoch 0 cannot be compacted into the
        epoch-1 base that replaced it."""
        log = tmp_path / "u.log"
        assert main(["update", "init", "--log", str(log), "--providers", "20"]) == 0
        assert main([
            "update", "append", "--log", str(log), "--op", "upsert",
            "--owner", "0", "--providers", "1", "--beta", "0.5",
        ]) == 0
        segment = tmp_path / "0001.seg.npz"
        assert main([
            "update", "apply", "--log", str(log), "--base", str(base_snapshot),
            "--output", str(segment),
        ]) == 0
        assert main([
            "update", "compact", "--base", str(base_snapshot),
            "--segment", str(segment),
        ]) == 0  # in place: base is now epoch 1
        capsys.readouterr()
        assert main([
            "update", "compact", "--base", str(base_snapshot),
            "--segment", str(segment),
        ]) == 1
        assert "epoch" in capsys.readouterr().err


class TestFleetRolloutCLI:
    def test_rollout_moves_a_live_fleet(self, tmp_path, index_path, capsys):
        """`eppi fleet rollout` against a real one-shard fleet: the shard
        must settle on the new snapshot's epoch without restarting."""
        from repro.serving.fleet import FleetSupervisor, sync_request

        base = tmp_path / "base.npz"
        assert main([
            "snapshot", "build", "--index", str(index_path),
            "--output", str(base),
        ]) == 0
        epoch1 = tmp_path / "epoch1.npz"
        assert main([
            "snapshot", "build", "--index", str(index_path),
            "--output", str(epoch1), "--epoch", "1",
        ]) == 0

        with FleetSupervisor(str(base), n_shards=1) as fleet:
            fleet.start(monitor=True)
            host, port = fleet.addresses[0]
            capsys.readouterr()
            assert main([
                "fleet", "rollout", "--server", f"{host}:{port}",
                "--snapshot", str(epoch1),
            ]) == 0
            assert "epoch 1" in capsys.readouterr().out
            assert sync_request(fleet.addresses[0], "info")["epoch"] == 1
            assert fleet.worker_states()[0]["restarts"] == 0

    def test_rollout_aborts_on_an_unreachable_shard(self, tmp_path, index_path, capsys):
        snapshot = tmp_path / "s.npz"
        assert main([
            "snapshot", "build", "--index", str(index_path),
            "--output", str(snapshot), "--epoch", "1",
        ]) == 0
        port = _unused_port()
        assert main([
            "fleet", "rollout", "--server", f"127.0.0.1:{port}",
            "--snapshot", str(snapshot), "--settle-timeout", "0.3",
        ]) == 1
        assert "aborting rollout" in capsys.readouterr().err


def _unused_port() -> int:
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestSupervisorCLI:
    def test_fleet_serves_then_exits_cleanly(self, tmp_path, index_path):
        """End-to-end over the real console entry point: start a 2-shard
        fleet as a subprocess, probe each advertised address, let the
        --duration timer expire, and require a zero exit + final report."""
        import os
        import subprocess
        import sys

        from repro.serving.fleet import sync_request

        snapshot = tmp_path / "index.npz"
        assert main([
            "snapshot", "build", "--index", str(index_path),
            "--output", str(snapshot),
        ]) == 0

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.join(os.path.dirname(__file__), os.pardir, "src"),
                env.get("PYTHONPATH", ""),
            ) if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "supervisor",
             "--snapshot", str(snapshot), "--shards", "2",
             "--health-interval", "0.1", "--duration", "4"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        try:
            addresses = []
            for _ in range(2):
                line = proc.stdout.readline()
                assert "listening on" in line, f"unexpected line: {line!r}"
                host, port = line.rsplit(" ", 1)[-1].strip().split(":")
                addresses.append((host, int(port)))
            for shard_id, addr in enumerate(addresses):
                response = sync_request(
                    addr, "query", timeout_s=2.0, owner=shard_id
                )
                assert isinstance(response["providers"], list)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "restarts=0" in out


class TestSecureConstruct:
    def _run(self, dataset_path, tmp_path, source, name):
        out = tmp_path / f"{name}.json"
        assert main([
            "secure-construct", "--dataset", str(dataset_path),
            "--output", str(out), "--engine", "batch",
            "--triple-source", source, "--seed", "5",
        ]) == 0
        return json.loads(out.read_text())

    def test_factory_mode_smoke(self, dataset_path, tmp_path, capsys):
        payload = self._run(dataset_path, tmp_path, "factory", "fac")
        captured = capsys.readouterr().out
        assert "per-phase accounting" in captured
        assert "phases" in payload
        assert payload["phases"]["offline"]["bits_sent"] > 0
        assert payload["phases"]["triple_words_consumed"] > 0

    def test_dealer_and_factory_agree(self, dataset_path, tmp_path):
        dealer = self._run(dataset_path, tmp_path, "dealer", "deal")
        factory = self._run(dataset_path, tmp_path, "factory", "fac")
        assert dealer["betas"] == factory["betas"]
        assert dealer["publish_as_one"] == factory["publish_as_one"]
        assert dealer["lambda"] == factory["lambda"]
        assert "phases" not in dealer
