"""Segment sealing/loading and the OverlayIndex query surface.

The invariants under test: a sealed segment stores *published* rows (true
bits plus the log's sticky false positives, never the raw truth), sealing
is atomic and re-sealing is bit-reproducible, and :class:`OverlayIndex`
answers every query exactly as the base would after a from-scratch merge.
"""

import os

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.core.index import PPIIndex
from repro.core.postings import PostingsIndex
from repro.updates import (
    SEGMENT_FORMAT_VERSION,
    DeltaLog,
    OverlayIndex,
    SegmentError,
    StickyOwnerStream,
    load_segment,
    seal_segment,
)

N_PROVIDERS = 8
N_OWNERS = 12
KEY = b"\x01" * 16


def base_index() -> PPIIndex:
    i, j = np.meshgrid(np.arange(N_PROVIDERS), np.arange(N_OWNERS), indexing="ij")
    matrix = ((2 * i + j) % 4 == 0).astype(np.uint8)
    return PPIIndex(matrix, owner_names=[f"owner-{n}" for n in range(N_OWNERS)])


@pytest.fixture
def log(tmp_path):
    with DeltaLog.create(
        str(tmp_path / "d.log"), N_PROVIDERS, noise_key=KEY
    ) as log:
        log.upsert(3, [1, 6], beta=0.5, name="moved-3")
        log.remove(7)
        log.upsert(N_OWNERS + 2, [0, 4], beta=0.25, name="newcomer")
        yield log


@pytest.fixture
def segment(log, tmp_path):
    path = str(tmp_path / "0001.seg.npz")
    seal_segment(log, path, base_epoch=0)
    return load_segment(path)


class TestSealLoad:
    def test_summary_and_round_trip(self, log, tmp_path):
        path = str(tmp_path / "s.seg.npz")
        summary = seal_segment(log, path, base_epoch=4)
        assert summary["n_entries"] == 3
        assert summary["tombstones"] == 1
        assert summary["base_epoch"] == 4
        segment = load_segment(path)
        assert segment.base_epoch == 4
        assert len(segment) == 3
        assert segment.owners.tolist() == [3, 7, N_OWNERS + 2]
        assert segment.name_of(3) == "moved-3"
        assert segment.name_of(7) is None  # remove keeps no name here
        assert 3 in segment and 4 not in segment

    def test_rows_are_published_not_raw_truth(self, segment):
        # True bits present, and exactly the sticky coins' false positives.
        stream = StickyOwnerStream(KEY)
        expected = stream.publish_row(3, [1, 6], 0.5, N_PROVIDERS)
        assert segment.postings(3).tolist() == expected.tolist()
        assert {1, 6} <= set(segment.postings(3).tolist())

    def test_tombstone_rows_are_empty(self, segment):
        assert segment.postings(7).size == 0
        assert segment.tombstones[segment.owners.tolist().index(7)] == 1

    def test_untouched_owner_yields_none(self, segment):
        assert segment.postings(0) is None

    def test_resealing_is_bit_identical(self, log, tmp_path):
        a, b = str(tmp_path / "a.seg.npz"), str(tmp_path / "b.seg.npz")
        seal_segment(log, a, base_epoch=0)
        seal_segment(log, b, base_epoch=0)
        sa, sb = load_segment(a), load_segment(b)
        assert np.array_equal(sa.indices, sb.indices)
        assert np.array_equal(sa.indptr, sb.indptr)

    def test_seal_rejects_negative_epoch(self, log, tmp_path):
        with pytest.raises(SegmentError, match="base epoch"):
            seal_segment(log, str(tmp_path / "s.seg.npz"), base_epoch=-1)

    def test_failed_seal_leaves_no_temp_file(self, log, tmp_path, monkeypatch):
        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            seal_segment(log, str(tmp_path / "s.seg.npz"), base_epoch=0)
        assert [p for p in os.listdir(tmp_path) if "seg" in p] == []


class TestLoadRejection:
    def _arrays(self, segment_path):
        with np.load(segment_path) as archive:
            return dict(archive)

    def _rewrite(self, path, arrays):
        np.savez(path, **arrays)

    @pytest.fixture
    def segment_path(self, log, tmp_path):
        path = str(tmp_path / "s.seg.npz")
        seal_segment(log, path, base_epoch=0)
        return path

    def test_missing_file_and_non_npz(self, tmp_path):
        with pytest.raises(SegmentError, match="cannot read"):
            load_segment(str(tmp_path / "nope.seg.npz"))
        junk = tmp_path / "junk.seg.npz"
        junk.write_bytes(b"not a zip")
        with pytest.raises(SegmentError):
            load_segment(str(junk))

    def test_missing_keys(self, segment_path):
        arrays = self._arrays(segment_path)
        del arrays["indices"]
        self._rewrite(segment_path, arrays)
        with pytest.raises(SegmentError, match="missing keys"):
            load_segment(segment_path)

    def test_unsupported_version(self, segment_path):
        arrays = self._arrays(segment_path)
        arrays["meta"] = arrays["meta"].copy()
        arrays["meta"][0] = SEGMENT_FORMAT_VERSION + 1
        self._rewrite(segment_path, arrays)
        with pytest.raises(SegmentError, match="unsupported"):
            load_segment(segment_path)

    def test_corrupted_payload_fails_checksum(self, segment_path):
        arrays = self._arrays(segment_path)
        arrays["indices"] = arrays["indices"].copy()
        arrays["indices"][0] += 1
        self._rewrite(segment_path, arrays)
        with pytest.raises(SegmentError, match="checksum"):
            load_segment(segment_path)

    def test_unsorted_owners_rejected(self, segment_path):
        import zlib

        arrays = self._arrays(segment_path)
        owners = arrays["owners"].copy()[::-1].copy()
        arrays["owners"] = owners
        crc = 0
        for key in ("owners", "indptr", "indices", "tombstones", "betas"):
            crc = zlib.crc32(np.ascontiguousarray(arrays[key]).tobytes(), crc)
        arrays["meta"] = arrays["meta"].copy()
        arrays["meta"][4] = crc  # keep the checksum honest
        self._rewrite(segment_path, arrays)
        with pytest.raises(SegmentError, match="malformed arrays"):
            load_segment(segment_path)


class TestOverlayIndex:
    def test_newest_segment_wins(self, tmp_path):
        base = base_index()
        paths = []
        for k, providers in enumerate(([1], [2, 5])):
            with DeltaLog.create(
                str(tmp_path / f"{k}.log"), N_PROVIDERS, noise_key=KEY
            ) as log:
                log.upsert(0, providers, beta=0.0)
            paths.append(str(tmp_path / f"{k}.seg.npz"))
            seal_segment(log, paths[-1], base_epoch=0)
        overlay = OverlayIndex(base, [load_segment(p) for p in paths])
        assert overlay.query(0) == [2, 5]  # the later segment's row
        assert overlay.overlay_owners == [0]

    def test_overlay_matches_base_for_untouched_owners(self, segment):
        base = base_index()
        overlay = OverlayIndex(base, [segment])
        for owner in range(N_OWNERS):
            if owner in (3, 7):
                continue
            assert overlay.query(owner) == base.query(owner)

    def test_tombstone_and_gap_owners_answer_empty(self, segment):
        overlay = OverlayIndex(base_index(), [segment])
        assert overlay.n_owners == N_OWNERS + 3
        assert overlay.query(7) == []  # tombstoned
        assert overlay.query(N_OWNERS) == []  # id gap below the newcomer
        assert overlay.query(N_OWNERS + 1) == []
        assert overlay.query(N_OWNERS + 2) != []  # the newcomer itself

    def test_out_of_range_owner_raises(self, segment):
        overlay = OverlayIndex(base_index(), [segment])
        with pytest.raises(ModelError, match="unknown owner"):
            overlay.query(overlay.n_owners)
        with pytest.raises(ModelError, match="unknown owner"):
            overlay.query_many([0, overlay.n_owners])

    def test_query_by_name_sees_segment_names(self, segment):
        overlay = OverlayIndex(base_index(), [segment])
        assert overlay.query_by_name("newcomer") == overlay.query(N_OWNERS + 2)
        assert overlay.query_by_name("owner-1") == overlay.query(1)
        with pytest.raises(ModelError, match="unknown owner name"):
            overlay.query_by_name("stranger")

    def test_batch_forms_agree_with_scalar_queries(self, segment):
        overlay = OverlayIndex(base_index(), [segment])
        ids = list(range(overlay.n_owners))
        assert overlay.query_many(ids) == [overlay.query(j) for j in ids]
        counts, flat = overlay.query_many_arrays(ids)
        assert counts.tolist() == [len(overlay.query(j)) for j in ids]
        assert flat.tolist() == [p for j in ids for p in overlay.query(j)]

    def test_sizes_and_stats_reflect_the_merge(self, segment):
        overlay = OverlayIndex(base_index(), [segment])
        sizes = overlay.result_sizes()
        for owner in range(overlay.n_owners):
            assert sizes[owner] == len(overlay.query(owner))
            assert overlay.result_size(owner) == sizes[owner]
            assert overlay.published_frequency(owner) == pytest.approx(
                sizes[owner] / N_PROVIDERS
            )
        stats = overlay.stats()
        assert stats.n_owners == overlay.n_owners
        assert stats.published_positives == overlay.nnz == int(sizes.sum())

    def test_accepts_dense_or_postings_base(self, segment):
        dense = OverlayIndex(base_index(), [segment])
        csr = OverlayIndex(PostingsIndex.from_index(base_index()), [segment])
        for owner in range(dense.n_owners):
            assert dense.query(owner) == csr.query(owner)

    def test_provider_universe_mismatch_rejected(self, tmp_path):
        with DeltaLog.create(str(tmp_path / "d.log"), 4, noise_key=KEY) as log:
            log.upsert(0, [1], beta=0.0)
        path = str(tmp_path / "s.seg.npz")
        seal_segment(log, path, base_epoch=0)
        with pytest.raises(ModelError, match="providers"):
            OverlayIndex(base_index(), [load_segment(path)])

    def test_to_postings_equals_per_owner_queries(self, segment):
        overlay = OverlayIndex(base_index(), [segment])
        merged = overlay.to_postings()
        assert merged.n_owners == overlay.n_owners
        assert merged.owner_names == overlay.owner_names
        for owner in range(overlay.n_owners):
            assert merged.query(owner) == overlay.query(owner)

    def test_to_postings_with_no_segments_is_the_base(self):
        base = PostingsIndex.from_index(base_index())
        merged = OverlayIndex(base).to_postings()
        assert np.array_equal(merged.to_dense(), base.to_dense())
