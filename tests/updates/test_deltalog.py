"""Delta-log tests: framing, replay, validation, crash recovery.

The write-ahead-log contract under test: every append is an independently
crc-framed record, reopening replays the net per-owner state, and a torn
tail (crash mid-append) is detected and truncated without disturbing the
records behind it.
"""

import os

import pytest

from repro.updates import (
    OP_FLIP,
    OP_REMOVE,
    OP_UPSERT,
    DeltaLog,
    DeltaLogError,
)

N_PROVIDERS = 8


@pytest.fixture
def log_path(tmp_path):
    return str(tmp_path / "updates.log")


class TestCreateOpen:
    def test_create_then_open_round_trips_header(self, log_path):
        log = DeltaLog.create(log_path, N_PROVIDERS, noise_key=b"k" * 16)
        log.close()
        reopened = DeltaLog.open(log_path)
        assert reopened.n_providers == N_PROVIDERS
        assert reopened.noise_key == b"k" * 16
        assert len(reopened) == 0
        assert reopened.repaired_bytes == 0

    def test_create_refuses_to_clobber(self, log_path):
        DeltaLog.create(log_path, N_PROVIDERS).close()
        with pytest.raises(DeltaLogError, match="already exists"):
            DeltaLog.create(log_path, N_PROVIDERS)

    def test_create_generates_a_key_when_absent(self, log_path):
        log = DeltaLog.create(log_path, N_PROVIDERS)
        assert len(log.noise_key) >= 16
        log.close()
        assert DeltaLog.open(log_path).noise_key == log.noise_key

    def test_create_rejects_empty_universe_and_key(self, tmp_path):
        with pytest.raises(DeltaLogError, match="at least one provider"):
            DeltaLog.create(str(tmp_path / "a.log"), 0)
        with pytest.raises(DeltaLogError, match="non-empty"):
            DeltaLog.create(str(tmp_path / "b.log"), 3, noise_key=b"")

    def test_constructor_is_gated(self, log_path):
        with pytest.raises(DeltaLogError, match="create"):
            DeltaLog(log_path, N_PROVIDERS, b"k")

    def test_open_rejects_non_logs(self, tmp_path):
        junk = tmp_path / "junk.log"
        junk.write_bytes(b"not a delta log at all")
        with pytest.raises(DeltaLogError, match="bad magic"):
            DeltaLog.open(str(junk))
        with pytest.raises(DeltaLogError, match="cannot read"):
            DeltaLog.open(str(tmp_path / "missing.log"))


class TestAppendReplay:
    def test_upsert_remove_flip_accumulate(self, log_path):
        with DeltaLog.create(log_path, N_PROVIDERS) as log:
            assert log.upsert(3, [1, 5, 2], beta=0.4, name="alice") == 0
            assert log.upsert(9, [0], beta=0.7) == 1
            assert log.remove(9) == 2
            assert log.flip(3, set_providers=[7], clear_providers=[5]) == 3
        state = DeltaLog.open(log_path).state()
        assert state[3].providers == {1, 2, 7}
        assert state[3].beta == 0.4
        assert state[3].name == "alice"
        assert not state[3].removed
        assert state[9].removed
        assert state[9].providers == set()

    def test_flip_without_prior_truth_needs_beta(self, log_path):
        with DeltaLog.create(log_path, N_PROVIDERS) as log:
            with pytest.raises(DeltaLogError, match="needs a beta"):
                log.flip(4, set_providers=[1])
            log.flip(4, set_providers=[1], beta=0.5)
            assert log.state()[4].providers == {1}
            assert log.state()[4].beta == 0.5

    def test_flip_after_remove_also_needs_beta(self, log_path):
        with DeltaLog.create(log_path, N_PROVIDERS) as log:
            log.upsert(4, [1], beta=0.5)
            log.remove(4)
            with pytest.raises(DeltaLogError, match="needs a beta"):
                log.flip(4, set_providers=[2])

    def test_provider_ids_are_range_checked(self, log_path):
        with DeltaLog.create(log_path, N_PROVIDERS) as log:
            with pytest.raises(DeltaLogError, match="out of range"):
                log.upsert(1, [N_PROVIDERS], beta=0.5)
            with pytest.raises(DeltaLogError, match="out of range"):
                log.flip(1, set_providers=[-1], beta=0.5)

    def test_beta_and_owner_are_validated(self, log_path):
        with DeltaLog.create(log_path, N_PROVIDERS) as log:
            with pytest.raises(DeltaLogError, match="beta"):
                log.upsert(1, [0], beta=1.5)
            with pytest.raises(DeltaLogError, match="invalid owner"):
                log.upsert(-2, [0], beta=0.5)
            with pytest.raises(DeltaLogError, match="unknown delta op"):
                log.append({"op": "sideways", "owner": 1})

    def test_records_rescans_what_was_written(self, log_path):
        with DeltaLog.create(log_path, N_PROVIDERS) as log:
            log.upsert(2, [0, 3], beta=0.25, name="bob")
            log.remove(5)
            log.flip(2, set_providers=[4])
        log = DeltaLog.open(log_path)
        records = list(log.records())
        assert [r["op"] for r in records] == [OP_UPSERT, OP_REMOVE, OP_FLIP]
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert records[0]["providers"] == [0, 3]

    def test_reopen_then_append_continues_the_sequence(self, log_path):
        with DeltaLog.create(log_path, N_PROVIDERS) as log:
            log.upsert(1, [0], beta=0.5)
        with DeltaLog.open(log_path) as log:
            assert log.upsert(2, [1], beta=0.5) == 1
        assert len(DeltaLog.open(log_path)) == 2


class TestCrashRecovery:
    def _write_three(self, log_path):
        with DeltaLog.create(log_path, N_PROVIDERS) as log:
            log.upsert(1, [0, 2], beta=0.5, name="a")
            log.upsert(2, [3], beta=0.25)
            log.remove(1)

    def test_torn_tail_is_truncated_and_appends_resume(self, log_path):
        self._write_three(log_path)
        intact = os.path.getsize(log_path)
        with open(log_path, "ab") as f:
            f.write(b"\x00\x00\x00\x40\xde\xad\xbe\xefpartial")  # torn record
        log = DeltaLog.open(log_path)
        assert log.repaired_bytes == os.path.getsize(log_path) + 15 - intact
        assert os.path.getsize(log_path) == intact  # tail gone
        assert len(log) == 3
        assert log.state()[1].removed
        with log:
            assert log.upsert(7, [1], beta=0.5) == 3  # appends work again
        assert len(DeltaLog.open(log_path)) == 4

    def test_half_written_record_header_is_dropped(self, log_path):
        self._write_three(log_path)
        with open(log_path, "ab") as f:
            f.write(b"\x00\x00")  # 2 of 8 header bytes
        log = DeltaLog.open(log_path)
        assert log.repaired_bytes == 2
        assert len(log) == 3

    def test_bit_rot_in_the_tail_record_is_dropped(self, log_path):
        self._write_three(log_path)
        size = os.path.getsize(log_path)
        with open(log_path, "r+b") as f:
            f.seek(size - 3)
            f.write(b"\xff")  # corrupt the last record's body
        log = DeltaLog.open(log_path)
        assert len(log) == 2  # the two intact records survive
        assert log.repaired_bytes > 0
        assert not log.state()[1].removed  # the dropped record was the remove

    def test_repair_false_reports_but_leaves_the_tail(self, log_path):
        self._write_three(log_path)
        with open(log_path, "ab") as f:
            f.write(b"junk")
        size = os.path.getsize(log_path)
        log = DeltaLog.open(log_path, repair=False)
        assert log.repaired_bytes == 4
        assert os.path.getsize(log_path) == size  # untouched

    def test_sync_is_a_durability_barrier_not_a_failure(self, log_path):
        with DeltaLog.create(log_path, N_PROVIDERS) as log:
            log.upsert(1, [0], beta=0.5)
            log.sync()
        assert len(DeltaLog.open(log_path)) == 1


class TestByteCursor:
    def test_records_from_resumes_at_any_yielded_offset(self, log_path):
        with DeltaLog.create(log_path, N_PROVIDERS, noise_key=b"k" * 16) as log:
            log.upsert(1, [0, 2], beta=0.5)
            log.upsert(2, [1], beta=0.5)
            log.remove(1)
        log = DeltaLog.open(log_path)
        walked = list(log.records_from(log.data_offset()))
        assert [r for r, _ in walked] == list(log.records())
        assert len(walked) == 3
        assert walked[-1][1] == log.end_offset
        # Every yielded next_offset is a valid resume cursor: the tail
        # from it is exactly the records not yet consumed.
        offsets = [log.data_offset()] + [pos for _, pos in walked]
        for skip, start in enumerate(offsets):
            assert list(log.records_from(start)) == walked[skip:]
        assert list(log.records_from(log.end_offset)) == []

    def test_offsets_outside_the_record_region_are_rejected(self, log_path):
        with DeltaLog.create(log_path, N_PROVIDERS) as log:
            log.upsert(1, [0], beta=0.5)
        log = DeltaLog.open(log_path)
        with pytest.raises(DeltaLogError, match="outside the record region"):
            list(log.records_from(0))  # inside the header
        with pytest.raises(DeltaLogError, match="outside the record region"):
            list(log.records_from(log.end_offset + 1))

    def test_mid_record_offset_fails_the_crc_not_the_reader(self, log_path):
        with DeltaLog.create(log_path, N_PROVIDERS) as log:
            log.upsert(1, [0], beta=0.5)
            log.upsert(2, [1], beta=0.5)
        log = DeltaLog.open(log_path)
        with pytest.raises(DeltaLogError, match="corrupted"):
            list(log.records_from(log.data_offset() + 1))

    def test_cursor_survives_reopen_and_append(self, log_path):
        with DeltaLog.create(log_path, N_PROVIDERS) as log:
            log.upsert(1, [0], beta=0.5)
            cursor = log.end_offset
        with DeltaLog.open(log_path) as log:
            log.upsert(2, [1], beta=0.5)
        tail = list(DeltaLog.open(log_path).records_from(cursor))
        assert len(tail) == 1
        assert tail[0][0]["owner"] == 2
