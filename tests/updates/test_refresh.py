"""BetaRefresher: drift intake, incremental refresh, epoch+1 landing.

The maintenance loop under test: serving-side churn (delta log +
compaction drift stats) accumulates a dirty set; once the drift threshold
trips, one ``secure_beta_update`` pass folds it into the held construction
and the changed β land as an ordinary epoch+1 snapshot whose republished
rows reuse the owners' sticky coins.
"""

import os
import random

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.core.index import PPIIndex
from repro.core.policies import BasicPolicy
from repro.mpc.betacalc import secure_beta_calculation
from repro.serving.snapshot import load_postings, save_snapshot, snapshot_epoch
from repro.updates import (
    BetaRefresher,
    CompactionStats,
    Compactor,
    DeltaLog,
    StickyOwnerStream,
    seal_segment,
)
from repro.updates.deltalog import OwnerDelta

M = 4
N = 12
C = 3
KEY = b"\x09" * 16


def fresh_construction(seed: int = 7):
    """(provider_bits, epsilons, held state) for one small universe."""
    rng = random.Random(seed)
    bits = [[rng.randint(0, 1) for _ in range(N)] for _ in range(M)]
    eps = [rng.choice([0.2, 0.4, 0.6]) for _ in range(N)]
    held = secure_beta_calculation(
        bits,
        eps,
        BasicPolicy(),
        C,
        random.Random(seed + 1),
        engine="batch",
        keep_state=True,
    )
    return bits, eps, held.state


def drift_stats(dirty_owners, epoch: int = 1) -> CompactionStats:
    return CompactionStats(
        epoch=epoch,
        base_epoch=epoch - 1,
        n_segments=1,
        ops_applied=len(dirty_owners),
        owners_touched=len(dirty_owners),
        identities_dirtied=len(dirty_owners),
        dirty_owners=sorted(dirty_owners),
        tombstones=0,
        consumed_segments=[],
    )


class TestValidation:
    def test_drift_threshold_bounds(self):
        bits, eps, state = fresh_construction()
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ModelError, match="threshold"):
                BetaRefresher(state, bits, drift_threshold=bad)

    def test_provider_count_checked(self):
        bits, eps, state = fresh_construction()
        with pytest.raises(ModelError, match="providers"):
            BetaRefresher(state, bits[:-1])

    def test_row_length_checked(self):
        bits, eps, state = fresh_construction()
        with pytest.raises(ModelError, match="identities"):
            BetaRefresher(state, [row[:-1] for row in bits])


class TestDriftIntake:
    def test_fold_updates_columns_and_marks_dirty(self):
        bits, eps, state = fresh_construction()
        refresher = BetaRefresher(state, bits)
        folded = refresher.fold(
            {
                2: OwnerDelta(2, providers={0, 3}, beta=0.0),
                5: OwnerDelta(5, removed=True),
            }
        )
        assert folded == [2, 5]
        assert refresher.pending == {2, 5}
        assert [bits[i][2] for i in range(M)] == [1, 0, 0, 1]
        assert [bits[i][5] for i in range(M)] == [0, 0, 0, 0]

    def test_fold_collects_out_of_universe_owners(self):
        bits, eps, state = fresh_construction()
        refresher = BetaRefresher(state, bits)
        folded = refresher.fold({N + 3: OwnerDelta(N + 3, providers={1})})
        assert folded == []
        assert refresher.out_of_universe == {N + 3}
        assert refresher.needs_full_rebuild
        assert not refresher.pending

    def test_observe_trips_the_threshold(self):
        bits, eps, state = fresh_construction()
        refresher = BetaRefresher(state, bits, drift_threshold=2 / N)
        assert refresher.observe(drift_stats([4])) is False
        assert refresher.drift_fraction == pytest.approx(1 / N)
        assert refresher.observe(drift_stats([4, 9])) is True
        assert refresher.should_refresh

    def test_observe_routes_unknown_owners_to_full_rebuild(self):
        bits, eps, state = fresh_construction()
        refresher = BetaRefresher(state, bits, drift_threshold=0.5)
        refresher.observe(drift_stats([1, N + 1]))
        assert refresher.pending == {1}
        assert refresher.out_of_universe == {N + 1}
        assert refresher.needs_full_rebuild

    def test_compactor_hook_feeds_the_refresher(self, tmp_path):
        bits, eps, state = fresh_construction()
        refresher = BetaRefresher(state, bits, drift_threshold=1 / N)
        base_path = str(tmp_path / "base.npz")
        matrix = np.array(bits, dtype=np.uint8)
        save_snapshot(PPIIndex(matrix), base_path, format_version=3, epoch=0)
        with DeltaLog.create(
            str(tmp_path / "u.log"), M, noise_key=KEY
        ) as log:
            log.upsert(3, [0, 2], beta=0.5)
            log.remove(8)
            seal_segment(log, str(tmp_path / "0001.seg.npz"), base_epoch=0)
        compactor = Compactor(
            base_path,
            str(tmp_path),
            min_segments=1,
            on_compaction=refresher.observe,
        )
        stats = compactor.run_once()
        assert stats is not None
        assert refresher.pending == {3, 8}
        assert refresher.should_refresh


class TestRefresh:
    def test_refresh_equals_coin_replayed_scratch(self):
        bits, eps, state = fresh_construction()
        refresher = BetaRefresher(state, bits)
        before = state.betas.copy()
        refresher.fold(
            {
                1: OwnerDelta(1, providers={0, 1, 2, 3}),
                6: OwnerDelta(6, removed=True),
            }
        )
        outcome = refresher.refresh(random.Random(0))
        assert outcome.dirty == [1, 6]
        assert set(outcome.dirty) <= set(outcome.closure)
        assert not refresher.pending
        assert refresher.refreshes == 1
        # The republished set is exactly the owners whose β moved.
        changed = np.flatnonzero(state.betas != before)
        assert outcome.republished == [int(j) for j in changed]
        scratch = secure_beta_calculation(
            bits,
            eps,
            BasicPolicy(),
            C,
            random.Random(99),
            engine="batch",
            coins=state.coins,
        )
        assert np.array_equal(state.betas, scratch.betas)
        assert state.publish_as_one == scratch.publish_as_one

    def test_refresh_with_nothing_pending_is_cheap_and_exact(self):
        bits, eps, state = fresh_construction()
        refresher = BetaRefresher(state, bits)
        before = state.betas.copy()
        outcome = refresher.refresh(random.Random(0))
        assert outcome.dirty == [] and outcome.republished == []
        assert np.array_equal(state.betas, before)


class FakeSupervisor:
    def __init__(self):
        self.rolled = None

    def rollout(self, path):
        self.rolled = path
        return [("rolled", 0)]


class TestRefreshAndLand:
    def landed_scenario(self, tmp_path, drift_threshold=1e-9):
        """Base snapshot of published rows + churn on a β<1 owner."""
        bits, eps, state = fresh_construction()
        stream = StickyOwnerStream(KEY)
        published = np.zeros((M, N), dtype=np.uint8)
        for j in range(N):
            row = stream.publish_row(
                j,
                [i for i in range(M) if bits[i][j]],
                float(state.betas[j]),
                M,
            )
            published[row, j] = 1
        base_path = str(tmp_path / "base.npz")
        save_snapshot(
            PPIIndex(published), base_path, format_version=3, epoch=0
        )
        refresher = BetaRefresher(state, bits, drift_threshold=drift_threshold)
        betas_before = state.betas.copy()
        truth_before = [list(row) for row in bits]
        return bits, state, refresher, base_path, stream, betas_before, truth_before

    def test_landing_bumps_the_epoch_with_sticky_rows(self, tmp_path):
        (
            bits,
            state,
            refresher,
            base_path,
            stream,
            betas_before,
            truth_before,
        ) = self.landed_scenario(tmp_path)
        # Churn every unselected owner onto a new frequency so at least
        # one β must move (selected owners may ride out λ drift at β=1).
        deltas = {}
        for j in range(N):
            if not state.publish_as_one[j]:
                freq = sum(bits[i][j] for i in range(M))
                members = set(range(M)) if freq < M else {0}
                deltas[j] = OwnerDelta(j, providers=members)
        refresher.fold(deltas)
        before_rows = {
            j: load_postings(base_path).query(j) for j in range(N)
        }
        supervisor = FakeSupervisor()
        outcome = refresher.refresh_and_land(
            base_path,
            str(tmp_path),
            KEY,
            rng=random.Random(1),
            supervisor=supervisor,
        )
        assert outcome.republished, "scenario must move at least one β"
        assert outcome.epoch == 1
        assert snapshot_epoch(base_path) == 1
        assert supervisor.rolled == base_path
        assert outcome.rollout_events == [("rolled", 0)]
        postings = load_postings(base_path)
        republished = set(outcome.republished)
        for j in range(N):
            truth = [i for i in range(M) if bits[i][j]]
            expected = stream.publish_row(
                j, truth, float(state.betas[j]), M
            ).tolist()
            if j in republished:
                # Fresh row under the new β, same persisted coins.
                assert postings.query(j) == expected
                # Intersection closure: the false-positive part of the
                # old∩new rows is exactly the sticky noise set at
                # min(β_old, β_new) -- coins are never redrawn, so
                # intersecting versions reveals no standing noise bit.
                old, new = set(before_rows[j]), set(postings.query(j))
                truth_union = set(truth) | {
                    i for i in range(M) if truth_before[i][j]
                }
                coins = stream.coins(j, M)
                beta_min = min(float(betas_before[j]), float(state.betas[j]))
                noise_floor = {
                    p for p in range(M) if coins[p] < beta_min
                }
                assert (old & new) - truth_union == noise_floor - truth_union
            else:
                # Untouched owners' rows survive the compaction unchanged.
                assert postings.query(j) == before_rows[j]
        # The scratch pieces were cleaned out of the workdir.
        leftovers = [
            p
            for p in os.listdir(tmp_path)
            if p.startswith("beta-refresh-")
        ]
        assert leftovers == []

    def test_no_beta_change_lands_nothing(self, tmp_path):
        bits, state, refresher, base_path = self.landed_scenario(tmp_path)[:4]
        outcome = refresher.refresh_and_land(
            base_path, str(tmp_path), KEY, rng=random.Random(2)
        )
        assert outcome.republished == []
        assert outcome.epoch == 0
        assert snapshot_epoch(base_path) == 0
        assert outcome.snapshot == {}
