"""Compaction tests: merge correctness, epoch discipline, crash atomicity.

The headline fault injection SIGKILLs a real compactor process after it
has fully staged the merged snapshot but *before* ``os.replace`` publishes
it: the base snapshot must stay byte-identical (a partial compaction is
invisible), and a rerun must complete on the next epoch.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro.core.index import PPIIndex
from repro.serving.snapshot import load_postings, save_snapshot, snapshot_epoch
from repro.updates import (
    Compactor,
    DeltaLog,
    OverlayIndex,
    SegmentError,
    compact_snapshot,
    load_segment,
    seal_segment,
)

N_PROVIDERS = 8
N_OWNERS = 16
KEY = b"\x02" * 16


def base_index() -> PPIIndex:
    i, j = np.meshgrid(np.arange(N_PROVIDERS), np.arange(N_OWNERS), indexing="ij")
    matrix = ((i * 3 + j) % 5 == 0).astype(np.uint8)
    return PPIIndex(matrix, owner_names=[f"owner-{n}" for n in range(N_OWNERS)])


def make_base(tmp_path, epoch: int = 0) -> str:
    path = str(tmp_path / "base.npz")
    save_snapshot(base_index(), path, format_version=3, epoch=epoch)
    return path


def make_segment(tmp_path, name: str, base_epoch: int = 0, owner: int = 2):
    log_path = str(tmp_path / f"{name}.log")
    with DeltaLog.create(log_path, N_PROVIDERS, noise_key=KEY) as log:
        log.upsert(owner, [1, 4], beta=0.5, name=f"moved-{owner}")
        log.remove(5)
    path = str(tmp_path / f"{name}.seg.npz")
    seal_segment(log, path, base_epoch=base_epoch)
    return path


class TestCompactSnapshot:
    def test_merge_bumps_epoch_and_matches_the_overlay(self, tmp_path):
        base_path = make_base(tmp_path, epoch=3)
        seg_path = make_segment(tmp_path, "0001", base_epoch=3)
        out = str(tmp_path / "merged.npz")
        summary = compact_snapshot(base_path, [seg_path], out)
        assert summary["epoch"] == 4
        assert summary["consumed_segments"] == [seg_path]
        assert snapshot_epoch(out) == 4
        merged = load_postings(out)
        overlay = OverlayIndex(
            load_postings(base_path), [load_segment(seg_path)]
        )
        for owner in range(overlay.n_owners):
            assert merged.query(owner) == overlay.query(owner)

    def test_in_place_compaction_replaces_the_base(self, tmp_path):
        base_path = make_base(tmp_path)
        seg_path = make_segment(tmp_path, "0001")
        compact_snapshot(base_path, [seg_path])
        assert snapshot_epoch(base_path) == 1
        assert load_postings(base_path).query(5) == []  # the tombstone landed

    def test_epoch_mismatched_segment_refused(self, tmp_path):
        base_path = make_base(tmp_path, epoch=2)
        seg_path = make_segment(tmp_path, "0001", base_epoch=1)
        with pytest.raises(SegmentError, match="epoch 1.*epoch 2"):
            compact_snapshot(base_path, [seg_path])
        assert snapshot_epoch(base_path) == 2  # base untouched

    def test_chained_epochs_compose(self, tmp_path):
        base_path = make_base(tmp_path)
        compact_snapshot(base_path, [make_segment(tmp_path, "0001", 0, owner=1)])
        compact_snapshot(base_path, [make_segment(tmp_path, "0002", 1, owner=9)])
        assert snapshot_epoch(base_path) == 2
        merged = load_postings(base_path)
        assert set(merged.query(1)) >= {1, 4}
        assert set(merged.query(9)) >= {1, 4}


class TestCompactorLoop:
    def test_run_once_below_threshold_is_a_no_op(self, tmp_path):
        base_path = make_base(tmp_path)
        compactor = Compactor(base_path, str(tmp_path), min_segments=2)
        make_segment(tmp_path, "0001.dontmatch", base_epoch=0)  # wrong suffix dir
        os.rename(
            str(tmp_path / "0001.dontmatch.seg.npz"),
            str(tmp_path / "only-one.seg.npz"),
        )
        assert compactor.run_once() is None
        assert compactor.compactions == 0

    def test_run_once_consumes_segments_after_publishing(self, tmp_path):
        base_path = make_base(tmp_path)
        seg = make_segment(tmp_path, "0001")
        compactor = Compactor(base_path, str(tmp_path), min_segments=1)
        assert compactor.pending() == [seg]
        summary = compactor.run_once()
        assert summary["epoch"] == 1
        assert not os.path.exists(seg)  # unlinked only after the replace
        assert compactor.pending() == []
        assert compactor.compactions == 1

    def test_failed_round_leaves_base_and_segments_alone(self, tmp_path):
        base_path = make_base(tmp_path, epoch=2)
        seg = make_segment(tmp_path, "0001", base_epoch=0)  # mismatched
        compactor = Compactor(base_path, str(tmp_path), min_segments=1)
        with pytest.raises(SegmentError):
            compactor.run_once()
        assert os.path.exists(seg)
        assert snapshot_epoch(base_path) == 2

    def test_background_thread_compacts_new_segments(self, tmp_path):
        base_path = make_base(tmp_path)
        with Compactor(
            base_path, str(tmp_path), min_segments=1, interval_s=0.02
        ).start() as compactor:
            make_segment(tmp_path, "0001")
            deadline = time.monotonic() + 10.0
            while compactor.compactions == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
        assert compactor.compactions >= 1
        assert snapshot_epoch(base_path) == 1

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError):
            Compactor("b", "d", min_segments=0)
        with pytest.raises(ValueError):
            Compactor("b", "d", interval_s=0.0)


class TestDriftStats:
    """``run_once`` reports the per-owner drift an incremental β refresh
    consumes, without re-reading anything but the segments themselves."""

    def test_run_once_returns_the_drift_triple(self, tmp_path):
        base_path = make_base(tmp_path)
        log_path = str(tmp_path / "drift.log")
        with DeltaLog.create(log_path, N_PROVIDERS, noise_key=KEY) as log:
            log.upsert(2, [1, 4], beta=0.5)
            log.upsert(2, [1, 4, 6], beta=0.75)  # same owner, two ops
            log.remove(5)
        seal_segment(log, str(tmp_path / "0001.seg.npz"), base_epoch=0)
        stats = Compactor(base_path, str(tmp_path), min_segments=1).run_once()
        assert stats.ops_applied == 3
        assert stats.owners_touched == 2  # net overlay entries
        assert stats.identities_dirtied == 2
        assert stats.dirty_owners == [2, 5]
        assert stats.tombstones == 1
        assert stats.n_segments == 1
        assert stats.per_owner[2] == {
            "segments": 1,
            "removed": False,
            "beta": 0.75,
        }
        assert stats.per_owner[5]["removed"] is True

    def test_later_segments_win_in_per_owner_detail(self, tmp_path):
        base_path = make_base(tmp_path)
        make_segment(tmp_path, "0001", owner=2)  # upsert beta=0.5 + remove 5
        log_path = str(tmp_path / "later.log")
        with DeltaLog.create(log_path, N_PROVIDERS, noise_key=KEY) as log:
            log.upsert(2, [0], beta=0.25)
        seal_segment(log, str(tmp_path / "0002.seg.npz"), base_epoch=0)
        stats = Compactor(base_path, str(tmp_path), min_segments=2).run_once()
        assert stats.identities_dirtied == 2
        assert stats.per_owner[2] == {
            "segments": 2,
            "removed": False,
            "beta": 0.25,
        }

    def test_dict_compatible_reads_and_as_dict(self, tmp_path):
        base_path = make_base(tmp_path)
        make_segment(tmp_path, "0001")
        stats = Compactor(base_path, str(tmp_path), min_segments=1).run_once()
        assert stats["epoch"] == 1  # old summary-dict call sites still work
        assert stats["ops_applied"] == stats.ops_applied
        assert stats.get("no-such-key", 42) == 42
        merged = stats.as_dict()
        assert merged["dirty_owners"] == stats.dirty_owners
        assert merged["epoch"] == 1

    def test_on_compaction_hook_sees_every_round(self, tmp_path):
        base_path = make_base(tmp_path)
        seen = []
        compactor = Compactor(
            base_path, str(tmp_path), min_segments=1,
            on_compaction=seen.append,
        )
        assert compactor.run_once() is None  # below threshold: no callback
        assert seen == []
        make_segment(tmp_path, "0001")
        stats = compactor.run_once()
        make_segment(tmp_path, "0002", base_epoch=1, owner=9)
        compactor.run_once()
        assert [s.epoch for s in seen] == [1, 2]
        assert seen[0] is stats
        assert seen[1].dirty_owners == [5, 9]


class TestCrashAtomicity:
    def test_sigkill_before_replace_is_invisible(self, tmp_path):
        """Kill a real compactor staged right before ``os.replace``."""
        base_path = make_base(tmp_path)
        seg_path = make_segment(tmp_path, "0001")
        with open(base_path, "rb") as f:
            base_bytes = f.read()

        child_code = textwrap.dedent(
            """
            import os, sys, time
            import repro.serving.snapshot as snap

            def stall_forever(src, dst):
                print("STAGED", flush=True)
                time.sleep(600)

            snap.os.replace = stall_forever
            from repro.updates import compact_snapshot
            compact_snapshot(sys.argv[1], [sys.argv[2]])
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [env.get("PYTHONPATH"), "src"])
        )
        child = subprocess.Popen(
            [sys.executable, "-c", child_code, base_path, seg_path],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            assert child.stdout.readline().strip() == "STAGED"
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()

        # The partial compaction is invisible: base byte-identical, segment
        # still pending; at most a stray same-directory temp file remains.
        with open(base_path, "rb") as f:
            assert f.read() == base_bytes
        assert snapshot_epoch(base_path) == 0
        assert os.path.exists(seg_path)
        strays = [p for p in os.listdir(tmp_path) if ".tmp." in p]
        assert len(strays) <= 1

        # The rerun completes on the next epoch as if nothing happened.
        summary = Compactor(base_path, str(tmp_path), min_segments=1).run_once()
        assert summary["epoch"] == 1
        assert snapshot_epoch(base_path) == 1
        assert not os.path.exists(seg_path)
