"""Tests for CountBelow and the secure β-selection circuits (paper Alg. 2)."""

import random

import pytest

from repro.core.mixing import compute_lambda
from repro.mpc.countbelow import (
    COIN_BITS,
    EPSILON_SCALE_BITS,
    build_count_circuit,
    build_selection_circuit,
    run_beta_selection,
    run_count_below,
    scale_epsilon,
)
from repro.mpc.field import Zq, default_modulus_for_sum
from repro.mpc.secsum import SecSumShare


def coordinator_shares_for(frequencies, m, c=3, seed=1):
    """Produce genuine SecSumShare outputs for identities with the given
    frequencies (identity j held by the first frequencies[j] providers)."""
    inputs = [
        [1 if i < f else 0 for f in frequencies] for i in range(m)
    ]
    ring = Zq(default_modulus_for_sum(m))
    result = SecSumShare(m=m, c=c, ring=ring, rng=random.Random(seed)).run(inputs)
    return result.coordinator_shares, ring


class TestCountBelow:
    def test_counts_common_identities(self):
        # frequencies [2, 7, 8, 3] with thresholds [5, 5, 5, 5]:
        # identities 1 and 2 are >= 5 -> 2 commons.
        shares, ring = coordinator_shares_for([2, 7, 8, 3], m=8)
        res = run_count_below(
            shares, [5, 5, 5, 5], [0.5, 0.6, 0.7, 0.8], ring, random.Random(2)
        )
        assert res.n_common == 2

    def test_xi_is_max_epsilon_of_commons(self):
        shares, ring = coordinator_shares_for([2, 7, 8, 3], m=8)
        res = run_count_below(
            shares, [5, 5, 5, 5], [0.9, 0.6, 0.7, 0.8], ring, random.Random(2)
        )
        # Commons are identities 1 (eps 0.6) and 2 (eps 0.7) -> xi ~ 0.7.
        assert abs(res.xi - 0.7) < 2 / (1 << EPSILON_SCALE_BITS)

    def test_no_commons(self):
        shares, ring = coordinator_shares_for([1, 2, 3], m=8)
        res = run_count_below(shares, [7, 7, 7], [0.5] * 3, ring, random.Random(2))
        assert res.n_common == 0
        assert res.xi == 0.0

    def test_all_common(self):
        shares, ring = coordinator_shares_for([8, 8], m=8)
        res = run_count_below(shares, [1, 1], [0.4, 0.2], ring, random.Random(2))
        assert res.n_common == 2
        assert abs(res.xi - 0.4) < 2 / (1 << EPSILON_SCALE_BITS)

    def test_unreachable_threshold_means_never_common(self):
        shares, ring = coordinator_shares_for([8], m=8)
        # threshold above the ring capacity: identity can never be common.
        res = run_count_below(shares, [ring.q + 5], [0.5], ring, random.Random(2))
        assert res.n_common == 0

    def test_per_identity_thresholds(self):
        shares, ring = coordinator_shares_for([4, 4], m=8)
        res = run_count_below(shares, [4, 5], [0.5, 0.5], ring, random.Random(2))
        assert res.n_common == 1  # only identity 0 (threshold 4 <= 4)

    def test_requires_power_of_two_modulus(self):
        shares, _ = coordinator_shares_for([1], m=8)
        with pytest.raises(ValueError):
            run_count_below(shares, [2], [0.5], Zq(10), random.Random(2))

    def test_stats_accounted(self):
        shares, ring = coordinator_shares_for([2, 7], m=8)
        res = run_count_below(shares, [5, 5], [0.5, 0.5], ring, random.Random(2))
        assert res.stats.and_gates > 0
        assert res.stats.parties == 3
        assert res.circuit.stats().multiplicative_size == res.stats.and_gates


class TestSelection:
    def test_commons_always_selected(self):
        shares, ring = coordinator_shares_for([8, 1], m=8)
        res = run_beta_selection(shares, [5, 5], 0.0, ring, random.Random(3))
        assert res.publish_as_one[0] == 1  # common: must be published as 1
        assert res.publish_as_one[1] == 0  # lambda=0: no decoys

    def test_lambda_one_selects_everything(self):
        shares, ring = coordinator_shares_for([1, 2, 3], m=8)
        res = run_beta_selection(shares, [7, 7, 7], 1.0, ring, random.Random(3))
        assert res.publish_as_one == [1, 1, 1]

    def test_decoy_rate_close_to_lambda(self):
        n = 120
        shares, ring = coordinator_shares_for([1] * n, m=8, seed=5)
        res = run_beta_selection(shares, [7] * n, 0.5, ring, random.Random(9))
        rate = sum(res.publish_as_one) / n
        assert 0.3 < rate < 0.7

    def test_invalid_lambda_rejected(self):
        shares, ring = coordinator_shares_for([1], m=8)
        with pytest.raises(ValueError):
            run_beta_selection(shares, [7], 1.5, ring, random.Random(3))


class TestCircuitBuilders:
    def test_count_circuit_input_layout(self):
        circuit = build_count_circuit(
            c=3, thresholds=[4, 4], epsilons_scaled=[10, 20], width=4,
            high_threshold=4,
        )
        assert circuit.n_inputs == 3 * 2 * 4

    def test_count_circuit_output_width(self):
        circuit = build_count_circuit(
            c=2, thresholds=[4] * 5, epsilons_scaled=[0] * 5, width=4,
            high_threshold=4,
        )
        # two popcounts over 5 bits (4 bits each) plus xi bits.
        assert len(circuit.outputs) == 2 * 4 + EPSILON_SCALE_BITS

    def test_selection_circuit_input_layout(self):
        circuit = build_selection_circuit(c=2, thresholds=[4, 4], lambda_scaled=100, width=4)
        assert circuit.n_inputs == 2 * 2 * (4 + COIN_BITS)

    def test_mismatched_thresholds_rejected(self):
        with pytest.raises(ValueError):
            build_count_circuit(
                c=2, thresholds=[1, 2], epsilons_scaled=[1], width=4,
                high_threshold=1,
            )

    def test_lambda_scaled_range_checked(self):
        with pytest.raises(ValueError):
            build_selection_circuit(
                c=2, thresholds=[1], lambda_scaled=(1 << COIN_BITS) + 1, width=4
            )


class TestScaleEpsilon:
    def test_bounds(self):
        assert scale_epsilon(0.0) == 0
        assert scale_epsilon(1.0) == (1 << EPSILON_SCALE_BITS) - 1

    def test_monotone(self):
        values = [scale_epsilon(e / 10) for e in range(11)]
        assert values == sorted(values)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            scale_epsilon(1.5)


class TestEndToEndConsistency:
    def test_lambda_pipeline_matches_reference(self):
        """CountBelow's public outputs drive the same lambda as computed
        directly from the plaintext frequencies."""
        freqs = [2, 7, 8, 3, 1]
        eps = [0.5, 0.6, 0.7, 0.8, 0.2]
        thresholds = [5] * 5
        shares, ring = coordinator_shares_for(freqs, m=8)
        res = run_count_below(shares, thresholds, eps, ring, random.Random(4))
        lam_secure = compute_lambda(res.n_common, 5, res.xi)
        true_commons = [j for j, f in enumerate(freqs) if f >= 5]
        xi_ref = max(eps[j] for j in true_commons)
        lam_ref = compute_lambda(len(true_commons), 5, xi_ref)
        assert res.n_common == len(true_commons)
        assert abs(lam_secure - lam_ref) < 0.01
