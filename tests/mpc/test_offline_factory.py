"""Tests for the asynchronous triple factory and its bounded queue."""

import os
import signal
import time

import numpy as np
import pytest

from repro.mpc.offline.factory import (
    FactoryTripleSource,
    OfflineProducerError,
    QueueClosed,
    TripleFactory,
    TripleQueue,
)
from repro.mpc.offline.sources import OfflineExhausted


def _block(words, parties=3, fill=1):
    arr = np.full((words, parties), fill, dtype=np.uint64)
    return arr, arr.copy(), arr.copy()


def _fast_factory(**kwargs):
    """Factory with the wire model off: tests exercise logic, not timing."""
    kwargs.setdefault("parties", 3)
    kwargs.setdefault("seed", 42)
    kwargs.setdefault("producers", 2)
    kwargs.setdefault("link_bandwidth_bps", None)
    return TripleFactory(**kwargs)


class TestTripleQueue:
    def test_put_take_roundtrip(self):
        q = TripleQueue(capacity_words=64)
        q.put_block(*_block(8))
        a, b, c = q.take(8)
        assert a.shape == (8, 3)
        assert q.words_taken == 8

    def test_take_spans_blocks(self):
        q = TripleQueue(capacity_words=64)
        q.put_block(*_block(4, fill=1))
        q.put_block(*_block(4, fill=2))
        a, _, _ = q.take(6)
        assert list(a[:, 0]) == [1, 1, 1, 1, 2, 2]
        # The second block's tail is still there.
        a2, _, _ = q.take(2)
        assert list(a2[:, 0]) == [2, 2]

    def test_partial_head_tracked(self):
        q = TripleQueue(capacity_words=64)
        q.put_block(*_block(8))
        q.take(3)
        q.take(5)
        assert q.depth_words == 0

    def test_watermark_hysteresis(self):
        q = TripleQueue(capacity_words=8, low_watermark=2)
        q.put_block(*_block(8))  # exactly at capacity -> draining
        assert q._draining
        q.take(5)  # depth 3 > watermark: still draining
        assert q._draining
        q.take(1)  # depth 2 == watermark: reopened
        assert not q._draining
        assert q.refill_cycles == 1

    def test_starved_take_overrides_watermark(self):
        q = TripleQueue(capacity_words=8, low_watermark=0)
        q.put_block(*_block(8))
        assert q._draining
        # More than the remaining depth: the take must reopen puts rather
        # than wait for a drain that can never come.
        import threading

        def feed():
            time.sleep(0.05)
            q.put_block(*_block(4))

        t = threading.Thread(target=feed)
        t.start()
        a, _, _ = q.take(12, timeout=5)
        t.join()
        assert a.shape[0] == 12

    def test_take_after_finish_raises_exhausted(self):
        q = TripleQueue(capacity_words=64)
        q.put_block(*_block(4))
        q.finish()
        q.take(4)  # the buffered words still serve
        with pytest.raises(OfflineExhausted):
            q.take(1)

    def test_unfinish_rearms(self):
        q = TripleQueue(capacity_words=64)
        q.finish()
        q.unfinish()
        q.put_block(*_block(2))
        a, _, _ = q.take(2)
        assert a.shape[0] == 2

    def test_close_wakes_taker(self):
        q = TripleQueue(capacity_words=64)
        import threading

        threading.Timer(0.05, q.close).start()
        with pytest.raises(QueueClosed):
            q.take(1, timeout=5)

    def test_fail_poisons_queue(self):
        q = TripleQueue(capacity_words=64)
        q.fail(RuntimeError("boom"))
        with pytest.raises(OfflineProducerError):
            q.take(1)
        with pytest.raises(OfflineProducerError):
            q.put_block(*_block(1))

    def test_take_timeout(self):
        q = TripleQueue(capacity_words=64)
        with pytest.raises(Exception, match="timed out"):
            q.take(1, timeout=0.05)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            TripleQueue(capacity_words=0)
        with pytest.raises(ValueError):
            TripleQueue(capacity_words=4, low_watermark=9)


class TestTripleFactoryThreads:
    def test_produces_valid_triples(self):
        with _fast_factory(target_words=96, block_words=32) as f:
            a, b, c = f.source().deal_batch(96)
        ra = np.bitwise_xor.reduce(a, axis=1)
        rb = np.bitwise_xor.reduce(b, axis=1)
        rc = np.bitwise_xor.reduce(c, axis=1)
        assert np.array_equal(rc, ra & rb)

    def test_join_producers_prefills(self):
        f = _fast_factory(target_words=64, capacity_words=64).start()
        try:
            f.join_producers(timeout=30)
            assert f.words_produced == 64
            assert f.production_span_s > 0
        finally:
            f.close()

    def test_join_requires_capacity(self):
        f = _fast_factory(target_words=128, capacity_words=64).start()
        try:
            with pytest.raises(Exception, match="capacity_words"):
                f.join_producers()
        finally:
            f.close()

    def test_exhaustion_past_quota(self):
        with _fast_factory(target_words=32) as f:
            src = f.source()
            src.deal_batch(32)
            with pytest.raises(OfflineExhausted):
                src.deal_batch(1)

    def test_add_quota_on_live_workers(self):
        with _fast_factory(target_words=32) as f:
            src = f.source()
            src.deal_batch(32)
            f.add_quota(32)
            a, _, _ = src.deal_batch(32)
            assert a.shape[0] == 32

    def test_add_quota_before_any_take(self):
        with _fast_factory(target_words=0) as f:
            f.add_quota(16)
            a, _, _ = f.source().deal_batch(16)
            assert a.shape[0] == 16

    def test_zero_quota_finishes_immediately(self):
        with _fast_factory(target_words=0) as f:
            f.join_producers(timeout=10)
            with pytest.raises(OfflineExhausted):
                f.source().deal_batch(1)

    def test_setup_and_offline_stats_populate(self):
        with _fast_factory(target_words=64, producers=2) as f:
            f.join_producers(timeout=30)
            assert f.setup_stats.bits_sent > 0
            assert f.offline_stats.bits_sent > 0
            # Parallel producers: rounds follow the slowest producer, so
            # strictly less than the sum over all blocks.
            total_block_rounds = 2 * len(
                range(0, 64, f.block_words)
            ) * f.producers
            assert 0 < f.offline_stats.rounds < total_block_rounds

    def test_close_is_fast_and_idempotent(self):
        f = TripleFactory(parties=3, seed=1, target_words=1 << 16, producers=2).start()
        time.sleep(0.05)  # mid-production, wire waits in flight
        start = time.perf_counter()
        f.close()
        assert time.perf_counter() - start < 1.0
        f.close()

    def test_deterministic_across_factories(self):
        with _fast_factory(target_words=64, producers=1) as f1:
            a1, b1, c1 = f1.source().deal_batch(64)
        with _fast_factory(target_words=64, producers=1) as f2:
            a2, b2, c2 = f2.source().deal_batch(64)
        assert np.array_equal(a1, a2)
        assert np.array_equal(c1, c2)

    def test_source_requires_started_factory(self):
        f = _fast_factory(target_words=8)
        with pytest.raises(Exception, match="not started"):
            f.source()
        f.start()
        f.close()

    def test_validation(self):
        with pytest.raises(ValueError):
            _fast_factory(target_words=-1)
        with pytest.raises(ValueError):
            _fast_factory(target_words=8, producers=0)
        with pytest.raises(ValueError):
            _fast_factory(target_words=8, mode="fiber")


class TestTripleFactoryProcesses:
    def test_produces_valid_triples(self):
        with _fast_factory(target_words=64, mode="process") as f:
            a, b, c = f.source().deal_batch(64)
        rc = np.bitwise_xor.reduce(c, axis=1)
        ra = np.bitwise_xor.reduce(a, axis=1)
        rb = np.bitwise_xor.reduce(b, axis=1)
        assert np.array_equal(rc, ra & rb)

    def test_killed_producer_raises_not_hangs(self):
        f = TripleFactory(
            parties=3,
            seed=1,
            target_words=1 << 20,  # far more than we will ever produce
            producers=2,
            mode="process",
            link_bandwidth_bps=None,
        ).start()
        try:
            time.sleep(0.2)  # let the workers boot
            for w in f._workers:
                os.kill(w.pid, signal.SIGKILL)
            start = time.perf_counter()
            with pytest.raises(OfflineProducerError):
                f.source().deal_batch(1 << 20)
            assert time.perf_counter() - start < 30
        finally:
            f.close()

    def test_crashing_producer_propagates_message(self):
        f = TripleFactory(
            parties=3,
            seed=1,
            target_words=64,
            producers=1,
            mode="process",
            kappa=128,
            link_bandwidth_bps=None,
        ).start()
        try:
            # Sabotage: close the work queue under the worker to force an
            # exception inside _producer_main on some platforms is flaky;
            # instead verify the error path through the queue directly.
            f.queue.fail(OfflineProducerError("producer 0 failed: boom"))
            with pytest.raises(OfflineProducerError, match="boom"):
                f.source().deal_batch(64)
        finally:
            f.close()


class TestFactoryTripleSource:
    def test_scalar_deal_serves_lane_by_lane(self):
        with _fast_factory(target_words=2) as f:
            src = f.source()
            triples = [src.deal() for _ in range(70)]
        assert src.issued == 70
        assert src.words_consumed == 2
        for shares in triples:
            a = b = c = 0
            for s in shares:
                a ^= s.a
                b ^= s.b
                c ^= s.c
            assert c == (a & b)

    def test_partial_lanes_consume_full_word(self):
        with _fast_factory(target_words=4) as f:
            src = f.source()
            a, _, _ = src.deal_batch(2, lanes=3)
            assert not np.any(a & np.uint64(~0b111 & 0xFFFFFFFFFFFFFFFF))
            assert src.words_consumed == 2
            assert src.issued == 6

    def test_stall_time_accumulates(self):
        with _fast_factory(target_words=32) as f:
            src = f.source()
            src.deal_batch(32)
            assert isinstance(src, FactoryTripleSource)
            assert src.stall_time_s >= 0.0
