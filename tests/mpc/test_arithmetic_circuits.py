"""Tests for adder / comparator / popcount circuits against int semantics."""

import pytest

from repro.mpc.circuits import (
    CircuitBuilder,
    add_many,
    bits_to_int,
    equals_const,
    evaluate,
    greater_equal,
    int_to_bits,
    less_than,
    less_than_const,
    popcount,
    ripple_add,
    ripple_add_mod2k,
)


class TestRippleAdd:
    @pytest.mark.parametrize("width", [1, 2, 4, 6])
    def test_exhaustive_small_widths(self, width):
        b = CircuitBuilder()
        xs, ys = b.input_bits(width), b.input_bits(width)
        b.output_bits(ripple_add(b, xs, ys))
        circuit = b.build()
        step = max(1, (1 << width) // 8)
        for x in range(0, 1 << width, step):
            for y in range(0, 1 << width, step):
                out = evaluate(circuit, int_to_bits(x, width) + int_to_bits(y, width))
                assert bits_to_int(out) == x + y

    def test_output_one_bit_wider(self):
        b = CircuitBuilder()
        out = ripple_add(b, b.input_bits(5), b.input_bits(5))
        assert len(out) == 6

    def test_width_mismatch_rejected(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            ripple_add(b, b.input_bits(3), b.input_bits(4))


class TestModularAdd:
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_wraps_mod_2k(self, width):
        b = CircuitBuilder()
        xs, ys = b.input_bits(width), b.input_bits(width)
        b.output_bits(ripple_add_mod2k(b, xs, ys))
        circuit = b.build()
        for x in range(1 << width):
            for y in range(1 << width):
                out = evaluate(circuit, int_to_bits(x, width) + int_to_bits(y, width))
                assert bits_to_int(out) == (x + y) % (1 << width)


class TestAddMany:
    def test_exact_sum_of_many(self):
        b = CircuitBuilder()
        numbers = [b.input_bits(3) for _ in range(5)]
        b.output_bits(add_many(b, numbers))
        circuit = b.build()
        vals = [7, 3, 0, 5, 6]
        inputs = [bit for v in vals for bit in int_to_bits(v, 3)]
        assert bits_to_int(evaluate(circuit, inputs)) == sum(vals)

    def test_modular_sum_of_many(self):
        b = CircuitBuilder()
        numbers = [b.input_bits(3) for _ in range(4)]
        b.output_bits(add_many(b, numbers, modular=True))
        circuit = b.build()
        vals = [7, 7, 7, 5]
        inputs = [bit for v in vals for bit in int_to_bits(v, 3)]
        assert bits_to_int(evaluate(circuit, inputs)) == sum(vals) % 8

    def test_single_number_passthrough(self):
        b = CircuitBuilder()
        n = b.input_bits(4)
        b.output_bits(add_many(b, [n]))
        assert bits_to_int(evaluate(b.build(), int_to_bits(11, 4))) == 11

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            add_many(CircuitBuilder(), [])

    def test_width_mismatch_rejected(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            add_many(b, [b.input_bits(2), b.input_bits(3)])


class TestPopcount:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13])
    def test_counts_set_bits(self, n):
        b = CircuitBuilder()
        bits = b.input_bits(n)
        b.output_bits(popcount(b, bits))
        circuit = b.build()
        for pattern in range(0, 1 << n, max(1, (1 << n) // 32)):
            inputs = int_to_bits(pattern, n)
            assert bits_to_int(evaluate(circuit, inputs)) == sum(inputs)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            popcount(CircuitBuilder(), [])


class TestComparators:
    @pytest.mark.parametrize("width", [1, 3, 5])
    def test_less_than_exhaustive(self, width):
        b = CircuitBuilder()
        xs, ys = b.input_bits(width), b.input_bits(width)
        b.output(less_than(b, xs, ys))
        circuit = b.build()
        step = max(1, (1 << width) // 8)
        for x in range(0, 1 << width, step):
            for y in range(0, 1 << width, step):
                out = evaluate(circuit, int_to_bits(x, width) + int_to_bits(y, width))
                assert out == [1 if x < y else 0], (x, y)

    def test_less_than_const(self):
        b = CircuitBuilder()
        xs = b.input_bits(4)
        b.output(less_than_const(b, xs, 9))
        circuit = b.build()
        for x in range(16):
            assert evaluate(circuit, int_to_bits(x, 4)) == [1 if x < 9 else 0]

    def test_greater_equal(self):
        b = CircuitBuilder()
        xs, ys = b.input_bits(3), b.input_bits(3)
        b.output(greater_equal(b, xs, ys))
        circuit = b.build()
        for x in range(8):
            for y in range(8):
                out = evaluate(circuit, int_to_bits(x, 3) + int_to_bits(y, 3))
                assert out == [1 if x >= y else 0]

    def test_equals_const(self):
        b = CircuitBuilder()
        xs = b.input_bits(4)
        b.output(equals_const(b, xs, 6))
        circuit = b.build()
        for x in range(16):
            assert evaluate(circuit, int_to_bits(x, 4)) == [1 if x == 6 else 0]

    def test_width_mismatch_rejected(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            less_than(b, b.input_bits(2), b.input_bits(3))


class TestCircuitCost:
    def test_less_than_uses_one_and_per_bit(self):
        b = CircuitBuilder()
        less_than(b, b.input_bits(8), b.input_bits(8))
        assert b.circuit.stats().and_ == 8

    def test_full_adder_uses_one_and_per_bit(self):
        b = CircuitBuilder()
        ripple_add(b, b.input_bits(8), b.input_bits(8))
        assert b.circuit.stats().and_ == 8
