"""Tests for the BGW arithmetic MPC engine."""

import random

import pytest

from repro.mpc.bgw import BGWEngine
from repro.mpc.shamir import DEFAULT_PRIME


@pytest.fixture
def engine():
    return BGWEngine(threshold=2, parties=3, rng=random.Random(7))


class TestLinearOps:
    def test_share_open_roundtrip(self, engine):
        for v in (0, 1, 123456, DEFAULT_PRIME - 1):
            assert engine.open(engine.share(v)) == v

    def test_addition(self, engine):
        a, b = engine.share(100), engine.share(23)
        assert engine.open(engine.add(a, b)) == 123

    def test_add_constant(self, engine):
        a = engine.share(100)
        assert engine.open(engine.add_constant(a, 7)) == 107

    def test_scale(self, engine):
        a = engine.share(100)
        assert engine.open(engine.scale(a, 5)) == 500

    def test_sum_many_is_free(self, engine):
        values = [engine.share(v) for v in (1, 2, 3, 4, 5)]
        before = engine.stats.rounds
        total = engine.sum(values)
        assert engine.stats.rounds == before  # no interaction
        assert engine.open(total) == 15

    def test_sum_empty_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.sum([])


class TestMultiplication:
    @pytest.mark.parametrize("t,n", [(2, 3), (2, 5), (3, 5)])
    def test_product_correct(self, t, n):
        engine = BGWEngine(threshold=t, parties=n, rng=random.Random(3))
        for a, b in ((0, 5), (7, 9), (12345, 67890)):
            pa, pb = engine.share(a), engine.share(b)
            assert engine.open(engine.multiply(pa, pb)) == a * b

    def test_degree_reduction_enables_chaining(self, engine):
        """After degree reduction the product can be multiplied again --
        the whole point of the resharing step."""
        a, b, c = engine.share(3), engine.share(4), engine.share(5)
        prod = engine.multiply(engine.multiply(a, b), c)
        assert engine.open(prod) == 60

    def test_multiplication_costs_a_round(self, engine):
        a, b = engine.share(2), engine.share(3)
        before = engine.stats.rounds
        engine.multiply(a, b)
        assert engine.stats.rounds == before + 1
        assert engine.stats.multiplications == 1

    def test_product_linear_combination(self, engine):
        """(a*b) + 2c: mixing interactive and free operations."""
        a, b, c = engine.share(6), engine.share(7), engine.share(10)
        expr = engine.add(engine.multiply(a, b), engine.scale(c, 2))
        assert engine.open(expr) == 62


class TestValidation:
    def test_honest_majority_required(self):
        with pytest.raises(ValueError):
            BGWEngine(threshold=3, parties=4, rng=random.Random(1))

    def test_stats_parties(self, engine):
        assert engine.stats.parties == 3


class TestModelComparison:
    """The related-work trade-off: sums are free in arithmetic MPC but cost
    AND-gates in the Boolean model -- and vice versa for comparisons."""

    def test_arithmetic_sum_beats_boolean_popcount(self):
        from repro.mpc.circuits import CircuitBuilder, popcount
        from repro.mpc.gmw import GMWProtocol

        m = 16
        # Boolean: popcount of m shared bits under GMW.
        b = CircuitBuilder()
        bits = b.input_bits(m)
        b.output_bits(popcount(b, bits))
        gmw = GMWProtocol(b.build(), parties=3, rng=random.Random(5))
        gmw_result = gmw.run([1] * m)

        # Arithmetic: sum of m shared values under BGW.
        engine = BGWEngine(threshold=2, parties=3, rng=random.Random(5))
        values = [engine.share(1) for _ in range(m)]
        rounds_before = engine.stats.rounds
        total = engine.sum(values)
        sum_rounds = engine.stats.rounds - rounds_before
        assert engine.open(total) == m

        assert sum_rounds == 0  # free
        assert gmw_result.stats.and_gates > 0  # Boolean pays per bit
