"""Tests for Z_q ring arithmetic."""

import random

import pytest

from repro.mpc.field import Zq, default_modulus_for_sum


class TestDefaultModulus:
    def test_exceeds_max_sum(self):
        for max_sum in (0, 1, 5, 127, 128, 1000):
            assert default_modulus_for_sum(max_sum) > max_sum

    def test_power_of_two(self):
        for max_sum in (0, 3, 100, 4096):
            q = default_modulus_for_sum(max_sum)
            assert q & (q - 1) == 0

    def test_tight(self):
        assert default_modulus_for_sum(7) == 8
        assert default_modulus_for_sum(8) == 16

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            default_modulus_for_sum(-1)


class TestZq:
    def setup_method(self):
        self.ring = Zq(97)

    def test_reduce_canonical(self):
        assert self.ring.reduce(97) == 0
        assert self.ring.reduce(-1) == 96
        assert self.ring.reduce(100) == 3

    def test_add_sub_inverse(self):
        for a in (0, 1, 50, 96):
            for b in (0, 13, 96):
                assert self.ring.sub(self.ring.add(a, b), b) == a

    def test_neg(self):
        assert self.ring.add(5, self.ring.neg(5)) == 0
        assert self.ring.neg(0) == 0

    def test_mul_matches_python(self):
        assert self.ring.mul(13, 17) == (13 * 17) % 97

    def test_sum(self):
        xs = [10, 20, 30, 96]
        assert self.ring.sum(xs) == sum(xs) % 97

    def test_sum_empty(self):
        assert self.ring.sum([]) == 0

    def test_inverse(self):
        for a in (1, 2, 50, 96):
            assert self.ring.mul(a, self.ring.inv(a)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            self.ring.inv(0)

    def test_non_invertible_raises(self):
        ring = Zq(12)
        with pytest.raises(ZeroDivisionError):
            ring.inv(4)  # gcd(4, 12) = 4

    def test_pow(self):
        assert self.ring.pow(3, 5) == pow(3, 5, 97)

    def test_random_element_in_range(self):
        rng = random.Random(1)
        for _ in range(100):
            assert self.ring.contains(self.ring.random_element(rng))

    def test_random_elements_count(self):
        rng = random.Random(1)
        assert len(self.ring.random_elements(rng, 17)) == 17

    def test_check_all(self):
        self.ring.check_all([0, 1, 96])
        with pytest.raises(ValueError):
            self.ring.check_all([0, 97])

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            Zq(1)

    def test_deterministic_given_seed(self):
        a = Zq(64).random_elements(random.Random(42), 10)
        b = Zq(64).random_elements(random.Random(42), 10)
        assert a == b
