"""Tests for (t, n) Shamir secret sharing."""

import random

import pytest

from repro.mpc.shamir import DEFAULT_PRIME, ShamirSharing


@pytest.fixture
def scheme():
    return ShamirSharing(threshold=3, parties=5)


class TestShareReconstruct:
    def test_roundtrip_all_shares(self, scheme, rng):
        for secret in (0, 1, 123456789, DEFAULT_PRIME - 1):
            shares = scheme.share(secret, rng)
            assert scheme.reconstruct(shares) == secret

    def test_any_threshold_subset_reconstructs(self, scheme, rng):
        shares = scheme.share(4242, rng)
        import itertools

        for subset in itertools.combinations(shares, 3):
            assert scheme.reconstruct(list(subset)) == 4242

    def test_below_threshold_rejected(self, scheme, rng):
        shares = scheme.share(4242, rng)
        with pytest.raises(ValueError):
            scheme.reconstruct(shares[:2])

    def test_duplicate_x_rejected(self, scheme, rng):
        shares = scheme.share(4242, rng)
        with pytest.raises(ValueError):
            scheme.reconstruct([shares[0], shares[0], shares[1]])

    def test_one_share_per_party(self, scheme, rng):
        shares = scheme.share(1, rng)
        assert [s.x for s in shares] == [1, 2, 3, 4, 5]

    def test_secret_reduced_mod_prime(self, scheme, rng):
        shares = scheme.share(DEFAULT_PRIME + 7, rng)
        assert scheme.reconstruct(shares) == 7


class TestParameters:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            ShamirSharing(threshold=0, parties=3)

    def test_parties_at_least_threshold(self):
        with pytest.raises(ValueError):
            ShamirSharing(threshold=4, parties=3)

    def test_prime_exceeds_parties(self):
        with pytest.raises(ValueError):
            ShamirSharing(threshold=2, parties=7, prime=7)

    def test_threshold_one_is_constant_polynomial(self, rng):
        scheme = ShamirSharing(threshold=1, parties=4)
        shares = scheme.share(99, rng)
        assert all(s.y == 99 for s in shares)


class TestHomomorphism:
    def test_addition(self, scheme, rng):
        a = scheme.share(100, rng)
        b = scheme.share(23, rng)
        assert scheme.reconstruct(scheme.add(a, b)) == 123

    def test_add_constant(self, scheme, rng):
        a = scheme.share(100, rng)
        assert scheme.reconstruct(scheme.add_constant(a, 5)) == 105

    def test_scale(self, scheme, rng):
        a = scheme.share(100, rng)
        assert scheme.reconstruct(scheme.scale(a, 3)) == 300

    def test_misaligned_vectors_rejected(self, scheme, rng):
        a = scheme.share(1, rng)
        b = list(reversed(scheme.share(2, rng)))
        with pytest.raises(ValueError):
            scheme.add(a, b)

    def test_length_mismatch_rejected(self, scheme, rng):
        a = scheme.share(1, rng)
        with pytest.raises(ValueError):
            scheme.add(a, a[:3])


class TestSecrecy:
    def test_below_threshold_shares_do_not_determine_secret(self):
        """With t-1 fixed shares, every secret remains possible: collect the
        first 2 share values for two different secrets under the same
        randomness and verify both runs produce valid, differing sharings."""
        scheme = ShamirSharing(threshold=3, parties=5, prime=101)
        rng_a, rng_b = random.Random(7), random.Random(7)
        a = scheme.share(10, rng_a)
        b = scheme.share(90, rng_b)
        # Same polynomial coefficients except the constant term: share
        # differences are constant across x, revealing nothing about either
        # secret without a third point.
        diffs = {(s.y - t.y) % 101 for s, t in zip(a, b)}
        assert diffs == {(10 - 90) % 101}
