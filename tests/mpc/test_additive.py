"""Tests for (c, c) additive secret sharing (paper Thm. 4.1)."""

import random

import pytest

from repro.mpc.additive import AdditiveSharing, Share
from repro.mpc.field import Zq


@pytest.fixture
def scheme():
    return AdditiveSharing(Zq(64), count=3)


class TestShareReconstruct:
    def test_roundtrip(self, scheme, rng):
        for secret in (0, 1, 17, 63):
            shares = scheme.share(secret, rng)
            assert scheme.reconstruct(shares) == secret

    def test_share_count(self, scheme, rng):
        assert len(scheme.share(5, rng)) == 3

    def test_shares_canonical(self, scheme, rng):
        for v in scheme.share(42, rng):
            assert 0 <= v < 64

    def test_secret_reduced_first(self, scheme, rng):
        shares = scheme.share(64 + 5, rng)
        assert scheme.reconstruct(shares) == 5

    def test_wrong_share_count_rejected(self, scheme, rng):
        shares = scheme.share(5, rng)
        with pytest.raises(ValueError):
            scheme.reconstruct(shares[:2])

    def test_minimum_two_shares(self):
        with pytest.raises(ValueError):
            AdditiveSharing(Zq(8), count=1)


class TestTaggedShares:
    def test_tagged_roundtrip(self, scheme, rng):
        shares = scheme.share_tagged(33, rng)
        assert scheme.reconstruct_tagged(shares) == 33

    def test_tags_are_indexed(self, scheme, rng):
        shares = scheme.share_tagged(33, rng)
        assert [s.index for s in shares] == [0, 1, 2]
        assert all(s.count == 3 for s in shares)

    def test_duplicate_index_rejected(self, scheme, rng):
        shares = scheme.share_tagged(33, rng)
        with pytest.raises(ValueError):
            scheme.reconstruct_tagged([shares[0], shares[0], shares[2]])

    def test_foreign_tag_rejected(self, scheme, rng):
        shares = scheme.share_tagged(33, rng)
        alien = Share(index=1, count=5, value=0)
        with pytest.raises(ValueError):
            scheme.reconstruct_tagged([shares[0], alien, shares[2]])

    def test_share_validates_index(self):
        with pytest.raises(ValueError):
            Share(index=3, count=3, value=0)

    def test_share_validates_value(self):
        with pytest.raises(ValueError):
            Share(index=0, count=3, value=-1)


class TestHomomorphism:
    """Additive homomorphism is what makes SecSumShare communication-free
    during aggregation."""

    def test_share_wise_addition(self, scheme, rng):
        a = scheme.share(20, rng)
        b = scheme.share(30, rng)
        assert scheme.reconstruct(scheme.add(a, b)) == 50

    def test_addition_wraps(self, scheme, rng):
        a = scheme.share(40, rng)
        b = scheme.share(40, rng)
        assert scheme.reconstruct(scheme.add(a, b)) == (80 % 64)

    def test_add_constant(self, scheme, rng):
        a = scheme.share(10, rng)
        assert scheme.reconstruct(scheme.add_constant(a, 7)) == 17

    def test_scale(self, scheme, rng):
        a = scheme.share(10, rng)
        assert scheme.reconstruct(scheme.scale(a, 3)) == 30

    def test_zero_sharing(self, scheme, rng):
        assert scheme.reconstruct(scheme.zero_sharing(rng)) == 0

    def test_rerandomize_preserves_secret(self, scheme, rng):
        a = scheme.share(25, rng)
        b = scheme.rerandomize(a, rng)
        assert scheme.reconstruct(b) == 25

    def test_rerandomize_changes_shares(self, scheme, rng):
        a = scheme.share(25, rng)
        b = scheme.rerandomize(a, rng)
        assert a != b  # overwhelmingly likely with a 6-bit ring x3 shares

    def test_mismatched_lengths_rejected(self, scheme, rng):
        a = scheme.share(1, rng)
        with pytest.raises(ValueError):
            scheme.add(a, a[:2])


class TestSecrecy:
    """Thm. 4.1 secrecy: any c-1 shares are jointly uniform."""

    def test_partial_shares_uniform(self):
        """Distribution of (share_0, share_1) must not depend on the secret."""
        ring = Zq(4)
        scheme = AdditiveSharing(ring, count=3)
        trials = 20_000
        counts = {0: {}, 3: {}}
        for secret in counts:
            rng = random.Random(99)
            for _ in range(trials):
                s = scheme.share(secret, rng)
                key = (s[0], s[1])
                counts[secret][key] = counts[secret].get(key, 0) + 1
        # Same RNG stream => identical first c-1 shares regardless of secret.
        assert counts[0] == counts[3]

    def test_first_shares_cover_whole_ring(self, scheme, rng):
        seen = {scheme.share(7, rng)[0] for _ in range(2000)}
        assert seen == set(range(64))
