"""Tests for multiplier / subtractor / divider / isqrt circuits."""

import math

import pytest

from repro.mpc.circuits import CircuitBuilder, bits_to_int, evaluate, int_to_bits
from repro.mpc.circuits.divider import divide, isqrt
from repro.mpc.circuits.multiplier import (
    multiply,
    multiply_const,
    ripple_sub,
    shift_left,
    truncate,
)


def run1(build):
    """Build a circuit with ``build(b)`` returning output bit lists."""
    b = CircuitBuilder()
    inputs_spec, outputs = build(b)
    for bits in outputs:
        b.output_bits(bits)
    return b.build(), inputs_spec


class TestMultiply:
    @pytest.mark.parametrize("wx,wy", [(1, 1), (3, 3), (4, 6), (8, 8)])
    def test_matches_int_multiplication(self, wx, wy):
        b = CircuitBuilder()
        xs, ys = b.input_bits(wx), b.input_bits(wy)
        b.output_bits(multiply(b, xs, ys))
        circuit = b.build()
        step_x = max(1, (1 << wx) // 8)
        step_y = max(1, (1 << wy) // 8)
        for x in range(0, 1 << wx, step_x):
            for y in range(0, 1 << wy, step_y):
                out = evaluate(circuit, int_to_bits(x, wx) + int_to_bits(y, wy))
                assert bits_to_int(out) == x * y, (x, y)

    def test_and_cost_quadratic(self):
        b = CircuitBuilder()
        multiply(b, b.input_bits(8), b.input_bits(8))
        # 64 partial-product ANDs plus adder-tree ANDs.
        assert b.circuit.stats().and_ >= 64

    def test_empty_rejected(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            multiply(b, [], b.input_bits(2))


class TestMultiplyConst:
    @pytest.mark.parametrize("const", [0, 1, 2, 5, 13, 255])
    def test_matches_int(self, const):
        b = CircuitBuilder()
        xs = b.input_bits(6)
        b.output_bits(multiply_const(b, xs, const))
        circuit = b.build()
        for x in range(0, 64, 7):
            out = evaluate(circuit, int_to_bits(x, 6))
            assert bits_to_int(out) == x * const, (x, const)

    def test_cheaper_than_general_multiply(self):
        b1 = CircuitBuilder()
        multiply_const(b1, b1.input_bits(8), 200)
        b2 = CircuitBuilder()
        multiply(b2, b2.input_bits(8), b2.constant_bits(200, 8))
        assert b1.circuit.stats().and_ < b2.circuit.stats().and_

    def test_negative_rejected(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            multiply_const(b, b.input_bits(2), -1)


class TestRippleSub:
    @pytest.mark.parametrize("width", [1, 3, 5])
    def test_difference_and_borrow(self, width):
        b = CircuitBuilder()
        xs, ys = b.input_bits(width), b.input_bits(width)
        diff, borrow = ripple_sub(b, xs, ys)
        b.output_bits(diff)
        b.output_bits([borrow])
        circuit = b.build()
        for x in range(1 << width):
            for y in range(1 << width):
                out = evaluate(circuit, int_to_bits(x, width) + int_to_bits(y, width))
                got_diff = bits_to_int(out[:width])
                got_borrow = out[width]
                assert got_diff == (x - y) % (1 << width)
                assert got_borrow == (1 if x < y else 0)

    def test_width_mismatch_rejected(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            ripple_sub(b, b.input_bits(2), b.input_bits(3))


class TestShifts:
    def test_shift_left(self):
        b = CircuitBuilder()
        xs = b.input_bits(4)
        b.output_bits(shift_left(b, xs, 3))
        out = evaluate(b.build(), int_to_bits(5, 4))
        assert bits_to_int(out) == 5 << 3

    def test_truncate(self):
        b = CircuitBuilder()
        xs = b.input_bits(6)
        b.output_bits(truncate(xs, 2))
        out = evaluate(b.build(), int_to_bits(45, 6))
        assert bits_to_int(out) == 45 >> 2

    def test_truncate_everything_rejected(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            truncate(b.input_bits(2), 2)


class TestDivide:
    @pytest.mark.parametrize("wn,wd", [(4, 4), (6, 4), (8, 5)])
    def test_quotient_and_remainder(self, wn, wd):
        b = CircuitBuilder()
        num, den = b.input_bits(wn), b.input_bits(wd)
        q, r = divide(b, num, den)
        b.output_bits(q)
        b.output_bits(r)
        circuit = b.build()
        step_n = max(1, (1 << wn) // 16)
        for n in range(0, 1 << wn, step_n):
            for d in range(1, 1 << wd, 3):
                out = evaluate(circuit, int_to_bits(n, wn) + int_to_bits(d, wd))
                assert bits_to_int(out[:wn]) == n // d, (n, d)
                assert bits_to_int(out[wn:]) == n % d, (n, d)

    def test_division_by_zero_saturates(self):
        b = CircuitBuilder()
        num, den = b.input_bits(4), b.input_bits(4)
        q, _ = divide(b, num, den)
        b.output_bits(q)
        out = evaluate(b.build(), int_to_bits(9, 4) + int_to_bits(0, 4))
        assert bits_to_int(out) == 15  # all-ones quotient

    def test_empty_rejected(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            divide(b, [], b.input_bits(2))


class TestIsqrt:
    @pytest.mark.parametrize("width", [2, 4, 6, 8, 10])
    def test_matches_math_isqrt(self, width):
        b = CircuitBuilder()
        xs = b.input_bits(width)
        b.output_bits(isqrt(b, xs))
        circuit = b.build()
        for x in range(0, 1 << width, max(1, (1 << width) // 64)):
            out = evaluate(circuit, int_to_bits(x, width))
            assert bits_to_int(out) == math.isqrt(x), x

    def test_odd_width_padded(self):
        b = CircuitBuilder()
        xs = b.input_bits(5)
        b.output_bits(isqrt(b, xs))
        circuit = b.build()
        for x in range(32):
            out = evaluate(circuit, int_to_bits(x, 5))
            assert bits_to_int(out) == math.isqrt(x), x

    def test_empty_rejected(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            isqrt(b, [])
