"""Decomposed (scalar/batch) CountBelow and β-selection vs the mono oracle.

The contract of the bitsliced construction path:

* public outputs identical across all three engines;
* scalar and batch modes agree *exactly* (same seed -> same outputs, same
  per-identity stats, same aggregate stats, same gate totals);
* the full `secure_beta_calculation` pipeline produces the reference β
  vector under the batch engine.
"""

import math
import random

import pytest

from repro.core.policies import BasicPolicy, frequency_threshold
from repro.mpc.betacalc import secure_beta_calculation
from repro.mpc.countbelow import run_beta_selection, run_count_below
from repro.mpc.field import Zq, default_modulus_for_sum
from repro.mpc.secsum import SecSumShare


def _setup(m, c, n_ids, seed, q=None):
    rng = random.Random(seed)
    ring = Zq(q if q is not None else default_modulus_for_sum(m))
    inputs = [[rng.randint(0, 1) for _ in range(n_ids)] for _ in range(m)]
    shares = SecSumShare(m, c, ring, random.Random(seed + 1)).run(inputs)
    return ring, inputs, shares.coordinator_shares


@pytest.mark.parametrize("engine", ["scalar", "batch"])
@pytest.mark.parametrize(
    "m,c,n_ids,high",
    [
        (8, 2, 1, 4),  # single identity: degenerate trees
        (8, 3, 17, 4),
        (12, 4, 64, 6),  # exactly one full lane chunk
        (10, 3, 65, 5),  # ragged chunk (64 + 1)
    ],
)
def test_count_below_engines_agree_with_mono(engine, m, c, n_ids, high):
    ring, inputs, coord = _setup(m, c, n_ids, seed=m * 100 + n_ids)
    rng = random.Random(77)
    thresholds = [rng.randint(1, m) for _ in range(n_ids)]
    if n_ids > 2:
        thresholds[2] = ring.q * 10  # unreachable threshold arm
    eps = [rng.random() for _ in range(n_ids)]
    mono = run_count_below(
        coord, thresholds, eps, ring, random.Random(5), high_threshold=high
    )
    other = run_count_below(
        coord, thresholds, eps, ring, random.Random(5), high_threshold=high,
        engine=engine,
    )
    assert other.engine == engine
    assert other.n_common == mono.n_common
    assert other.n_natural_decoys == mono.n_natural_decoys
    assert other.xi_scaled == mono.xi_scaled
    # Ground truth: count identities at/above both thresholds.
    freqs = [sum(row[j] for row in inputs) for j in range(n_ids)]
    expected_common = sum(
        1 for j in range(n_ids) if freqs[j] >= thresholds[j] and freqs[j] >= high
    )
    assert other.n_common == expected_common


def test_count_below_scalar_batch_exact_equality():
    """Same seed -> identical outputs, stats, per-identity stats, gates."""
    ring, _, coord = _setup(10, 3, 50, seed=3)
    rng = random.Random(4)
    thresholds = [rng.randint(1, 10) for _ in range(50)]
    eps = [rng.random() for _ in range(50)]
    scal = run_count_below(
        coord, thresholds, eps, ring, random.Random(9), high_threshold=5,
        engine="scalar",
    )
    bat = run_count_below(
        coord, thresholds, eps, ring, random.Random(9), high_threshold=5,
        engine="batch",
    )
    assert (scal.n_common, scal.n_natural_decoys, scal.xi_scaled) == (
        bat.n_common, bat.n_natural_decoys, bat.xi_scaled
    )
    assert scal.stats == bat.stats
    assert scal.stats_per_identity == bat.stats_per_identity
    assert scal.total_gates == bat.total_gates
    assert scal.gates_evaluated == bat.gates_evaluated > 0


@pytest.mark.parametrize("lambda_", [0.0, 0.35, 1.0])
def test_selection_scalar_batch_exact_equality(lambda_):
    ring, inputs, coord = _setup(9, 3, 40, seed=8)
    rng = random.Random(2)
    thresholds = [rng.randint(1, 9) for _ in range(40)]
    scal = run_beta_selection(
        coord, thresholds, lambda_, ring, random.Random(6), engine="scalar"
    )
    bat = run_beta_selection(
        coord, thresholds, lambda_, ring, random.Random(6), engine="batch"
    )
    assert scal.publish_as_one == bat.publish_as_one
    assert scal.stats == bat.stats
    assert scal.stats_per_identity == bat.stats_per_identity
    assert scal.total_gates == bat.total_gates
    # Commons always selected; λ extremes fully determine the rest.
    freqs = [sum(row[j] for row in inputs) for j in range(40)]
    for j in range(40):
        if freqs[j] >= thresholds[j]:
            assert bat.publish_as_one[j] == 1
        elif lambda_ == 0.0:
            assert bat.publish_as_one[j] == 0
        elif lambda_ == 1.0:
            assert bat.publish_as_one[j] == 1


def test_selection_batch_matches_mono_commons():
    """Mono and batch draw coins differently, but the deterministic part
    (common identities) must agree."""
    ring, inputs, coord = _setup(10, 3, 30, seed=12)
    thresholds = [frequency_threshold(BasicPolicy(), 0.5, 10) for _ in range(30)]
    mono = run_beta_selection(coord, thresholds, 0.0, ring, random.Random(1))
    bat = run_beta_selection(
        coord, thresholds, 0.0, ring, random.Random(1), engine="batch"
    )
    assert mono.publish_as_one == bat.publish_as_one  # λ=0: coins never fire


def test_engine_rejected_if_unknown():
    ring, _, coord = _setup(8, 2, 3, seed=1)
    with pytest.raises(ValueError):
        run_count_below(coord, [1, 1, 1], [0.1] * 3, ring, random.Random(0),
                        engine="turbo")
    with pytest.raises(ValueError):
        run_beta_selection(coord, [1, 1, 1], 0.5, ring, random.Random(0),
                           engine="turbo")


def test_secure_beta_calculation_batch_matches_reference():
    """End-to-end Alg. 1 under the batch engine vs the trusted computation."""
    policy = BasicPolicy()
    m, c, n_ids = 10, 3, 25
    rng = random.Random(21)
    provider_bits = [[rng.randint(0, 1) for _ in range(n_ids)] for _ in range(m)]
    epsilons = [rng.random() for _ in range(n_ids)]
    result = secure_beta_calculation(
        provider_bits, epsilons, policy, c, random.Random(33), engine="batch"
    )
    assert result.count_result.engine == "batch"
    assert result.selection_result.engine == "batch"

    freqs = [sum(row[j] for row in provider_bits) for j in range(n_ids)]
    # Selected identities publish with β=1; the rest get the clear β*.
    for j in range(n_ids):
        if result.publish_as_one[j]:
            assert result.betas[j] == 1.0
        else:
            expected = policy.beta(freqs[j] / m, epsilons[j], m)
            assert result.betas[j] == pytest.approx(expected)
    # Opened frequencies are exact.
    for j, f in result.opened_frequencies.items():
        assert f == freqs[j]
    # n_common matches the trusted count of truly common identities.
    thresholds = [frequency_threshold(policy, e, m) for e in epsilons]
    high = max(1, math.ceil(0.5 * m))
    expected_common = sum(
        1 for j in range(n_ids) if freqs[j] >= thresholds[j] and freqs[j] >= high
    )
    assert result.n_common == expected_common


def test_distributed_construction_batch_smoke():
    """The simulator replays per-identity costs from a batched run."""
    from repro.protocol.construction import run_distributed_construction

    m, c, n_ids = 8, 3, 12
    rng = random.Random(14)
    provider_bits = [[rng.randint(0, 1) for _ in range(n_ids)] for _ in range(m)]
    epsilons = [0.3] * n_ids
    res = run_distributed_construction(
        provider_bits, epsilons, BasicPolicy(), c, random.Random(7), engine="batch"
    )
    assert res.execution_time_s > 0
    assert res.betas.shape == (n_ids,)
    assert res.secure_result.count_result.engine == "batch"
