"""Tests for the circuit optimizer (folding, CSE, dead-gate elimination)."""

import random

import pytest

from repro.mpc.circuits import (
    CircuitBuilder,
    evaluate,
    int_to_bits,
    less_than_const,
    popcount,
    ripple_add,
)
from repro.mpc.circuits.optimize import optimize
from repro.mpc.gmw import GMWProtocol


class TestConstantFolding:
    def test_and_with_zero_folds(self):
        b = CircuitBuilder()
        x = b.input_bit()
        b.output(b.and_(x, b.zero()))
        opt, report = optimize(b.build())
        assert opt.stats().and_ == 0
        assert evaluate(opt, [1]) == [0]

    def test_and_with_one_forwards(self):
        b = CircuitBuilder()
        x = b.input_bit()
        b.output(b.and_(x, b.one()))
        opt, _ = optimize(b.build())
        assert opt.stats().and_ == 0
        for v in (0, 1):
            assert evaluate(opt, [v]) == [v]

    def test_xor_with_zero_forwards(self):
        b = CircuitBuilder()
        x = b.input_bit()
        b.output(b.xor(x, b.zero()))
        opt, _ = optimize(b.build())
        assert opt.stats().xor == 0

    def test_xor_self_cancels(self):
        b = CircuitBuilder()
        x = b.input_bit()
        b.output(b.xor(x, x))
        opt, _ = optimize(b.build())
        assert evaluate(opt, [0]) == [0]
        assert evaluate(opt, [1]) == [0]
        assert opt.stats().xor == 0

    def test_and_self_idempotent(self):
        b = CircuitBuilder()
        x = b.input_bit()
        b.output(b.and_(x, x))
        opt, _ = optimize(b.build())
        assert opt.stats().and_ == 0
        assert evaluate(opt, [1]) == [1]

    def test_not_of_constant(self):
        b = CircuitBuilder()
        b.input_bit()  # unused input kept for interface
        b.output(b.not_(b.zero()))
        opt, _ = optimize(b.build())
        assert evaluate(opt, [0]) == [1]
        assert opt.stats().not_ == 0

    def test_folding_cascades(self):
        """Constants propagate through chains of gates."""
        b = CircuitBuilder()
        x = b.input_bit()
        dead = b.and_(b.zero(), x)       # folds to 0
        still = b.xor(dead, b.one())     # folds to 1
        b.output(b.and_(x, still))       # folds to x
        opt, _ = optimize(b.build())
        assert opt.stats().size == 0
        for v in (0, 1):
            assert evaluate(opt, [v]) == [v]


class TestCSE:
    def test_duplicate_gates_merged(self):
        b = CircuitBuilder()
        x, y = b.input_bit(), b.input_bit()
        b.output(b.and_(x, y))
        b.output(b.and_(x, y))
        opt, _ = optimize(b.build())
        assert opt.stats().and_ == 1

    def test_commutative_merge(self):
        b = CircuitBuilder()
        x, y = b.input_bit(), b.input_bit()
        b.output(b.and_(x, y))
        b.output(b.and_(y, x))
        opt, _ = optimize(b.build())
        assert opt.stats().and_ == 1

    def test_not_gates_merged(self):
        b = CircuitBuilder()
        x = b.input_bit()
        b.output(b.not_(x))
        b.output(b.not_(x))
        opt, _ = optimize(b.build())
        assert opt.stats().not_ == 1


class TestDeadGateElimination:
    def test_unused_gates_dropped(self):
        b = CircuitBuilder()
        x, y = b.input_bit(), b.input_bit()
        b.and_(x, y)  # never used
        b.output(b.xor(x, y))
        opt, _ = optimize(b.build())
        assert opt.stats().and_ == 0

    def test_inputs_always_kept(self):
        b = CircuitBuilder()
        b.input_bits(5)
        x = b.input_bit()
        b.output(x)
        opt, _ = optimize(b.build())
        assert opt.n_inputs == 6


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_optimized_adder_equivalent(self, seed):
        b = CircuitBuilder()
        xs, ys = b.input_bits(6), b.input_bits(6)
        b.output_bits(ripple_add(b, xs, ys))
        b.output(less_than_const(b, xs, 20))
        circuit = b.build()
        opt, report = optimize(circuit)
        rng = random.Random(seed)
        for _ in range(20):
            x, y = rng.randrange(64), rng.randrange(64)
            inputs = int_to_bits(x, 6) + int_to_bits(y, 6)
            assert evaluate(opt, inputs) == evaluate(circuit, inputs)
        assert report.gates_removed >= 0

    def test_optimized_runs_under_gmw(self):
        b = CircuitBuilder()
        bits = b.input_bits(8)
        b.output_bits(popcount(b, bits))
        circuit = b.build()
        opt, _ = optimize(circuit)
        inputs = [1, 0, 1, 1, 0, 0, 1, 0]
        expected = evaluate(circuit, inputs)
        result = GMWProtocol(opt, 3, random.Random(3)).run(inputs)
        assert result.outputs == expected

    def test_savings_on_real_countbelow_circuit(self):
        """Builder-generated CountBelow circuits contain padding constants;
        the optimizer must find real savings."""
        from repro.mpc.countbelow import build_count_circuit

        circuit = build_count_circuit(
            c=3, thresholds=[5, 5, 5], epsilons_scaled=[100, 200, 300],
            width=4, high_threshold=4,
        )
        opt, report = optimize(circuit)
        assert report.gates_removed > 0
        # Spot-check equivalence on a few inputs.
        rng = random.Random(9)
        for _ in range(10):
            inputs = [rng.getrandbits(1) for _ in range(circuit.n_inputs)]
            assert evaluate(opt, inputs) == evaluate(circuit, inputs)

    def test_report_counts(self):
        b = CircuitBuilder()
        x = b.input_bit()
        b.output(b.and_(x, b.zero()))
        circuit = b.build()
        _, report = optimize(circuit)
        assert report.before_and == 1
        assert report.after_and == 0
        assert report.and_gates_removed == 1
