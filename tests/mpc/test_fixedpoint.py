"""Tests for the in-circuit fixed-point β formulas against the float oracle."""

import pytest

from repro.core.policies import basic_beta, chernoff_beta
from repro.mpc.circuits import CircuitBuilder, bits_to_int, evaluate, int_to_bits
from repro.mpc.circuits.fixedpoint import (
    ONE,
    beta_basic_circuit,
    beta_chernoff_circuit,
    beta_incremented_circuit,
    beta_width,
)


def eval_beta(build, m, freq):
    """Build a β circuit over a frequency input and evaluate it."""
    b = CircuitBuilder()
    wf = max(1, m.bit_length())
    f_bits = b.input_bits(wf)
    out = build(b, f_bits)
    b.output_bits(out)
    circuit = b.build()
    raw = bits_to_int(evaluate(circuit, int_to_bits(freq, wf)))
    return raw / ONE


# Fixed-point truncation in the divider can lose up to ~2 ULP per division,
# plus the saturation ceiling; allow a tolerance of a few ULP.
TOL = 6 / ONE


class TestBetaBasic:
    @pytest.mark.parametrize("m", [8, 50, 200])
    @pytest.mark.parametrize("eps", [0.2, 0.5, 0.8])
    def test_matches_float_formula(self, m, eps):
        for freq in (0, 1, m // 4, m // 2, m - 1, m):
            got = eval_beta(
                lambda b, f: beta_basic_circuit(b, f, m, eps), m, freq
            )
            want = basic_beta(freq / m, eps)
            if want >= 1.0:
                assert got >= 1.0 - TOL, (m, eps, freq)
            else:
                assert got == pytest.approx(want, abs=TOL), (m, eps, freq)

    def test_epsilon_zero_is_zero(self):
        got = eval_beta(lambda b, f: beta_basic_circuit(b, f, 16, 0.0), 16, 8)
        assert got == 0.0

    def test_epsilon_one_saturates(self):
        got = eval_beta(lambda b, f: beta_basic_circuit(b, f, 16, 1.0), 16, 1)
        assert got >= 1.0

    def test_full_frequency_saturates(self):
        """f = m makes the denominator zero: divider saturation must land
        the identity in the common class."""
        got = eval_beta(lambda b, f: beta_basic_circuit(b, f, 16, 0.5), 16, 16)
        assert got >= 1.0

    def test_invalid_epsilon_rejected(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            beta_basic_circuit(b, b.input_bits(4), 10, 1.5)


class TestBetaIncremented:
    def test_adds_delta(self):
        m, eps, delta = 64, 0.5, 0.05
        freq = 8
        got = eval_beta(
            lambda b, f: beta_incremented_circuit(b, f, m, eps, delta), m, freq
        )
        want = min(1.0, basic_beta(freq / m, eps) + delta)
        assert got == pytest.approx(want, abs=TOL)

    def test_zero_base_stays_zero(self):
        got = eval_beta(
            lambda b, f: beta_incremented_circuit(b, f, 64, 0.5, 0.05), 64, 0
        )
        assert got == 0.0

    def test_negative_delta_rejected(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            beta_incremented_circuit(b, b.input_bits(4), 10, 0.5, -0.1)


class TestBetaChernoff:
    @pytest.mark.parametrize("m", [16, 64])
    @pytest.mark.parametrize("eps", [0.3, 0.6])
    def test_matches_float_formula(self, m, eps):
        gamma = 0.9
        for freq in (1, m // 8, m // 4):
            got = eval_beta(
                lambda b, f: beta_chernoff_circuit(b, f, m, eps, gamma), m, freq
            )
            want = chernoff_beta(freq / m, eps, gamma, m)
            if want >= 1.0:
                assert got >= 1.0 - 4 * TOL
            else:
                # sqrt + two divisions accumulate a bit more error.
                assert got == pytest.approx(want, abs=5 * TOL), (m, eps, freq)

    def test_dominates_basic(self):
        m, eps = 64, 0.5
        for freq in (1, 8, 16):
            b_c = eval_beta(
                lambda b, f: beta_chernoff_circuit(b, f, m, eps, 0.9), m, freq
            )
            b_b = eval_beta(
                lambda b, f: beta_basic_circuit(b, f, m, eps), m, freq
            )
            assert b_c >= b_b - TOL

    def test_invalid_gamma_rejected(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            beta_chernoff_circuit(b, b.input_bits(4), 10, 0.5, 0.4)


class TestCost:
    def test_beta_circuit_is_expensive(self):
        """The point of Eq. 9: in-circuit β* costs orders of magnitude more
        AND gates than the single comparison it replaces."""
        from repro.mpc.circuits.comparator import less_than_const

        m = 64
        b1 = CircuitBuilder()
        beta_chernoff_circuit(b1, b1.input_bits(7), m, 0.5, 0.9)
        b2 = CircuitBuilder()
        less_than_const(b2, b2.input_bits(7), 32)
        assert b1.circuit.stats().and_ > 20 * b2.circuit.stats().and_

    def test_output_width_fixed(self):
        b = CircuitBuilder()
        out = beta_basic_circuit(b, b.input_bits(5), 20, 0.5)
        assert len(out) == beta_width()
