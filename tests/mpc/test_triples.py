"""Tests for Beaver-triple dealing."""

import random

import numpy as np
import pytest

from repro.mpc.triples import BitTriple, TripleDealer, unpack_triple_batch


class TestBitTriple:
    def test_valid_triples(self):
        for a in (0, 1):
            for b in (0, 1):
                BitTriple(a=a, b=b, c=a & b)

    def test_invalid_product_rejected(self):
        with pytest.raises(ValueError):
            BitTriple(a=1, b=1, c=0)

    def test_non_bit_rejected(self):
        with pytest.raises(ValueError):
            BitTriple(a=2, b=0, c=0)


class TestTripleDealer:
    def test_shares_reconstruct_valid_triple(self):
        dealer = TripleDealer(parties=3, rng=random.Random(1))
        for _ in range(200):
            shares = dealer.deal()
            a = b = c = 0
            for s in shares:
                a ^= s.a
                b ^= s.b
                c ^= s.c
            assert c == (a & b)

    def test_one_share_set_per_party(self):
        dealer = TripleDealer(parties=4, rng=random.Random(1))
        assert len(dealer.deal()) == 4

    def test_issued_counter(self):
        dealer = TripleDealer(parties=2, rng=random.Random(1))
        dealer.deal_many(7)
        dealer.deal()
        assert dealer.issued == 8

    def test_deal_many_shape(self):
        dealer = TripleDealer(parties=3, rng=random.Random(1))
        batch = dealer.deal_many(5)
        assert len(batch) == 5
        assert all(len(t) == 3 for t in batch)

    def test_two_parties_minimum(self):
        with pytest.raises(ValueError):
            TripleDealer(parties=1, rng=random.Random(1))

    def test_triple_values_look_uniform(self):
        """The underlying (a, b) pairs must cover all four combinations."""
        dealer = TripleDealer(parties=2, rng=random.Random(5))
        seen = set()
        for _ in range(200):
            shares = dealer.deal()
            a = shares[0].a ^ shares[1].a
            b = shares[0].b ^ shares[1].b
            seen.add((a, b))
        assert seen == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_single_party_shares_are_bits(self):
        dealer = TripleDealer(parties=3, rng=random.Random(2))
        for s in dealer.deal():
            assert s.a in (0, 1) and s.b in (0, 1) and s.c in (0, 1)


class TestDealBatch:
    def test_batch_shares_reconstruct_per_lane(self):
        dealer = TripleDealer(parties=3, rng=random.Random(5))
        a, b, c = dealer.deal_batch(16)
        ra = np.bitwise_xor.reduce(a, axis=1)
        rb = np.bitwise_xor.reduce(b, axis=1)
        rc = np.bitwise_xor.reduce(c, axis=1)
        assert np.array_equal(rc, ra & rb)
        assert dealer.issued == 16 * 64

    @pytest.mark.parametrize("lanes", [1, 5, 33, 63])
    def test_dead_lanes_masked(self, lanes):
        """Regression: lanes < 64 must leave no random material in dead
        bit positions of any share word."""
        dealer = TripleDealer(parties=3, rng=random.Random(5))
        a, b, c = dealer.deal_batch(8, lanes=lanes)
        dead = np.uint64(~((1 << lanes) - 1) & 0xFFFFFFFFFFFFFFFF)
        for arr in (a, b, c):
            assert not np.any(arr & dead)
        assert dealer.issued == 8 * lanes
        # Live lanes still reconstruct.
        rc = np.bitwise_xor.reduce(c, axis=1)
        ra = np.bitwise_xor.reduce(a, axis=1)
        rb = np.bitwise_xor.reduce(b, axis=1)
        assert np.array_equal(rc, ra & rb)

    def test_validation(self):
        dealer = TripleDealer(parties=2, rng=random.Random(1))
        with pytest.raises(ValueError):
            dealer.deal_batch(-1)
        with pytest.raises(ValueError):
            dealer.deal_batch(1, lanes=0)
        with pytest.raises(ValueError):
            dealer.deal_batch(1, lanes=65)


class TestUnpackTripleBatch:
    def test_unpack_is_lane_major(self):
        """Lane i of word g maps to flat index g*lanes + i."""
        dealer = TripleDealer(parties=3, rng=random.Random(9))
        arrays = dealer.deal_batch(4, lanes=8)
        a, b, c = arrays
        flat = unpack_triple_batch(arrays, lanes=8)
        assert len(flat) == 32
        for g in range(4):
            for lane in range(8):
                shares = flat[g * 8 + lane]
                bit = np.uint64(1 << lane)
                for p, s in enumerate(shares):
                    assert s.a == int(bool(a[g, p] & bit))
                    assert s.b == int(bool(b[g, p] & bit))
                    assert s.c == int(bool(c[g, p] & bit))

    def test_unpacked_triples_are_valid(self):
        dealer = TripleDealer(parties=4, rng=random.Random(9))
        for shares in unpack_triple_batch(dealer.deal_batch(2)):
            a = b = c = 0
            for s in shares:
                a ^= s.a
                b ^= s.b
                c ^= s.c
            assert c == (a & b)


class TestDealManyEquivalence:
    @pytest.mark.parametrize("count", [0, 1, 63, 64, 65, 130])
    def test_deal_many_routes_through_deal_batch(self, count):
        """deal_many(count) == unpack(deal_batch(words)) + unpack(partial)."""
        many = TripleDealer(parties=3, rng=random.Random(77)).deal_many(count)

        batch_dealer = TripleDealer(parties=3, rng=random.Random(77))
        expected = []
        words, rem = divmod(count, 64)
        if words:
            expected.extend(
                unpack_triple_batch(batch_dealer.deal_batch(words, lanes=64))
            )
        if rem:
            expected.extend(
                unpack_triple_batch(batch_dealer.deal_batch(1, lanes=rem), lanes=rem)
            )
        assert many == expected
        assert len(many) == count
        assert batch_dealer.issued == count

    def test_deal_many_issued_exact(self):
        dealer = TripleDealer(parties=2, rng=random.Random(3))
        dealer.deal_many(100)
        assert dealer.issued == 100

    def test_deal_many_triples_valid(self):
        dealer = TripleDealer(parties=3, rng=random.Random(4))
        for shares in dealer.deal_many(70):
            a = b = c = 0
            for s in shares:
                a ^= s.a
                b ^= s.b
                c ^= s.c
            assert c == (a & b)
