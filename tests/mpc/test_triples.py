"""Tests for Beaver-triple dealing."""

import random

import pytest

from repro.mpc.triples import BitTriple, TripleDealer


class TestBitTriple:
    def test_valid_triples(self):
        for a in (0, 1):
            for b in (0, 1):
                BitTriple(a=a, b=b, c=a & b)

    def test_invalid_product_rejected(self):
        with pytest.raises(ValueError):
            BitTriple(a=1, b=1, c=0)

    def test_non_bit_rejected(self):
        with pytest.raises(ValueError):
            BitTriple(a=2, b=0, c=0)


class TestTripleDealer:
    def test_shares_reconstruct_valid_triple(self):
        dealer = TripleDealer(parties=3, rng=random.Random(1))
        for _ in range(200):
            shares = dealer.deal()
            a = b = c = 0
            for s in shares:
                a ^= s.a
                b ^= s.b
                c ^= s.c
            assert c == (a & b)

    def test_one_share_set_per_party(self):
        dealer = TripleDealer(parties=4, rng=random.Random(1))
        assert len(dealer.deal()) == 4

    def test_issued_counter(self):
        dealer = TripleDealer(parties=2, rng=random.Random(1))
        dealer.deal_many(7)
        dealer.deal()
        assert dealer.issued == 8

    def test_deal_many_shape(self):
        dealer = TripleDealer(parties=3, rng=random.Random(1))
        batch = dealer.deal_many(5)
        assert len(batch) == 5
        assert all(len(t) == 3 for t in batch)

    def test_two_parties_minimum(self):
        with pytest.raises(ValueError):
            TripleDealer(parties=1, rng=random.Random(1))

    def test_triple_values_look_uniform(self):
        """The underlying (a, b) pairs must cover all four combinations."""
        dealer = TripleDealer(parties=2, rng=random.Random(5))
        seen = set()
        for _ in range(200):
            shares = dealer.deal()
            a = shares[0].a ^ shares[1].a
            b = shares[0].b ^ shares[1].b
            seen.add((a, b))
        assert seen == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_single_party_shares_are_bits(self):
        dealer = TripleDealer(parties=3, rng=random.Random(2))
        for s in dealer.deal():
            assert s.a in (0, 1) and s.b in (0, 1) and s.c in (0, 1)
