"""Tests for the A2B (arithmetic-to-Boolean) share conversion."""

import random

import pytest

from repro.mpc.additive import AdditiveSharing
from repro.mpc.conversion import A2BDealer, a2b_convert
from repro.mpc.field import Zq


@pytest.fixture
def setup():
    ring = Zq(64)
    rng = random.Random(5)
    dealer = A2BDealer(parties=3, ring=ring, rng=rng)
    sharing = AdditiveSharing(ring, 3)
    return ring, rng, dealer, sharing


class TestDealer:
    def test_correlation_is_consistent(self, setup):
        """Arithmetic shares and Boolean shares encode the same r."""
        ring, rng, dealer, _ = setup
        for _ in range(50):
            corr = dealer.deal()
            r_arith = ring.sum(c.arith_share for c in corr)
            r_bits = 0
            for i in range(dealer.width):
                bit = 0
                for c in corr:
                    bit ^= c.bool_shares[i]
                r_bits |= bit << i
            assert r_arith == r_bits

    def test_width_from_modulus(self, setup):
        _, _, dealer, _ = setup
        assert dealer.width == 6

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            A2BDealer(parties=2, ring=Zq(10), rng=random.Random(1))

    def test_issued_counter(self, setup):
        _, _, dealer, _ = setup
        dealer.deal()
        dealer.deal()
        assert dealer.issued == 2


class TestConversion:
    @pytest.mark.parametrize("secret", [0, 1, 17, 42, 63])
    def test_roundtrip(self, setup, secret):
        ring, rng, dealer, sharing = setup
        arith = sharing.share(secret, rng)
        result = a2b_convert(arith, ring, dealer, rng)
        assert result.reconstruct() == secret

    def test_mask_is_uniformish(self):
        """The only opened value z = x + r must look uniform, whatever x."""
        ring = Zq(16)
        seen = set()
        for seed in range(200):
            rng = random.Random(seed)
            dealer = A2BDealer(parties=2, ring=ring, rng=rng)
            sharing = AdditiveSharing(ring, 2)
            arith = sharing.share(5, rng)  # constant secret
            result = a2b_convert(arith, ring, dealer, rng)
            seen.add(result.opened_mask)
        assert len(seen) == 16  # mask covers the whole ring

    def test_share_count_checked(self, setup):
        ring, rng, dealer, sharing = setup
        arith = sharing.share(7, rng)
        with pytest.raises(ValueError):
            a2b_convert(arith[:2], ring, dealer, rng)

    def test_cheaper_than_in_circuit_addition(self, setup):
        """The hybrid trade-off: A2B + subtractor uses fewer AND gates than
        summing c share vectors inside the comparison circuit."""
        from repro.mpc.circuits import CircuitBuilder, ripple_add_mod2k

        ring, rng, dealer, sharing = setup
        arith = sharing.share(20, rng)
        result = a2b_convert(arith, ring, dealer, rng)
        a2b_ands = result.stats.and_gates

        b = CircuitBuilder()
        w = dealer.width
        shares = [b.input_bits(w) for _ in range(3)]
        total = shares[0]
        for s in shares[1:]:
            total = ripple_add_mod2k(b, total, s)
        b.output_bits(total)
        in_circuit_ands = b.build().stats().and_
        assert a2b_ands < in_circuit_ands
