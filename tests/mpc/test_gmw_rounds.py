"""Round/layering behaviour of the GMW engine (communication structure)."""

import random

import pytest

from repro.mpc.circuits import CircuitBuilder
from repro.mpc.gmw import GMWProtocol


def and_chain(depth: int):
    """x0 & x1 & ... sequentially: multiplicative depth == chain length."""
    b = CircuitBuilder()
    acc = b.input_bit()
    for _ in range(depth):
        acc = b.and_(acc, b.input_bit())
    b.output(acc)
    return b.build()


def and_fanout(width: int):
    """width independent ANDs: depth 1 regardless of width."""
    b = CircuitBuilder()
    outs = [b.and_(b.input_bit(), b.input_bit()) for _ in range(width)]
    for o in outs:
        b.output(o)
    return b.build()


class TestRoundStructure:
    @pytest.mark.parametrize("depth", [1, 3, 7])
    def test_sequential_ands_cost_one_round_each(self, depth):
        circuit = and_chain(depth)
        res = GMWProtocol(circuit, 3, random.Random(1)).run([1] * (depth + 1))
        # depth AND layers + 1 output-opening round.
        assert res.stats.rounds == depth + 1

    @pytest.mark.parametrize("width", [1, 8, 32])
    def test_parallel_ands_share_one_round(self, width):
        circuit = and_fanout(width)
        res = GMWProtocol(circuit, 3, random.Random(2)).run([1, 0] * width)
        assert res.stats.and_gates == width
        assert res.stats.rounds == 2  # one AND layer + output opening

    def test_bits_scale_with_batched_ands(self):
        """All ANDs in a layer open together: bits grow with width, rounds
        do not."""
        narrow = GMWProtocol(and_fanout(2), 3, random.Random(3)).run([1, 0] * 2)
        wide = GMWProtocol(and_fanout(20), 3, random.Random(3)).run([1, 0] * 20)
        assert wide.stats.rounds == narrow.stats.rounds
        assert wide.stats.bits_sent > narrow.stats.bits_sent

    def test_mixed_depth_layers(self):
        """Linear gates ride along their producing layer; only AND depth
        adds rounds."""
        b = CircuitBuilder()
        x, y, z = b.input_bit(), b.input_bit(), b.input_bit()
        first = b.and_(x, y)          # depth 1
        linear = b.xor(first, z)       # still depth 1
        second = b.and_(linear, x)     # depth 2
        b.output(second)
        res = GMWProtocol(b.build(), 2, random.Random(4)).run([1, 1, 0])
        assert res.stats.rounds == 3  # two AND layers + opening
        assert res.outputs == [(1 & 1) ^ 0 & 1]

    def test_output_only_circuit_single_round(self):
        b = CircuitBuilder()
        x = b.input_bit()
        b.output(x)
        res = GMWProtocol(b.build(), 3, random.Random(5)).run([1])
        assert res.stats.rounds == 1
        assert res.outputs == [1]

    def test_no_output_circuit_no_opening_round(self):
        b = CircuitBuilder()
        x, y = b.input_bit(), b.input_bit()
        b.and_(x, y)  # computed but never opened
        circuit = b.build()
        res = GMWProtocol(circuit, 3, random.Random(6)).run([1, 1])
        assert res.outputs == []
        assert res.stats.rounds == 1  # only the AND layer
