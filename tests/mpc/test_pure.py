"""Tests for the pure-MPC baseline and its cost relationship to ǫ-PPI."""

import random

import pytest

from repro.core.policies import BasicPolicy, ChernoffPolicy, frequency_threshold
from repro.mpc.betacalc import secure_beta_calculation
from repro.mpc.pure import run_pure_beta_calculation


def provider_bits_for(frequencies, m, rng):
    bits = [[0] * len(frequencies) for _ in range(m)]
    for j, f in enumerate(frequencies):
        for i in rng.sample(range(m), f):
            bits[i][j] = 1
    return bits


class TestCorrectness:
    def test_non_selected_betas_match_policy(self):
        """Opened β values match the float formula up to the fixed-point
        precision of the in-circuit arithmetic (1/2^FRAC_BITS per op)."""
        rng = random.Random(1)
        m = 8
        freqs = [2, 5, 0]
        eps = [0.3, 0.4, 0.5]
        policy = BasicPolicy()
        bits = provider_bits_for(freqs, m, rng)
        res = run_pure_beta_calculation(bits, eps, policy, rng)
        for j, f in enumerate(freqs):
            if res.publish_as_one[j]:
                assert res.betas[j] == 1.0
            else:
                assert res.betas[j] == pytest.approx(
                    policy.beta(f / m, eps[j], m), abs=0.02
                )

    def test_common_count(self):
        rng = random.Random(2)
        m = 8
        freqs = [8, 7, 1]
        eps = [0.5] * 3
        policy = BasicPolicy()
        bits = provider_bits_for(freqs, m, rng)
        res = run_pure_beta_calculation(bits, eps, policy, rng)
        t = frequency_threshold(policy, 0.5, m)
        assert res.n_common == sum(1 for f in freqs if f >= t)

    def test_agrees_with_reduced_protocol_on_commons(self):
        """Pure MPC and the SecSumShare-reduced pipeline must agree on the
        (deterministic) common classification and lambda."""
        rng = random.Random(3)
        m = 8
        freqs = [8, 2, 3]
        eps = [0.6, 0.4, 0.5]
        policy = BasicPolicy()
        bits = provider_bits_for(freqs, m, rng)
        pure = run_pure_beta_calculation(bits, eps, policy, random.Random(10))
        reduced = secure_beta_calculation(bits, eps, policy, c=3, rng=random.Random(11))
        assert pure.n_common == reduced.n_common
        assert pure.lambda_ == pytest.approx(reduced.lambda_, abs=0.01)

    def test_minimum_two_providers(self):
        with pytest.raises(ValueError):
            run_pure_beta_calculation([[1]], [0.5], BasicPolicy(), random.Random(1))


class TestCostComparison:
    """The headline of Fig. 6: pure MPC costs grow with m, ǫ-PPI's MPC does not."""

    def test_pure_circuit_grows_with_m(self):
        sizes = []
        for m in (4, 8, 16):
            rng = random.Random(4)
            bits = provider_bits_for([2, 2], m, rng)
            res = run_pure_beta_calculation(bits, [0.4, 0.6], BasicPolicy(), rng)
            sizes.append(res.total_circuit_size)
        assert sizes[0] < sizes[1] < sizes[2]

    def test_pure_messages_exceed_reduced(self):
        m = 9
        rng = random.Random(5)
        bits = provider_bits_for([3, 4], m, rng)
        pure = run_pure_beta_calculation(bits, [0.4, 0.6], BasicPolicy(), random.Random(6))
        reduced = secure_beta_calculation(
            bits, [0.4, 0.6], BasicPolicy(), c=3, rng=random.Random(7)
        )
        reduced_msgs = (
            reduced.count_result.stats.messages + reduced.selection_result.stats.messages
        )
        assert pure.stats.messages > reduced_msgs

    def test_pure_parties_equals_m(self):
        m = 6
        rng = random.Random(8)
        bits = provider_bits_for([2], m, rng)
        res = run_pure_beta_calculation(bits, [0.5], ChernoffPolicy(0.9), rng)
        assert res.stats.parties == m
