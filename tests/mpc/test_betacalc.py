"""Tests for the full secure β pipeline (paper Alg. 1) vs the reference."""

import random

import numpy as np
import pytest

from repro.core.policies import (
    BasicPolicy,
    ChernoffPolicy,
    IncrementedExpectationPolicy,
    frequency_threshold,
)
from repro.mpc.betacalc import secure_beta_calculation


def provider_bits_for(frequencies, m, rng):
    """Random placement matrix with exact per-identity frequencies."""
    bits = [[0] * len(frequencies) for _ in range(m)]
    for j, f in enumerate(frequencies):
        for i in rng.sample(range(m), f):
            bits[i][j] = 1
    return bits


class TestAgainstReference:
    @pytest.mark.parametrize(
        "policy", [BasicPolicy(), IncrementedExpectationPolicy(0.02), ChernoffPolicy(0.9)]
    )
    def test_non_selected_betas_match_policy_exactly(self, policy):
        rng = random.Random(21)
        m = 12
        freqs = [1, 3, 6, 12, 0]
        eps = [0.3, 0.5, 0.2, 0.8, 0.6]
        bits = provider_bits_for(freqs, m, rng)
        res = secure_beta_calculation(bits, eps, policy, c=3, rng=rng)
        for j, f in enumerate(freqs):
            if res.publish_as_one[j]:
                assert res.betas[j] == 1.0
            else:
                expected = policy.beta(f / m, eps[j], m)
                assert res.betas[j] == pytest.approx(expected)

    def test_opened_frequencies_are_exact(self):
        rng = random.Random(3)
        m = 10
        freqs = [2, 5, 0, 9]
        bits = provider_bits_for(freqs, m, rng)
        res = secure_beta_calculation(
            bits, [0.1, 0.2, 0.3, 0.1], BasicPolicy(), c=3, rng=rng
        )
        for j, f in res.opened_frequencies.items():
            assert f == freqs[j]

    def test_common_identity_always_beta_one(self):
        rng = random.Random(4)
        m = 10
        # identity 0 everywhere: common for any epsilon > 0.
        bits = provider_bits_for([10, 2], m, rng)
        res = secure_beta_calculation(bits, [0.5, 0.5], BasicPolicy(), c=3, rng=rng)
        assert res.publish_as_one[0] == 1
        assert res.betas[0] == 1.0

    def test_common_count_matches_thresholds(self):
        rng = random.Random(5)
        m = 10
        freqs = [10, 9, 2, 1]
        eps = [0.5, 0.5, 0.5, 0.5]
        policy = BasicPolicy()
        bits = provider_bits_for(freqs, m, rng)
        res = secure_beta_calculation(bits, eps, policy, c=3, rng=rng)
        t = frequency_threshold(policy, 0.5, m)
        expected = sum(1 for f in freqs if f >= t)
        assert res.n_common == expected

    def test_absent_identity_gets_zero_beta(self):
        rng = random.Random(6)
        m = 8
        bits = provider_bits_for([0, 3], m, rng)
        res = secure_beta_calculation(bits, [0.9, 0.5], BasicPolicy(), c=3, rng=rng)
        if not res.publish_as_one[0]:
            assert res.betas[0] == 0.0


class TestMixing:
    def test_lambda_zero_without_commons(self):
        rng = random.Random(7)
        m = 16
        bits = provider_bits_for([1, 2, 1], m, rng)
        res = secure_beta_calculation(
            bits, [0.2, 0.3, 0.1], BasicPolicy(), c=3, rng=rng
        )
        assert res.n_common == 0
        assert res.lambda_ == 0.0
        assert res.publish_as_one == [0, 0, 0]

    def test_decoys_appear_with_commons(self):
        """With commons present and many non-commons, some decoys should be
        mixed in (statistically over identities)."""
        rng = random.Random(8)
        m = 10
        freqs = [10] + [1] * 60
        eps = [0.9] + [0.3] * 60
        bits = provider_bits_for(freqs, m, rng)
        res = secure_beta_calculation(bits, eps, BasicPolicy(), c=3, rng=rng)
        assert res.lambda_ > 0.0
        decoys = sum(res.publish_as_one[1:])
        assert decoys > 0

    def test_betas_of_selected_never_opened(self):
        """Selected identities must not appear among the opened frequencies:
        opening a decoy's frequency would defeat the mixing."""
        rng = random.Random(9)
        m = 10
        freqs = [10] + [1] * 30
        bits = provider_bits_for(freqs, m, rng)
        res = secure_beta_calculation(
            bits, [0.9] + [0.3] * 30, BasicPolicy(), c=3, rng=rng
        )
        for j, bit in enumerate(res.publish_as_one):
            if bit:
                assert j not in res.opened_frequencies


class TestAccounting:
    def test_circuit_size_independent_of_m(self):
        """The MPC-minimization claim: generic-MPC circuit size depends on c
        and n, not on the provider count m."""
        sizes = {}
        for m in (6, 24):
            rng = random.Random(10)
            bits = provider_bits_for([2, 3], m, rng)
            res = secure_beta_calculation(bits, [0.4, 0.6], BasicPolicy(), c=3, rng=rng)
            # Width of the ring grows logarithmically with m; compare at
            # equal width by checking sizes stay within 2x while m grew 4x.
            sizes[m] = res.total_circuit_size
        assert sizes[24] < sizes[6] * 2

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            secure_beta_calculation([], [0.5], BasicPolicy(), c=3, rng=random.Random(1))
        with pytest.raises(ValueError):
            secure_beta_calculation(
                [[1], [0], [1]], [0.5, 0.6], BasicPolicy(), c=2, rng=random.Random(1)
            )
        with pytest.raises(ValueError):
            secure_beta_calculation(
                [[2], [0], [1]], [0.5], BasicPolicy(), c=2, rng=random.Random(1)
            )


class TestTripleSources:
    """Factory-fed runs must be indistinguishable from dealer-fed runs."""

    def _inputs(self, seed=17, m=10, n=12):
        rng = random.Random(seed)
        freqs = [rng.randint(0, m) for _ in range(n)]
        eps = [rng.random() for _ in range(n)]
        return provider_bits_for(freqs, m, rng), eps

    @pytest.mark.parametrize("engine", ["mono", "scalar", "batch"])
    def test_factory_fed_matches_dealer_fed(self, engine):
        bits, eps = self._inputs()
        dealer = secure_beta_calculation(
            bits, eps, BasicPolicy(), c=3, rng=random.Random(2), engine=engine
        )
        fed = secure_beta_calculation(
            bits,
            eps,
            BasicPolicy(),
            c=3,
            rng=random.Random(2),
            engine=engine,
            triple_source="factory",
            offline_producers=2,
        )
        assert np.array_equal(dealer.betas, fed.betas)
        assert dealer.publish_as_one == fed.publish_as_one
        assert dealer.lambda_ == fed.lambda_
        assert dealer.count_result.stats == fed.count_result.stats
        assert dealer.selection_result.stats == fed.selection_result.stats

    def test_phase_report_populated(self):
        bits, eps = self._inputs()
        res = secure_beta_calculation(
            bits,
            eps,
            BasicPolicy(),
            c=3,
            rng=random.Random(2),
            engine="batch",
            triple_source="factory",
        )
        p = res.phases
        assert p is not None
        assert p.setup.bits_sent > 0 and p.setup.rounds >= 2
        assert p.offline.bits_sent > 0
        assert p.online.bits_sent > 0
        assert p.online.rounds > 0
        assert p.triple_words_produced >= p.triple_words_consumed > 0
        assert p.stall_time_s >= 0.0
        assert 0.0 <= p.utilization <= 1.0
        assert p.critical_path_s > 0.0

    def test_dealer_fed_has_no_phase_report(self):
        bits, eps = self._inputs()
        res = secure_beta_calculation(
            bits, eps, BasicPolicy(), c=3, rng=random.Random(2), engine="batch"
        )
        assert res.phases is None

    def test_external_prefilled_factory(self):
        from repro.mpc.offline.factory import TripleFactory

        bits, eps = self._inputs()
        factory = TripleFactory(
            parties=3,
            seed=7,
            target_words=6000,
            producers=2,
            capacity_words=6000,
            link_bandwidth_bps=None,
        ).start()
        try:
            factory.join_producers(timeout=120)
            fed = secure_beta_calculation(
                bits,
                eps,
                BasicPolicy(),
                c=3,
                rng=random.Random(2),
                engine="batch",
                triple_source="factory",
                factory=factory,
            )
        finally:
            factory.close()
        dealer = secure_beta_calculation(
            bits, eps, BasicPolicy(), c=3, rng=random.Random(2), engine="batch"
        )
        assert np.array_equal(dealer.betas, fed.betas)
        assert fed.phases is not None

    def test_validation(self):
        bits, eps = self._inputs()
        with pytest.raises(ValueError, match="triple_source"):
            secure_beta_calculation(
                bits, eps, BasicPolicy(), c=3, rng=random.Random(1),
                triple_source="oracle",
            )
        with pytest.raises(ValueError, match="requires triple_source"):
            from repro.mpc.offline.factory import TripleFactory

            f = TripleFactory(parties=3, seed=1, target_words=8)
            secure_beta_calculation(
                bits, eps, BasicPolicy(), c=3, rng=random.Random(1), factory=f
            )
