"""Incremental secure β maintenance: held state, delta folds, closure.

The contract under test: after any churn folded in with
``secure_beta_update``, the held state's public outputs (β, selection
bits, opened frequencies) are *identical* to a from-scratch
``secure_beta_calculation`` over the mutated inputs with the persisted
decoy coins replayed -- the incremental pass is exact, never approximate.
The λ-drift closure (``selection_closure``) is the argument that makes
restricting the selection stage sound; its three monotonicity cases are
pinned directly.
"""

import random

import numpy as np
import pytest

from repro.core.policies import BasicPolicy
from repro.mpc.betacalc import (
    secure_beta_calculation,
    secure_beta_update,
    selection_closure,
)
from repro.mpc.countbelow import COIN_BITS

M = 6
N = 24
C = 3


def make_bits(rng: random.Random, m: int = M, n: int = N) -> list:
    return [[rng.randint(0, 1) for _ in range(n)] for _ in range(m)]


def make_eps(rng: random.Random, n: int = N) -> list:
    return [rng.choice([0.15, 0.3, 0.6]) for _ in range(n)]


def held_run(bits, eps, engine="batch", seed=1):
    return secure_beta_calculation(
        bits,
        eps,
        BasicPolicy(),
        C,
        random.Random(seed),
        engine=engine,
        keep_state=True,
    )


def scratch_with_coins(bits, eps, coins, engine="batch", seed=77):
    """From-scratch run over the same inputs, persisted coins replayed."""
    return secure_beta_calculation(
        bits,
        eps,
        BasicPolicy(),
        C,
        random.Random(seed),
        engine=engine,
        coins=coins,
    )


def assert_state_matches_scratch(state, bits, eps, engine="batch"):
    scratch = scratch_with_coins(bits, eps, state.coins, engine=engine)
    assert np.array_equal(state.betas, scratch.betas)
    assert state.publish_as_one == scratch.publish_as_one
    assert state.opened_frequencies == scratch.opened_frequencies
    assert state.lambda_ == scratch.lambda_


class TestHeldState:
    def test_keep_state_requires_decomposed_engine(self):
        rng = random.Random(0)
        with pytest.raises(ValueError, match="decomposed"):
            secure_beta_calculation(
                make_bits(rng, 3, 4),
                [0.3] * 4,
                BasicPolicy(),
                C,
                rng,
                engine="mono",
                keep_state=True,
            )

    def test_state_captures_the_full_run(self):
        rng = random.Random(1)
        bits, eps = make_bits(rng), make_eps(rng)
        result = held_run(bits, eps)
        state = result.state
        assert state is not None
        assert state.n_identities == N
        assert np.array_equal(state.betas, result.betas)
        assert state.publish_as_one == result.publish_as_one
        assert state.lambda_ == result.lambda_
        assert state.coins.shape[0] == N

    def test_plain_run_holds_no_state(self):
        rng = random.Random(2)
        bits, eps = make_bits(rng), make_eps(rng)
        result = secure_beta_calculation(
            bits, eps, BasicPolicy(), C, rng, engine="batch"
        )
        assert result.state is None
        assert result.incremental is None


class TestUpdateExactness:
    @pytest.mark.parametrize("engine", ["scalar", "batch"])
    def test_single_update_equals_coin_replayed_scratch(self, engine):
        rng = random.Random(3)
        bits, eps = make_bits(rng), make_eps(rng)
        state = held_run(bits, eps, engine=engine).state
        dirty = [2, 9, 17]
        for j in dirty:
            bits[rng.randrange(M)][j] ^= 1
        result = secure_beta_update(state, bits, dirty, random.Random(4))
        assert result.state is state
        assert np.array_equal(result.betas, state.betas)
        assert_state_matches_scratch(state, bits, eps, engine=engine)

    def test_chained_updates_stay_exact(self):
        rng = random.Random(5)
        bits, eps = make_bits(rng), make_eps(rng)
        state = held_run(bits, eps).state
        for round_no in range(3):
            k = rng.randint(1, N)
            dirty = sorted(rng.sample(range(N), k))
            for j in dirty:
                bits[rng.randrange(M)][j] ^= 1
            result = secure_beta_update(
                state, bits, dirty, random.Random(round_no)
            )
            assert result.incremental.dirty == dirty
            assert_state_matches_scratch(state, bits, eps)

    def test_empty_dirty_set_is_the_identity(self):
        rng = random.Random(6)
        bits, eps = make_bits(rng), make_eps(rng)
        state = held_run(bits, eps).state
        before = state.betas.copy()
        publish_before = list(state.publish_as_one)
        result = secure_beta_update(state, bits, [], random.Random(7))
        assert np.array_equal(result.betas, before)
        assert result.publish_as_one == publish_before
        assert result.incremental.closure == []

    def test_closure_invariants_on_a_real_pass(self):
        rng = random.Random(8)
        bits, eps = make_bits(rng), make_eps(rng)
        state = held_run(bits, eps).state
        publish_before = list(state.publish_as_one)
        dirty = [0, 5, 11, 23]
        for j in dirty:
            bits[rng.randrange(M)][j] ^= 1
        result = secure_beta_update(state, bits, dirty, random.Random(9))
        info = result.incremental
        closure = set(info.closure)
        assert set(info.dirty) <= closure
        scale = 1 << COIN_BITS
        if round(info.lambda_before * scale) == round(info.lambda_after * scale):
            assert closure == set(info.dirty)
        # Everything outside the closure kept its previous public bit.
        for j in range(N):
            if j not in closure:
                assert result.publish_as_one[j] == publish_before[j]


class TestUpdateValidation:
    @pytest.fixture
    def held(self):
        rng = random.Random(10)
        bits, eps = make_bits(rng), make_eps(rng)
        return bits, held_run(bits, eps).state

    def test_wrong_provider_count(self, held):
        bits, state = held
        with pytest.raises(ValueError, match="providers"):
            secure_beta_update(state, bits[:-1], [0], random.Random(0))

    def test_wrong_row_length(self, held):
        bits, state = held
        short = [row[:-1] for row in bits]
        with pytest.raises(ValueError, match="bits"):
            secure_beta_update(state, short, [0], random.Random(0))

    def test_dirty_out_of_range(self, held):
        bits, state = held
        with pytest.raises(ValueError, match="out of range"):
            secure_beta_update(state, bits, [N], random.Random(0))

    def test_non_bit_dirty_value(self, held):
        bits, state = held
        bits[0][3] = 2
        with pytest.raises(ValueError, match="non-bit"):
            secure_beta_update(state, bits, [3], random.Random(0))

    def test_unknown_triple_source(self, held):
        bits, state = held
        with pytest.raises(ValueError, match="triple_source"):
            secure_beta_update(
                state, bits, [0], random.Random(0), triple_source="oracle"
            )

    def test_factory_requires_factory_source(self, held):
        bits, state = held
        with pytest.raises(ValueError, match="factory"):
            secure_beta_update(
                state, bits, [0], random.Random(0), factory=object()
            )


class TestFactoryFedUpdate:
    def test_factory_matches_dealer_byte_for_byte(self):
        rng = random.Random(11)
        bits, eps = make_bits(rng), make_eps(rng)
        mutated = [list(row) for row in bits]
        dirty = [1, 8, 14, 22]
        for j in dirty:
            mutated[j % M][j] ^= 1

        state_a = held_run(bits, eps).state
        state_b = held_run(bits, eps).state
        dealer = secure_beta_update(
            state_a, [list(r) for r in mutated], dirty, random.Random(12)
        )
        factory = secure_beta_update(
            state_b,
            [list(r) for r in mutated],
            dirty,
            random.Random(12),
            triple_source="factory",
            offline_producers=2,
        )
        assert np.array_equal(dealer.betas, factory.betas)
        assert dealer.publish_as_one == factory.publish_as_one
        assert factory.phases is not None
        assert factory.phases.triple_words_consumed > 0
        assert factory.incremental.triple_words_provisioned > 0
        assert (
            factory.phases.triple_words_produced
            >= factory.phases.triple_words_consumed
        )


class TestSelectionClosure:
    PUBLISH = [1, 0, 1, 0, 1, 0]

    def test_lambda_unchanged_closure_is_the_dirty_set(self):
        assert selection_closure([3, 1], self.PUBLISH, 500, 500) == [1, 3]

    def test_lambda_increase_adds_clean_zeros(self):
        # Clean 1s can only stay 1 under a λ raise; clean 0s may cross.
        assert selection_closure([0, 1], self.PUBLISH, 500, 600) == [0, 1, 3, 5]

    def test_lambda_decrease_adds_clean_ones(self):
        # Clean 0s can only stay 0 under a λ drop; clean 1s may lose the coin.
        assert selection_closure([0, 1], self.PUBLISH, 500, 400) == [0, 1, 2, 4]

    def test_empty_dirty_set_with_drift(self):
        assert selection_closure([], self.PUBLISH, 10, 20) == [1, 3, 5]
        assert selection_closure([], self.PUBLISH, 20, 10) == [0, 2, 4]
        assert selection_closure([], self.PUBLISH, 10, 10) == []
