"""Tests for the GMW secure-evaluation engine against the plaintext oracle."""

import random

import pytest

from repro.mpc.circuits import (
    CircuitBuilder,
    bits_to_int,
    evaluate,
    int_to_bits,
    less_than,
    popcount,
    ripple_add,
)
from repro.mpc.gmw import GMWProtocol


def build_mixed_circuit():
    """A circuit exercising every gate kind: (x + y) and x < y and parity."""
    b = CircuitBuilder()
    xs, ys = b.input_bits(4), b.input_bits(4)
    b.output_bits(ripple_add(b, xs, ys))
    b.output(less_than(b, xs, ys))
    b.output(b.not_(b.xor_many(xs + ys)))
    return b.build()


class TestCorrectness:
    @pytest.mark.parametrize("parties", [2, 3, 5])
    def test_matches_plaintext_oracle(self, parties):
        circuit = build_mixed_circuit()
        rng = random.Random(11)
        for _ in range(20):
            x, y = rng.randrange(16), rng.randrange(16)
            inputs = int_to_bits(x, 4) + int_to_bits(y, 4)
            expected = evaluate(circuit, inputs)
            result = GMWProtocol(circuit, parties, random.Random(rng.random())).run(
                inputs
            )
            assert result.outputs == expected

    def test_popcount_under_gmw(self):
        b = CircuitBuilder()
        bits = b.input_bits(7)
        b.output_bits(popcount(b, bits))
        circuit = b.build()
        protocol = GMWProtocol(circuit, 3, random.Random(5))
        result = protocol.run([1, 0, 1, 1, 0, 1, 1])
        assert bits_to_int(result.outputs) == 5

    def test_constants_and_not_gates(self):
        b = CircuitBuilder()
        x = b.input_bit()
        b.output(b.xor(x, b.one()))
        b.output(b.and_(b.not_(x), b.one()))
        circuit = b.build()
        for x in (0, 1):
            res = GMWProtocol(circuit, 3, random.Random(2)).run([x])
            assert res.outputs == [x ^ 1, x ^ 1]


class TestInputSharing:
    def test_shares_reconstruct_inputs(self):
        circuit = build_mixed_circuit()
        protocol = GMWProtocol(circuit, 4, random.Random(3))
        inputs = [1, 0, 1, 1, 0, 0, 1, 0]
        shares = protocol.share_inputs(inputs)
        assert len(shares) == 4
        for j, bit in enumerate(inputs):
            parity = 0
            for p in range(4):
                parity ^= shares[p][j]
            assert parity == bit

    def test_run_shared_equals_run(self):
        circuit = build_mixed_circuit()
        inputs = int_to_bits(9, 4) + int_to_bits(4, 4)
        p1 = GMWProtocol(circuit, 3, random.Random(8))
        expected = evaluate(circuit, inputs)
        assert p1.run_shared(p1.share_inputs(inputs)).outputs == expected

    def test_wrong_input_length_rejected(self):
        circuit = build_mixed_circuit()
        protocol = GMWProtocol(circuit, 2, random.Random(1))
        with pytest.raises(ValueError):
            protocol.run([0, 1])

    def test_non_bit_input_rejected(self):
        circuit = build_mixed_circuit()
        protocol = GMWProtocol(circuit, 2, random.Random(1))
        with pytest.raises(ValueError):
            protocol.run([2] * circuit.n_inputs)


class TestAccounting:
    def test_and_gates_counted(self):
        circuit = build_mixed_circuit()
        result = GMWProtocol(circuit, 3, random.Random(1)).run(
            [0] * circuit.n_inputs
        )
        assert result.stats.and_gates == circuit.stats().and_
        assert result.stats.triples_consumed == result.stats.and_gates

    def test_rounds_bounded_by_and_depth_plus_output(self):
        circuit = build_mixed_circuit()
        result = GMWProtocol(circuit, 3, random.Random(1)).run(
            [0] * circuit.n_inputs
        )
        # Layer batching: rounds must be far below the AND count.
        assert result.stats.rounds <= result.stats.and_gates
        assert result.stats.rounds >= 2  # at least one AND layer + output

    def test_messages_scale_quadratically_with_parties(self):
        circuit = build_mixed_circuit()
        inputs = [0] * circuit.n_inputs
        msgs = {}
        for p in (2, 4):
            res = GMWProtocol(circuit, p, random.Random(1)).run(inputs)
            msgs[p] = res.stats.messages
        # p*(p-1) growth: 4 parties => 6x the pairs of 2 parties.
        assert msgs[4] == msgs[2] * 6

    def test_xor_only_circuit_single_round(self):
        b = CircuitBuilder()
        x, y = b.input_bit(), b.input_bit()
        b.output(b.xor(x, y))
        res = GMWProtocol(b.build(), 3, random.Random(1)).run([1, 1])
        assert res.stats.and_gates == 0
        assert res.stats.rounds == 1  # only the output opening


class TestTranscripts:
    def test_transcripts_present_per_party(self):
        circuit = build_mixed_circuit()
        res = GMWProtocol(circuit, 3, random.Random(1)).run([0] * circuit.n_inputs)
        assert len(res.transcripts) == 3
        assert [t.party for t in res.transcripts] == [0, 1, 2]

    def test_single_party_view_independent_of_other_inputs(self):
        """Party 0's input shares are identical in distribution whatever the
        other bits are -- with a fixed RNG, literally identical here because
        masking randomness is drawn before the final parity share."""
        circuit = build_mixed_circuit()
        p_a = GMWProtocol(circuit, 3, random.Random(42))
        p_b = GMWProtocol(circuit, 3, random.Random(42))
        shares_a = p_a.share_inputs([0] * 8)
        shares_b = p_b.share_inputs([1] * 8)
        assert shares_a[0] == shares_b[0]
        assert shares_a[1] == shares_b[1]
        # Only the last party's shares absorb the difference.
        assert shares_a[2] != shares_b[2]

    def test_opened_values_are_masked(self):
        """Openings (d, e) = (x^a, y^b) must cover both bit values over many
        runs -- i.e. they do not leak the wire value deterministically."""
        b = CircuitBuilder()
        x, y = b.input_bit(), b.input_bit()
        b.output(b.and_(x, y))
        circuit = b.build()
        seen = set()
        for seed in range(64):
            res = GMWProtocol(circuit, 2, random.Random(seed)).run([1, 1])
            seen.update(res.transcripts[0].opened_values)
        assert seen == {0, 1}


class TestValidation:
    def test_minimum_two_parties(self):
        with pytest.raises(ValueError):
            GMWProtocol(build_mixed_circuit(), 1, random.Random(1))

    def test_run_shared_validates_party_count(self):
        circuit = build_mixed_circuit()
        protocol = GMWProtocol(circuit, 3, random.Random(1))
        with pytest.raises(ValueError):
            protocol.run_shared([[0] * circuit.n_inputs] * 2)

    def test_run_shared_validates_share_length(self):
        circuit = build_mixed_circuit()
        protocol = GMWProtocol(circuit, 2, random.Random(1))
        with pytest.raises(ValueError):
            protocol.run_shared([[0] * 3, [0] * circuit.n_inputs])
