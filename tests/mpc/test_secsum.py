"""Tests for the SecSumShare protocol (paper Sec. IV-B-1, Fig. 3)."""

import random

import pytest

from repro.mpc.field import Zq
from repro.mpc.secsum import SecSumShare


def run_secsum(inputs, c=3, q=None, seed=1):
    m = len(inputs)
    ring = Zq(q if q is not None else 1 << (m.bit_length() + 1))
    protocol = SecSumShare(m=m, c=c, ring=ring, rng=random.Random(seed))
    return protocol.run(inputs), ring


class TestCorrectness:
    def test_paper_figure3_example(self):
        """The worked example of Fig. 3: 5 providers, q=5, c=3, t0 held by
        p1 and p2 -- reconstruction must give frequency 2."""
        inputs = [[0], [1], [1], [0], [0]]
        result, ring = run_secsum(inputs, c=3, q=5)
        assert result.reconstruct(ring, 0) == 2

    @pytest.mark.parametrize("m,c", [(3, 2), (5, 3), (8, 3), (10, 5), (6, 6)])
    def test_single_identity_sums(self, m, c):
        rng = random.Random(m * 31 + c)
        inputs = [[rng.randint(0, 1)] for _ in range(m)]
        result, ring = run_secsum(inputs, c=c, seed=m + c)
        assert result.reconstruct(ring, 0) == sum(row[0] for row in inputs)

    def test_multiple_identities_parallel(self):
        rng = random.Random(7)
        m, n = 9, 12
        inputs = [[rng.randint(0, 1) for _ in range(n)] for _ in range(m)]
        result, ring = run_secsum(inputs, c=3)
        for j in range(n):
            assert result.reconstruct(ring, j) == sum(row[j] for row in inputs)

    def test_general_ring_values_not_just_bits(self):
        """The protocol sums arbitrary ring elements, not only Booleans."""
        inputs = [[5], [11], [2], [7]]
        result, ring = run_secsum(inputs, c=3, q=64)
        assert result.reconstruct(ring, 0) == 25

    def test_sum_wraps_modulo_q(self):
        inputs = [[3], [3], [3]]
        result, ring = run_secsum(inputs, c=2, q=4)
        assert result.reconstruct(ring, 0) == 9 % 4

    def test_zero_identities(self):
        result, ring = run_secsum([[], [], []], c=3)
        assert result.coordinator_shares == [[], [], []]


class TestShareDistribution:
    def test_coordinator_count(self):
        result, _ = run_secsum([[1]] * 7, c=4)
        assert len(result.coordinator_shares) == 4

    def test_every_provider_has_view(self):
        result, _ = run_secsum([[1]] * 7, c=3)
        assert len(result.provider_views) == 7

    def test_each_provider_receives_c_minus_1_shares(self):
        """Ring distribution: every provider gets exactly c-1 foreign shares
        per identity."""
        n_ids = 4
        inputs = [[1] * n_ids for _ in range(6)]
        result, _ = run_secsum(inputs, c=3)
        for view in result.provider_views:
            assert len(view.received_shares) == (3 - 1) * n_ids

    def test_coordinator_group_sizes(self):
        """Provider i reports to coordinator i mod c."""
        m, c = 10, 3
        result, _ = run_secsum([[1]] * m, c=c)
        expected = [len(range(k, m, c)) for k in range(c)]
        got = [len(recv) for recv in result.coordinator_received]
        assert got == expected


class TestSecrecy:
    def test_partial_coordinator_shares_uniform(self):
        """c-secrecy of the output (Thm. 4.1): any c-1 coordinator shares
        must be (close to) uniform whatever the true sum is."""
        q = 8
        distributions = {}
        for secret_config in ([[1], [1], [1], [1], [0]], [[0], [0], [0], [0], [0]]):
            counts = [0] * q
            for seed in range(600):
                ring = Zq(q)
                protocol = SecSumShare(m=5, c=3, ring=ring, rng=random.Random(seed))
                result = protocol.run(secret_config)
                counts[result.coordinator_shares[0][0]] += 1
            distributions[str(secret_config)] = counts
        for counts in distributions.values():
            for count in counts:
                # Uniform would be 75 per bucket; allow generous slack.
                assert 30 <= count <= 130

    def test_no_single_view_reveals_input(self):
        """A provider's received shares are uniform: run the protocol with
        two different input matrices under the same randomness and check the
        non-final shares agree (inputs only perturb the last share, which
        stays with the owner or is masked by others' randomness)."""
        ring = Zq(16)
        a = SecSumShare(m=5, c=3, ring=ring, rng=random.Random(3)).run(
            [[1], [1], [1], [1], [1]]
        )
        b = SecSumShare(m=5, c=3, ring=ring, rng=random.Random(3)).run(
            [[0], [0], [0], [0], [0]]
        )
        # Super-shares differ (they absorb the input difference) but the
        # received random shares from predecessors are drawn from the same
        # RNG stream; here we check the randomized view shape is
        # input-independent (full indistinguishability is the Thm. 4.1
        # argument, covered distributionally above).
        for va, vb in zip(a.provider_views, b.provider_views):
            assert len(va.received_shares) == len(vb.received_shares)


class TestValidation:
    def test_c_minimum(self):
        with pytest.raises(ValueError):
            SecSumShare(m=5, c=1, ring=Zq(8), rng=random.Random(1))

    def test_m_at_least_c(self):
        with pytest.raises(ValueError):
            SecSumShare(m=2, c=3, ring=Zq(8), rng=random.Random(1))

    def test_wrong_provider_count_rejected(self):
        protocol = SecSumShare(m=3, c=2, ring=Zq(8), rng=random.Random(1))
        with pytest.raises(ValueError):
            protocol.run([[1], [0]])

    def test_ragged_inputs_rejected(self):
        protocol = SecSumShare(m=3, c=2, ring=Zq(8), rng=random.Random(1))
        with pytest.raises(ValueError):
            protocol.run([[1, 0], [0], [1, 1]])
