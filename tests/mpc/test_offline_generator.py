"""Tests for the dealerless OT-extension triple generator."""

import threading
import time

import numpy as np
import pytest

from repro.mpc.offline.generator import (
    BASE_OT_BITS_PER_OT,
    DealerlessTripleGenerator,
    splitmix64,
)
from repro.net.transport import HEADER_BITS


def _reconstruct(block):
    a = np.bitwise_xor.reduce(block.a, axis=1)
    b = np.bitwise_xor.reduce(block.b, axis=1)
    c = np.bitwise_xor.reduce(block.c, axis=1)
    return a, b, c


class TestTripleAlgebra:
    @pytest.mark.parametrize("kernel", ["fast", "hashed"])
    @pytest.mark.parametrize("parties", [2, 3, 5])
    def test_shares_reconstruct_to_and(self, parties, kernel):
        gen = DealerlessTripleGenerator(parties, seed=11, kernel=kernel)
        block = gen.generate(32)
        a, b, c = _reconstruct(block)
        assert np.array_equal(c, a & b)

    @pytest.mark.parametrize("kernel", ["fast", "hashed"])
    def test_no_party_holds_the_secret(self, kernel):
        """Single-party share columns must not equal the reconstruction."""
        gen = DealerlessTripleGenerator(3, seed=5, kernel=kernel)
        block = gen.generate(64)
        a, _, _ = _reconstruct(block)
        for p in range(3):
            assert not np.array_equal(block.a[:, p], a)

    def test_deterministic_in_seed(self):
        b1 = DealerlessTripleGenerator(3, seed=7).generate(16)
        b2 = DealerlessTripleGenerator(3, seed=7).generate(16)
        assert np.array_equal(b1.a, b2.a)
        assert np.array_equal(b1.b, b2.b)
        assert np.array_equal(b1.c, b2.c)

    def test_distinct_seeds_distinct_blocks(self):
        b1 = DealerlessTripleGenerator(3, seed=7).generate(16)
        b2 = DealerlessTripleGenerator(3, seed=8).generate(16)
        assert not np.array_equal(b1.a, b2.a)

    def test_sequential_blocks_differ(self):
        gen = DealerlessTripleGenerator(2, seed=3)
        b1, b2 = gen.generate(8), gen.generate(8)
        assert not np.array_equal(b1.a, b2.a)
        assert gen.words_produced == 16


class TestDeadLanes:
    @pytest.mark.parametrize("lanes", [1, 7, 63])
    def test_dead_lanes_masked(self, lanes):
        gen = DealerlessTripleGenerator(3, seed=9)
        block = gen.generate(8, lanes=lanes)
        dead = np.uint64(~((1 << lanes) - 1) & 0xFFFFFFFFFFFFFFFF)
        for arr in (block.a, block.b, block.c):
            assert not np.any(arr & dead)
        assert block.triples == 8 * lanes

    def test_live_lanes_still_valid(self):
        gen = DealerlessTripleGenerator(3, seed=9)
        block = gen.generate(8, lanes=5)
        a, b, c = _reconstruct(block)
        assert np.array_equal(c, a & b)


class TestAccounting:
    def test_setup_wire_cost(self):
        gen = DealerlessTripleGenerator(3, seed=1)
        stats = gen.setup()
        pairs = 3 * 2
        expected = pairs * (gen.kappa * BASE_OT_BITS_PER_OT + 2 * HEADER_BITS)
        assert stats.bits_sent == expected
        assert stats.messages == pairs * 2
        assert stats.rounds == 2

    def test_setup_idempotent(self):
        gen = DealerlessTripleGenerator(3, seed=1)
        gen.setup()
        again = gen.setup()
        assert again.bits_sent == 0
        assert again.rounds == 0

    @pytest.mark.parametrize("kernel", ["fast", "hashed"])
    def test_batch_wire_cost_matches_formula(self, kernel):
        words = 4
        gen = DealerlessTripleGenerator(3, seed=1, kernel=kernel)
        block = gen.generate(words)
        pairs = 3 * 2
        n_bits = words * 64
        expected = pairs * (
            (n_bits * gen.kappa + HEADER_BITS) + (n_bits + HEADER_BITS)
        )
        assert block.stats.bits_sent == expected
        assert block.stats.messages == pairs * 2
        assert block.stats.rounds == 2

    def test_kernels_have_identical_accounting(self):
        fast = DealerlessTripleGenerator(3, seed=2, kernel="fast").generate(8)
        hashed = DealerlessTripleGenerator(3, seed=2, kernel="hashed").generate(8)
        assert fast.stats.bits_sent == hashed.stats.bits_sent
        assert fast.stats.messages == hashed.stats.messages
        assert fast.stats.per_party_bits == hashed.stats.per_party_bits

    def test_zero_words(self):
        gen = DealerlessTripleGenerator(2, seed=1)
        block = gen.generate(0)
        assert block.words == 0
        assert block.stats.bits_sent == 0
        assert block.stats.rounds == 0


class TestWireModel:
    def test_disabled_by_default(self):
        gen = DealerlessTripleGenerator(3, seed=1)
        start = time.perf_counter()
        gen.generate(16)
        assert time.perf_counter() - start < 0.5  # compute-only, no sleeps

    def test_bandwidth_waits_out_the_wire(self):
        # 16 words * (64*128 + 64) bits + headers over 100 Mbit/s ~ 1.3 ms,
        # plus 2 rounds of 5 ms latency: the batch must take >= 10 ms.
        gen = DealerlessTripleGenerator(
            3, seed=1, link_bandwidth_bps=100e6, link_latency_s=0.005
        )
        gen.setup()
        start = time.perf_counter()
        gen.generate(16)
        assert time.perf_counter() - start >= 0.010

    def test_interrupt_aborts_the_wait(self):
        stop = threading.Event()
        stop.set()
        gen = DealerlessTripleGenerator(
            3, seed=1, link_bandwidth_bps=1.0, link_latency_s=10.0, interrupt=stop
        )
        start = time.perf_counter()
        gen.setup()
        gen.generate(1)
        assert time.perf_counter() - start < 1.0

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            DealerlessTripleGenerator(3, seed=1, link_bandwidth_bps=0)


class TestValidation:
    def test_needs_two_parties(self):
        with pytest.raises(ValueError):
            DealerlessTripleGenerator(1, seed=1)

    def test_kappa_must_be_word_multiple(self):
        with pytest.raises(ValueError):
            DealerlessTripleGenerator(2, seed=1, kappa=100)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            DealerlessTripleGenerator(2, seed=1, kernel="magic")

    def test_negative_words_rejected(self):
        gen = DealerlessTripleGenerator(2, seed=1)
        with pytest.raises(ValueError):
            gen.generate(-1)

    def test_bad_lanes_rejected(self):
        gen = DealerlessTripleGenerator(2, seed=1)
        with pytest.raises(ValueError):
            gen.generate(1, lanes=65)


class TestSplitmix:
    def test_known_vector(self):
        # splitmix64(0) from the reference implementation.
        out = splitmix64(np.array([0], dtype=np.uint64))
        assert out[0] == np.uint64(0xE220A8397B1DCDAF)

    def test_vectorized_matches_scalar(self):
        xs = np.arange(16, dtype=np.uint64)
        vec = splitmix64(xs)
        for i, x in enumerate(xs):
            assert vec[i] == splitmix64(np.array([x], dtype=np.uint64))[0]
