"""Tests for the Boolean-circuit framework (gates, builder, evaluator)."""

import pytest

from repro.mpc.circuits import (
    Circuit,
    CircuitBuilder,
    GateOp,
    bits_to_int,
    evaluate,
    int_to_bits,
)


class TestCircuitPrimitives:
    def test_input_wire_indices(self):
        c = Circuit()
        w0, w1 = c.add_input(), c.add_input()
        assert (w0, w1) == (0, 1)
        assert c.n_inputs == 2

    def test_const_values(self):
        c = Circuit()
        z, o = c.add_const(0), c.add_const(1)
        assert evaluate_single(c, [z, o], []) == [0, 1]

    def test_const_must_be_bit(self):
        with pytest.raises(ValueError):
            Circuit().add_const(2)

    def test_gate_arity_enforced(self):
        c = Circuit()
        a = c.add_input()
        with pytest.raises(ValueError):
            c.add_gate(GateOp.XOR, (a,))
        with pytest.raises(ValueError):
            c.add_gate(GateOp.NOT, (a, a))

    def test_gate_cannot_reference_future_wire(self):
        c = Circuit()
        a = c.add_input()
        with pytest.raises(ValueError):
            c.add_gate(GateOp.XOR, (a, a + 5))

    def test_cannot_add_input_gate_manually(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.add_gate(GateOp.INPUT, ())

    def test_output_must_exist(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.mark_output(3)

    def test_validate_passes_on_wellformed(self):
        b = CircuitBuilder()
        x, y = b.input_bit(), b.input_bit()
        b.output(b.and_(x, y))
        b.build()  # validates internally


class TestEvaluator:
    @pytest.mark.parametrize("x", [0, 1])
    @pytest.mark.parametrize("y", [0, 1])
    def test_primitive_truth_tables(self, x, y):
        b = CircuitBuilder()
        a, c = b.input_bit(), b.input_bit()
        b.output(b.xor(a, c))
        b.output(b.and_(a, c))
        b.output(b.or_(a, c))
        b.output(b.not_(a))
        b.output(b.xnor(a, c))
        out = evaluate(b.build(), [x, y])
        assert out == [x ^ y, x & y, x | y, x ^ 1, (x ^ y) ^ 1]

    @pytest.mark.parametrize("sel", [0, 1])
    def test_mux(self, sel):
        b = CircuitBuilder()
        s, t, f = b.input_bit(), b.input_bit(), b.input_bit()
        b.output(b.mux(s, t, f))
        assert evaluate(b.build(), [sel, 1, 0]) == [1 if sel else 0]

    def test_input_count_checked(self):
        b = CircuitBuilder()
        b.output(b.input_bit())
        with pytest.raises(ValueError):
            evaluate(b.build(), [])

    def test_inputs_must_be_bits(self):
        b = CircuitBuilder()
        b.output(b.input_bit())
        with pytest.raises(ValueError):
            evaluate(b.build(), [2])


class TestBuilderHelpers:
    def test_constant_bits_roundtrip(self):
        b = CircuitBuilder()
        bits = b.constant_bits(42, 8)
        b.output_bits(bits)
        assert bits_to_int(evaluate(b.build(), [])) == 42

    def test_constant_too_wide_rejected(self):
        with pytest.raises(ValueError):
            CircuitBuilder().constant_bits(42, 3)

    def test_constants_are_shared_wires(self):
        b = CircuitBuilder()
        assert b.zero() == b.zero()
        assert b.one() == b.one()

    @pytest.mark.parametrize("n_bits", [1, 2, 3, 7])
    def test_and_or_xor_many(self, n_bits):
        b = CircuitBuilder()
        ins = b.input_bits(n_bits)
        b.output(b.and_many(ins))
        b.output(b.or_many(ins))
        b.output(b.xor_many(ins))
        circuit = b.build()
        for value in range(1 << n_bits):
            bits = int_to_bits(value, n_bits)
            and_, or_, xor_ = evaluate(circuit, bits)
            assert and_ == (1 if all(bits) else 0)
            assert or_ == (1 if any(bits) else 0)
            assert xor_ == (sum(bits) % 2)

    def test_equal_bits(self):
        b = CircuitBuilder()
        xs, ys = b.input_bits(4), b.input_bits(4)
        b.output(b.equal_bits(xs, ys))
        circuit = b.build()
        for x in (0, 5, 15):
            for y in (0, 5, 9):
                out = evaluate(circuit, int_to_bits(x, 4) + int_to_bits(y, 4))
                assert out == [1 if x == y else 0]

    def test_is_zero(self):
        b = CircuitBuilder()
        xs = b.input_bits(3)
        b.output(b.is_zero(xs))
        circuit = b.build()
        for x in range(8):
            assert evaluate(circuit, int_to_bits(x, 3)) == [1 if x == 0 else 0]

    def test_mux_bits_width_check(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            b.mux_bits(b.input_bit(), b.input_bits(2), b.input_bits(3))


class TestStats:
    def test_gate_counts(self):
        b = CircuitBuilder()
        x, y = b.input_bit(), b.input_bit()
        b.output(b.or_(x, y))  # or_ = 2 XOR + 1 AND
        stats = b.build().stats()
        assert stats.inputs == 2
        assert stats.and_ == 1
        assert stats.xor == 2
        assert stats.size == 3
        assert stats.multiplicative_size == 1

    def test_total_includes_everything(self):
        b = CircuitBuilder()
        x = b.input_bit()
        b.output(b.not_(x))
        stats = b.build().stats()
        assert stats.total == 2  # input + not


class TestBitConversions:
    @pytest.mark.parametrize("value", [0, 1, 5, 255])
    def test_roundtrip(self, value):
        assert bits_to_int(int_to_bits(value, 8)) == value

    def test_little_endian(self):
        assert int_to_bits(1, 3) == [1, 0, 0]
        assert int_to_bits(4, 3) == [0, 0, 1]

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(8, 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 3)

    def test_non_bit_rejected(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2])


def evaluate_single(circuit: Circuit, wires: list[int], inputs: list[int]):
    """Mark wires as outputs and evaluate (helper for low-level tests)."""
    for w in wires:
        circuit.mark_output(w)
    return evaluate(circuit, inputs)
