"""Unit tests for the bitsliced batch infrastructure.

Covers lane packing, the vectorized triple dealer and bit codecs, compiled
circuit caching, the `BatchGMWEngine` contract against the scalar oracle,
and the unified opening/accounting helpers (the `bits_sent` double-count
fix).
"""

import random

import numpy as np
import pytest

from repro.mpc.additive import AdditiveSharing
from repro.mpc.circuits import (
    CircuitBuilder,
    bit_matrix_to_ints,
    compile_circuit,
    evaluate,
    evaluate_batch,
    ints_to_bit_matrix,
    less_than,
    pack_lanes,
    ripple_add,
    unpack_lanes,
)
from repro.mpc.countbelow import build_count_identity_circuit, build_selection_identity_circuit
from repro.mpc.field import Zq
from repro.mpc.gmw import (
    BatchGMWEngine,
    GMWEngine,
    GMWProtocol,
    GMWStats,
    account_and_layer,
    account_output_opening,
    expected_stats,
)
from repro.mpc.triples import TripleDealer


def mixed_circuit():
    """A small circuit exercising every gate kind with real AND depth."""
    b = CircuitBuilder()
    x = b.input_bits(4)
    y = b.input_bits(4)
    s = ripple_add(b, x, y)
    lt = less_than(b, x, y)
    b.output_bits(s)
    b.output(b.mux(lt, b.one(), b.zero()))
    b.output(b.not_(b.and_(x[0], y[0])))
    return b.build()


# -- lane packing ------------------------------------------------------------


def test_pack_unpack_roundtrip():
    rng = np.random.default_rng(1)
    for n_lanes in (1, 5, 63, 64):
        bits = rng.integers(0, 2, size=(n_lanes, 17), dtype=np.uint8)
        words = pack_lanes(bits)
        assert words.shape == (17,)
        np.testing.assert_array_equal(unpack_lanes(words, n_lanes), bits)


def test_pack_rejects_too_many_lanes():
    with pytest.raises(ValueError):
        pack_lanes(np.zeros((65, 3), dtype=np.uint8))


# -- bit codecs ----------------------------------------------------------------


def test_ints_to_bit_matrix_matches_scalar():
    from repro.mpc.circuits import int_to_bits

    values = [0, 1, 5, 127, 128, 255]
    mat = ints_to_bit_matrix(values, 8)
    for i, v in enumerate(values):
        assert list(mat[i]) == int_to_bits(v, 8)
    np.testing.assert_array_equal(bit_matrix_to_ints(mat), np.asarray(values))


def test_ints_to_bit_matrix_rejects_overflow():
    with pytest.raises(ValueError):
        ints_to_bit_matrix([8], 3)
    with pytest.raises(ValueError):
        ints_to_bit_matrix([-1], 3)


# -- vectorized triple dealing ---------------------------------------------------


def test_deal_batch_triples_valid_per_lane():
    dealer = TripleDealer(3, random.Random(11))
    a, b, c = dealer.deal_batch(40, lanes=64)
    assert a.shape == b.shape == c.shape == (40, 3)
    ra = np.bitwise_xor.reduce(a, axis=1)
    rb = np.bitwise_xor.reduce(b, axis=1)
    rc = np.bitwise_xor.reduce(c, axis=1)
    np.testing.assert_array_equal(rc, ra & rb)
    assert dealer.issued == 40 * 64


def test_deal_batch_validates_args():
    dealer = TripleDealer(2, random.Random(0))
    with pytest.raises(ValueError):
        dealer.deal_batch(-1)
    with pytest.raises(ValueError):
        dealer.deal_batch(1, lanes=65)


# -- compiled circuit caching ---------------------------------------------------


def test_compile_circuit_cached_on_circuit():
    circuit = mixed_circuit()
    assert compile_circuit(circuit) is compile_circuit(circuit)


def test_identity_circuit_builders_cached():
    build_count_identity_circuit.cache_clear()
    c1 = build_count_identity_circuit(3, 5, 4)
    c2 = build_count_identity_circuit(3, 5, 4)
    assert c1 is c2
    assert build_count_identity_circuit.cache_info().hits == 1
    build_selection_identity_circuit.cache_clear()
    s1 = build_selection_identity_circuit(3, 5, 1000)
    s2 = build_selection_identity_circuit(3, 5, 1000)
    assert s1 is s2
    assert build_selection_identity_circuit.cache_info().hits == 1
    # Different parameters miss.
    assert build_count_identity_circuit(3, 5, 6) is not c1


def test_mono_builder_cached():
    from repro.mpc.countbelow import build_count_circuit, build_selection_circuit

    a = build_count_circuit(3, [2, 3], [10, 20], 4, 2)
    b = build_count_circuit(3, [2, 3], [10, 20], 4, 2)
    assert a is b
    s1 = build_selection_circuit(3, [2, 3], 77, 4)
    s2 = build_selection_circuit(3, [2, 3], 77, 4)
    assert s1 is s2


# -- batch engine vs oracles ---------------------------------------------------


def test_batch_engine_matches_plaintext_and_scalar():
    circuit = mixed_circuit()
    rng = np.random.default_rng(5)
    inputs = rng.integers(0, 2, size=(100, circuit.n_inputs), dtype=np.uint8)
    batch = BatchGMWEngine(circuit, 3, random.Random(1)).run(inputs)
    np.testing.assert_array_equal(batch.outputs, evaluate_batch(circuit, inputs))
    scalar = GMWEngine(circuit, 3, random.Random(2))
    for i in range(inputs.shape[0]):
        res = scalar.run([int(v) for v in inputs[i]])
        assert list(batch.outputs[i]) == res.outputs
        assert batch.per_instance == res.stats


def test_batch_unopened_shares_reconstruct():
    circuit = mixed_circuit()
    rng = np.random.default_rng(9)
    inputs = rng.integers(0, 2, size=(70, circuit.n_inputs), dtype=np.uint8)
    batch = BatchGMWEngine(circuit, 4, random.Random(3)).run(inputs, open_outputs=False)
    assert batch.outputs is None
    opened = np.bitwise_xor.reduce(batch.output_shares, axis=0)
    np.testing.assert_array_equal(opened, evaluate_batch(circuit, inputs))


def test_run_shared_bits_chains_batched_stages():
    """Feeding one batch's unopened shares into a second circuit works."""
    b = CircuitBuilder()
    x = b.input_bits(2)
    b.output(b.and_(x[0], x[1]))
    second = b.build()

    b2 = CircuitBuilder()
    y = b2.input_bits(3)
    b2.output(b2.xor(y[0], y[1]))
    b2.output(b2.and_(y[1], y[2]))
    first = b2.build()

    rng = np.random.default_rng(2)
    inputs = rng.integers(0, 2, size=(90, 3), dtype=np.uint8)
    stage1 = BatchGMWEngine(first, 3, random.Random(4)).run(inputs, open_outputs=False)
    stage2 = BatchGMWEngine(second, 3, random.Random(5)).run_shared_bits(
        stage1.output_shares
    )
    expected = evaluate_batch(first, inputs)
    for i in range(90):
        assert stage2.outputs[i, 0] == (expected[i, 0] & expected[i, 1])


def test_batch_engine_validates_inputs():
    circuit = mixed_circuit()
    eng = BatchGMWEngine(circuit, 3, random.Random(0))
    with pytest.raises(ValueError):
        eng.run(np.zeros((0, circuit.n_inputs), dtype=np.uint8))
    with pytest.raises(ValueError):
        eng.run(np.zeros((3, circuit.n_inputs + 1), dtype=np.uint8))
    with pytest.raises(ValueError):
        eng.run(np.full((3, circuit.n_inputs), 2, dtype=np.uint8))
    with pytest.raises(ValueError):
        BatchGMWEngine(circuit, 1, random.Random(0))


# -- unified accounting (the opening double-count fix) -----------------------------


def test_account_helpers_are_noop_on_empty():
    stats = GMWStats(parties=3)
    account_and_layer(stats, 3, 0)
    account_output_opening(stats, 3, 0)
    assert stats == GMWStats(parties=3)


def test_no_opening_round_when_no_outputs_both_engines():
    b = CircuitBuilder()
    x = b.input_bits(2)
    b.and_(x[0], x[1])  # work, but nothing revealed
    circuit = b.circuit  # bypass build() output validation if any
    circuit.validate()

    scalar = GMWProtocol(circuit, 3, random.Random(1)).run([1, 1])
    assert scalar.stats.rounds == 1  # the single AND layer, no opening
    assert scalar.stats.bits_sent == 2 * 1 * 3 * 2

    batch = BatchGMWEngine(circuit, 3, random.Random(1)).run(
        np.ones((10, 2), dtype=np.uint8)
    )
    assert batch.per_instance == scalar.stats
    assert batch.outputs.shape == (10, 0)


def test_opening_round_charged_once():
    circuit = mixed_circuit()
    opened = expected_stats(circuit, 3, open_outputs=True)
    shared = expected_stats(circuit, 3, open_outputs=False)
    n_out = len(circuit.outputs)
    assert opened.rounds == shared.rounds + 1
    assert opened.messages == shared.messages + 3 * 2
    assert opened.bits_sent == shared.bits_sent + n_out * 3 * 2
    # And the scalar engine reports exactly the analytic numbers.
    run = GMWProtocol(circuit, 3, random.Random(2)).run([0] * circuit.n_inputs)
    assert run.stats == opened


def test_scalar_run_shared_open_outputs_false():
    circuit = mixed_circuit()
    proto = GMWProtocol(circuit, 3, random.Random(6))
    res = proto.run([1, 0, 1, 0, 0, 1, 1, 0], open_outputs=False)
    assert res.outputs == []
    opened = [0] * len(circuit.outputs)
    for p in range(3):
        for k, bit in enumerate(res.output_shares[p]):
            opened[k] ^= bit
    assert opened == evaluate(circuit, [1, 0, 1, 0, 0, 1, 1, 0])


# -- vectorized additive sharing -----------------------------------------------


def test_share_matrix_reconstructs():
    ring = Zq(1 << 20)
    sharing = AdditiveSharing(ring, 4)
    values = [0, 1, 12345, (1 << 20) - 1]
    mat = sharing.share_matrix(values, np.random.default_rng(3))
    assert mat.shape == (4, 4)
    recon = mat.sum(axis=1) % ring.q
    np.testing.assert_array_equal(recon, np.asarray(values))


def test_share_matrix_rejects_huge_modulus():
    sharing = AdditiveSharing(Zq((1 << 31) + 11), 3)
    with pytest.raises(ValueError):
        sharing.share_matrix([1], np.random.default_rng(0))
