"""Segment-streamer tests: archive, manifest cursor, chunking, retention.

The streamer's contract is that a follower can always resume: segments
are archived before the leader's compactor can delete them, manifests
answer strict tails past a known cursor, and chunk reads are addressed by
``(name, offset)`` so a half-fetched segment picks up where it stopped.
"""

import asyncio
import os

import pytest

from repro.replication import SegmentStreamer, decode_chunk
from repro.serving.client import LocatorClient, RetryPolicy
from repro.serving.protocol import RemoteError
from repro.updates import compact_snapshot

from tests.replication.conftest import seal


def make_streamer(world, **kwargs) -> SegmentStreamer:
    os.makedirs(world["segment_dir"], exist_ok=True)
    return SegmentStreamer(
        world["leader_snapshot"], world["segment_dir"], **kwargs
    )


def ask(streamer, verb, **fields):
    response = asyncio.run(
        streamer.handle(verb, {"id": 1, "verb": verb, **fields}, 1)
    )
    if response.get("ok") is False:
        raise RemoteError(
            response.get("code", "?"), response.get("error", ""), response
        )
    return response


class TestArchive:
    def test_refresh_archives_and_survives_compactor_deletion(self, world):
        seg = seal(world["tmp"], "000001.seg.npz", 0, [("upsert", 30, {1, 2}, 0.5)])
        streamer = make_streamer(world)
        assert streamer.refresh() == 1
        assert streamer.refresh() == 0  # already archived: idempotent
        os.unlink(seg)  # the leader's compactor consumed it
        manifest = streamer.manifest()
        assert [m["name"] for m in manifest] == ["000001.seg.npz"]
        response = ask(streamer, "repl-segment", name="000001.seg.npz", offset=0)
        assert response["eof"] is True
        assert len(decode_chunk(response["data"])) == manifest[0]["size"]

    def test_recover_rebuilds_manifest_and_drops_torn_files(self, world):
        seal(world["tmp"], "000001.seg.npz", 0, [("upsert", 30, {1}, 0.5)])
        streamer = make_streamer(world)
        streamer.refresh()
        torn = os.path.join(streamer.archive_dir, "000000.seg.npz")
        with open(torn, "wb") as f:
            f.write(b"not a segment")
        stray = os.path.join(streamer.archive_dir, "junk.part")
        with open(stray, "wb") as f:
            f.write(b"half a copy")
        reborn = make_streamer(world)  # same dirs, fresh process
        assert [m["name"] for m in reborn.manifest()] == ["000001.seg.npz"]
        assert not os.path.exists(torn)
        assert not os.path.exists(stray)

    def test_retention_trims_old_epochs(self, world):
        seal(world["tmp"], "000001.seg.npz", 0, [("upsert", 30, {1}, 0.5)])
        streamer = make_streamer(world, retain_epochs=1)
        streamer.refresh()
        assert len(streamer.manifest()) == 1
        # Advance the leader two epochs: epoch-0 segments fall out.
        seg2 = seal(world["tmp"], "000002.seg.npz", 0, [("upsert", 31, {2}, 0.5)])
        compact_snapshot(world["leader_snapshot"], [seg2])  # -> epoch 1
        seg3 = seal(world["tmp"], "000003.seg.npz", 1, [("upsert", 32, {3}, 0.5)])
        compact_snapshot(world["leader_snapshot"], [seg3])  # -> epoch 2
        streamer.refresh()
        names = [m["name"] for m in streamer.manifest()]
        assert "000001.seg.npz" not in names
        assert "000003.seg.npz" in names


class TestManifest:
    def test_cursor_answers_the_strict_tail(self, world):
        for k in (1, 2, 3):
            seal(world["tmp"], f"00000{k}.seg.npz", 0, [("upsert", 29 + k, {k}, 0.5)])
        streamer = make_streamer(world)
        streamer.refresh()
        response = ask(streamer, "repl-subscribe", after="000002.seg.npz")
        assert [m["name"] for m in response["segments"]] == ["000003.seg.npz"]
        assert response["epoch"] == 0
        assert response["chunk_bytes"] == streamer.chunk_bytes

    def test_unknown_cursor_answers_everything(self, world):
        seal(world["tmp"], "000005.seg.npz", 0, [("upsert", 30, {1}, 0.5)])
        streamer = make_streamer(world)
        streamer.refresh()
        response = ask(streamer, "repl-subscribe", after="000000.seg.npz")
        assert [m["name"] for m in response["segments"]] == ["000005.seg.npz"]

    def test_bad_after_is_rejected(self, world):
        # ValueError here; the connection layer maps it to a
        # ``bad-request`` error response on the wire.
        streamer = make_streamer(world)
        with pytest.raises(ValueError):
            ask(streamer, "repl-epoch", after=7)


class TestChunks:
    def test_chunked_reads_reassemble_exactly(self, world):
        seg = seal(
            world["tmp"], "000001.seg.npz", 0,
            [("upsert", 30 + k, {k % 8}, 0.5) for k in range(12)],
        )
        with open(seg, "rb") as f:
            expected = f.read()
        streamer = make_streamer(world, chunk_bytes=128)
        streamer.refresh()
        got, offset = b"", 0
        while True:
            response = ask(
                streamer, "repl-segment", name="000001.seg.npz", offset=offset
            )
            chunk = decode_chunk(response["data"])
            assert len(chunk) <= 128
            got += chunk
            offset += len(chunk)
            if response["eof"]:
                break
        assert got == expected
        assert offset == response["size"]

    def test_unknown_segment_is_not_found(self, world):
        streamer = make_streamer(world)
        with pytest.raises(RemoteError) as excinfo:
            ask(streamer, "repl-segment", name="nope.seg.npz", offset=0)
        assert excinfo.value.code == "not-found"

    def test_path_traversal_and_bad_offsets_rejected(self, world):
        seal(world["tmp"], "000001.seg.npz", 0, [("upsert", 30, {1}, 0.5)])
        streamer = make_streamer(world)
        streamer.refresh()
        with pytest.raises(ValueError):
            ask(streamer, "repl-segment", name="../000001.seg.npz", offset=0)
        with pytest.raises(ValueError):
            ask(streamer, "repl-segment", name="000001.seg.npz", offset=-1)
        with pytest.raises(ValueError):
            ask(streamer, "repl-segment", name="000001.seg.npz", offset=10**9)


class TestOverTheWire:
    @pytest.mark.parametrize("protocol", ["v1", "v2"])
    def test_subscribe_and_fetch_over_tcp(self, world, protocol):
        """The repl verbs ride both wire protocols (v2 via the JSON
        extension escape), end to end over real sockets."""
        seg = seal(world["tmp"], "000001.seg.npz", 0, [("upsert", 30, {1}, 0.5)])
        with open(seg, "rb") as f:
            expected = f.read()

        async def _main():
            streamer = make_streamer(world, chunk_bytes=256)
            await streamer.start()
            client = LocatorClient(
                servers=[streamer.address],
                retry=RetryPolicy(max_retries=1, timeout_s=2.0),
                cache_size=0,
                protocol=protocol,
            )
            try:
                sub = await client.call(
                    streamer.address, "repl-subscribe", after=None
                )
                assert sub["epoch"] == 0
                (entry,) = sub["segments"]
                got, offset = b"", 0
                while offset < entry["size"]:
                    r = await client.call(
                        streamer.address, "repl-segment",
                        name=entry["name"], offset=offset,
                    )
                    chunk = decode_chunk(r["data"])
                    got += chunk
                    offset += len(chunk)
                    if r["eof"]:
                        break
                assert got == expected
            finally:
                await client.close()
                await streamer.stop()

        asyncio.run(_main())
