"""WAN cost-model tests: transfer pricing and strategy comparison."""

import pytest

from repro.net.latency import LatencyModel
from repro.replication import ReplicationCostModel

FLAT = LatencyModel(base_latency_s=0.1, bandwidth_bps=1e6)


class TestTransfer:
    def test_one_transfer_pays_latency_once(self):
        cost = ReplicationCostModel(FLAT).transfer(1000)
        # 8000 payload bits / 1e6 bps + one 0.1 s propagation (+ header bits)
        assert cost.n_bytes == 1000
        assert cost.n_transfers == 1
        assert cost.seconds == pytest.approx(0.1 + 8000 / 1e6, rel=0.05)

    def test_chunked_transfer_pays_latency_per_chunk(self):
        model = ReplicationCostModel(FLAT)
        whole = model.transfer(10_000, n_transfers=1)
        chunked = model.transfer(10_000, n_transfers=5)
        assert chunked.seconds == pytest.approx(
            whole.seconds + 4 * FLAT.base_latency_s
        )

    def test_invalid_transfers_rejected(self):
        model = ReplicationCostModel(FLAT)
        with pytest.raises(ValueError):
            model.transfer(-1)
        with pytest.raises(ValueError):
            model.transfer(10, n_transfers=0)

    def test_default_profile_is_wan(self):
        from repro.net.latency import WAN

        assert ReplicationCostModel().latency is WAN


class TestCompare:
    def test_delta_streaming_beats_snapshot_shipping(self):
        model = ReplicationCostModel(FLAT)
        report = model.compare(10_000_000, [4_000, 6_000])
        assert report["snapshot_bytes"] == 10_000_000
        assert report["delta_bytes"] == 10_000
        assert report["bytes_ratio"] == pytest.approx(1000.0)
        assert report["snapshot_seconds"] > report["delta_seconds"]
        assert report["seconds_ratio"] > 1.0

    def test_empty_delta_stream_is_one_free_poll(self):
        model = ReplicationCostModel(FLAT)
        stream = model.delta_stream([])
        assert stream.n_bytes == 0
        assert stream.n_transfers == 1
        assert stream.seconds > 0  # the poll still pays propagation
