"""Fixtures for the replication-plane tests.

A tiny but non-trivial leader world: an epoch-0 base snapshot, a delta
log, and helpers to seal segments against a chosen epoch.  The noise key
is fixed so every sealed row is deterministic -- the byte-identity
arguments the replication plane rests on need that.
"""

from __future__ import annotations

import os
import shutil

import numpy as np
import pytest

from repro.core.index import PPIIndex
from repro.serving.snapshot import save_snapshot
from repro.updates import DeltaLog, seal_segment

KEY = b"\x2a" * 16
N_PROVIDERS = 8
N_OWNERS = 24


def base_index() -> PPIIndex:
    i, j = np.meshgrid(np.arange(N_PROVIDERS), np.arange(N_OWNERS), indexing="ij")
    return PPIIndex(((i + j) % 3 == 0).astype(np.uint8))


def seal(tmp_path, name: str, base_epoch: int, ops) -> str:
    """Write one sealed segment from a throwaway delta log."""
    log_path = str(tmp_path / f"{name}.log")
    seg_path = str(tmp_path / "segments" / name)
    os.makedirs(str(tmp_path / "segments"), exist_ok=True)
    with DeltaLog.create(log_path, N_PROVIDERS, noise_key=KEY) as log:
        for op in ops:
            if op[0] == "upsert":
                log.upsert(op[1], sorted(op[2]), beta=op[3])
            elif op[0] == "remove":
                log.remove(op[1])
            else:
                log.flip(op[1], sorted(op[2]), sorted(op[3]), beta=op[4])
        seal_segment(log, seg_path, base_epoch=base_epoch)
    os.unlink(log_path)
    return seg_path


@pytest.fixture
def world(tmp_path):
    """Leader base snapshot (epoch 0) + a follower seed copy of it."""
    leader = str(tmp_path / "leader.npz")
    follower = str(tmp_path / "follower.npz")
    save_snapshot(base_index(), leader, format_version=3, epoch=0)
    shutil.copyfile(leader, follower)
    return {
        "tmp": tmp_path,
        "leader_snapshot": leader,
        "follower_snapshot": follower,
        "segment_dir": str(tmp_path / "segments"),
        "index": base_index(),
    }
