"""Follower-side replication tests: tail, overlay, compact, swap.

Covers the acceptance-critical behaviors: byte-identical follower
compaction, zero stale reads across a leader rollout (read-your-epoch),
and crash-safe resume after a SIGKILL mid-catch-up.
"""

import asyncio
import multiprocessing
import os
import shutil
import signal

import pytest

from repro.replication import (
    ReplicaApplier,
    ReplicaServer,
    ReplicationCostModel,
    ReplicationError,
    SegmentStreamer,
    decode_chunk,
)
from repro.serving.client import LocatorClient, RetryPolicy
from repro.serving.server import PPIServer, ShardSpec
from repro.serving.snapshot import load_postings, snapshot_epoch
from repro.updates import compact_snapshot
from repro.updates.segments import load_segment

from tests.replication.conftest import seal

NOWHERE = ("127.0.0.1", 1)  # a leader address never dialed


def truth(snapshot_path: str, owner_id: int) -> list:
    index = load_postings(snapshot_path)
    try:
        return index.query(owner_id)
    finally:
        if hasattr(index, "release"):
            index.release()


async def start_streamer(world, **kwargs) -> SegmentStreamer:
    os.makedirs(world["segment_dir"], exist_ok=True)
    streamer = SegmentStreamer(
        world["leader_snapshot"], world["segment_dir"], **kwargs
    )
    await streamer.start()
    return streamer


def follower_applier(world, leader, **kwargs) -> ReplicaApplier:
    return ReplicaApplier(
        leader,
        world["follower_snapshot"],
        segment_dir=str(world["tmp"] / "follower-segs"),
        retry=RetryPolicy(max_retries=1, timeout_s=2.0),
        **kwargs,
    )


def sealed_row(seg_path: str, owner_id: int) -> list:
    """The published (noise-obscured) row a sealed segment holds."""
    return load_segment(seg_path).postings(owner_id).tolist()


class TestTail:
    def test_sync_applies_segments_as_overlay(self, world):
        seg = seal(world["tmp"], "000001.seg.npz", 0, [("upsert", 5, {0, 3, 7}, 0.5)])
        expected = sealed_row(seg, 5)
        assert set(expected) >= {0, 3, 7}  # true providers + injected noise

        async def _main():
            streamer = await start_streamer(world)
            applier = follower_applier(world, streamer.address)
            try:
                stats = await applier.sync_once()
                assert stats["segments_fetched"] == 1
                assert stats["overlay_depth"] == 1
                assert stats["epochs_behind"] == 0
                assert applier.serving_index().query(5) == expected
                # The cursor makes a second round a no-op.
                again = await applier.sync_once()
                assert again["segments_fetched"] == 0
                assert applier.bytes_fetched == stats["bytes_fetched"]
            finally:
                await applier.close()
                await streamer.stop()

        asyncio.run(_main())

    def test_fallen_behind_retention_window_raises(self, world):
        # Epoch-0 history is gone before the streamer ever archived it: the
        # follower (still at epoch 0) cannot reconstruct the boundary.
        seg1 = seal(world["tmp"], "000001.seg.npz", 0, [("upsert", 5, {1}, 0.5)])
        compact_snapshot(world["leader_snapshot"], [seg1])  # leader -> epoch 1
        os.unlink(seg1)
        seal(world["tmp"], "000002.seg.npz", 1, [("upsert", 6, {2}, 0.5)])
        compact_snapshot(
            world["leader_snapshot"],
            [str(world["tmp"] / "segments" / "000002.seg.npz")],
        )  # leader -> epoch 2; 000002 is now a completed epoch too

        async def _main():
            streamer = await start_streamer(world)
            applier = follower_applier(world, streamer.address)
            try:
                with pytest.raises(ReplicationError, match="retention"):
                    await applier.sync_once(force_compact=True)
            finally:
                await applier.close()
                await streamer.stop()

        asyncio.run(_main())

    def test_recover_drops_corrupt_and_already_compacted_segments(self, world):
        seg = seal(world["tmp"], "000001.seg.npz", 0, [("upsert", 5, {1}, 0.5)])
        segdir = str(world["tmp"] / "follower-segs")
        os.makedirs(segdir)
        # A stale copy: the follower's base already compacted past epoch 0.
        shutil.copyfile(seg, os.path.join(segdir, "000001.seg.npz"))
        compact_snapshot(world["follower_snapshot"], [seg])  # follower epoch 1
        with open(os.path.join(segdir, "000002.seg.npz"), "wb") as f:
            f.write(b"torn by a crash")
        with open(os.path.join(segdir, "000003.seg.npz.part"), "wb") as f:
            f.write(b"half a download")

        applier = follower_applier(world, NOWHERE)
        assert applier.overlay_depth() == 0
        assert applier._cursor is None
        assert os.path.exists(os.path.join(segdir, "000003.seg.npz.part"))
        asyncio.run(applier.close())


class TestCompaction:
    def test_follower_snapshot_is_byte_identical_to_leaders(self, world):
        # Leader: two epoch boundaries, each folding its full segment set,
        # plus one still-pending segment on top.
        s1 = seal(world["tmp"], "000001.seg.npz", 0, [("upsert", 5, {1, 2}, 0.5)])
        s2 = seal(world["tmp"], "000002.seg.npz", 0, [("remove", 3)])
        s3 = seal(world["tmp"], "000003.seg.npz", 1, [("upsert", 7, {0, 4}, 0.25)])
        seal(world["tmp"], "000004.seg.npz", 2, [("upsert", 9, {6}, 0.5)])

        async def _main():
            streamer = await start_streamer(world)  # archives before compaction
            streamer.refresh()
            # The leader's own compactor folds and deletes its inputs.
            compact_snapshot(world["leader_snapshot"], [s1, s2])
            os.unlink(s1), os.unlink(s2)
            compact_snapshot(world["leader_snapshot"], [s3])
            os.unlink(s3)
            assert snapshot_epoch(world["leader_snapshot"]) == 2

            applier = follower_applier(
                world, streamer.address, compact_threshold=1
            )
            try:
                stats = await applier.sync_once()
                assert stats["segments_fetched"] == 4
                assert stats["epochs_compacted"] == 2
                assert applier.epoch == 2
                assert stats["overlay_depth"] == 1  # the pending epoch-2 seg
                with open(world["leader_snapshot"], "rb") as f:
                    leader_bytes = f.read()
                with open(world["follower_snapshot"], "rb") as f:
                    follower_bytes = f.read()
                assert follower_bytes == leader_bytes
            finally:
                await applier.close()
                await streamer.stop()

        asyncio.run(_main())

    def test_promote_folds_everything_and_detaches(self, world):
        seg = seal(world["tmp"], "000001.seg.npz", 0, [("upsert", 5, {1, 2}, 0.5)])
        segdir = str(world["tmp"] / "follower-segs")
        os.makedirs(segdir)
        shutil.copyfile(seg, os.path.join(segdir, "000001.seg.npz"))

        async def _main():
            applier = follower_applier(world, NOWHERE)
            try:
                status = await applier.promote()
                assert status["detached"] is True
                assert status["epoch"] == 1
                assert status["overlay_depth"] == 0
                assert snapshot_epoch(world["follower_snapshot"]) == 1
                assert truth(world["follower_snapshot"], 5) == sealed_row(seg, 5)
                with pytest.raises(ReplicationError, match="detached"):
                    await applier.sync_once()
            finally:
                await applier.close()

        asyncio.run(_main())

    def test_cost_model_accumulates_wan_seconds(self, world):
        seal(world["tmp"], "000001.seg.npz", 0, [("upsert", 5, {1}, 0.5)])

        async def _main():
            streamer = await start_streamer(world)
            applier = follower_applier(
                world, streamer.address, cost_model=ReplicationCostModel()
            )
            try:
                await applier.sync_once()
                assert applier.wan_seconds > 0
                assert applier.status()["wan_seconds"] == applier.wan_seconds
            finally:
                await applier.close()
                await streamer.stop()

        asyncio.run(_main())


class TestZeroStaleReads:
    def test_reads_never_regress_across_leader_rollout(self, world):
        """A client that has seen epoch E never reads pre-E state, even
        while the follower is still catching up -- and converges back onto
        the follower once it has."""
        n_owners = 24

        async def _main():
            leader = PPIServer(
                load_postings(world["leader_snapshot"], mmap=True),
                ShardSpec(),
                snapshot_path=world["leader_snapshot"],
                epoch=0,
            )
            await leader.start()
            streamer = await start_streamer(world)
            applier = follower_applier(world, streamer.address)
            follower = ReplicaServer(applier, ShardSpec())
            await follower.start()
            client = LocatorClient(
                servers=[[leader.address, follower.address]],
                retry=RetryPolicy(max_retries=1, timeout_s=2.0),
                cache_size=0,
            )
            try:
                base = {o: await client.query(o) for o in range(n_owners)}
                assert client.fleet_epoch == 0

                # Leader rollout: seal, compact, hot-swap to epoch 1.
                seal(
                    world["tmp"], "000001.seg.npz", 0,
                    [("upsert", o, {(o * 5) % 8, (o * 5 + 1) % 8}, 0.5)
                     for o in range(0, n_owners, 2)],
                )
                streamer.refresh()  # archive before the compactor eats it
                compact_snapshot(
                    world["leader_snapshot"],
                    [str(world["tmp"] / "segments" / "000001.seg.npz")],
                )
                leader.swap_index(
                    load_postings(world["leader_snapshot"], mmap=True), 1,
                    snapshot_path=world["leader_snapshot"],
                )
                fresh = {
                    o: truth(world["leader_snapshot"], o)
                    for o in range(n_owners)
                }
                assert fresh != base

                # Sweep with the follower still at epoch 0.  The moment the
                # client sees epoch 1 its fleet_epoch pins: every later
                # answer must be epoch-1 truth, never the follower's old
                # rows.
                for owner in range(n_owners):
                    answer = await client.query(owner)
                    if client.fleet_epoch >= 1:
                        assert answer == fresh[owner], f"stale read for {owner}"
                assert client.fleet_epoch == 1
                # A client that learned epoch 1 but has never heard from
                # the follower still tries it -- and must *reject* its
                # epoch-0 answer, not serve it.
                client.addr_epochs.pop(follower.address, None)
                for owner in range(n_owners):
                    assert await client.query(owner) == fresh[owner]
                assert client.stale_replica_skips > 0

                # Follower catches up (compacting to the same epoch) and
                # rejoins the read set at epoch 1.
                stats = await applier.sync_once(force_compact=True)
                assert stats["epoch"] == 1
                # A routing refresh is how the client learns a skipped
                # replica has caught up and readmits it.
                assert await client.refresh_routing() is True
                for owner in range(n_owners):
                    assert await client.query(owner) == fresh[owner]
                assert client.addr_epochs.get(follower.address) == 1
            finally:
                await client.close()
                await follower.stop()
                await applier.close()
                await streamer.stop()
                await leader.stop()

        asyncio.run(_main())


def _crash_mid_fetch(leader, segment_dir):
    """Child process: download exactly one chunk, then die by SIGKILL."""

    async def _main():
        client = LocatorClient(
            servers=[tuple(leader)],
            retry=RetryPolicy(max_retries=1, timeout_s=5.0),
            cache_size=0,
        )
        sub = await client.call(tuple(leader), "repl-subscribe", after=None)
        entry = sub["segments"][0]
        chunk = await client.call(
            tuple(leader), "repl-segment", name=entry["name"], offset=0
        )
        assert chunk["eof"] is False, "segment must outsize one chunk"
        part = os.path.join(segment_dir, entry["name"] + ".part")
        with open(part, "wb") as f:
            f.write(decode_chunk(chunk["data"]))
            f.flush()
            os.fsync(f.fileno())
        os.kill(os.getpid(), signal.SIGKILL)

    asyncio.run(_main())


class TestCrashRecovery:
    def test_sigkill_mid_catch_up_resumes_from_the_part_file(self, world):
        seg = seal(
            world["tmp"], "000001.seg.npz", 0,
            [("upsert", o, {o % 8, (o + 3) % 8}, 0.5) for o in range(20)],
        )
        size = os.path.getsize(seg)
        segdir = str(world["tmp"] / "follower-segs")
        os.makedirs(segdir)

        async def _main():
            streamer = await start_streamer(world, chunk_bytes=256)
            assert size > 2 * streamer.chunk_bytes
            proc = multiprocessing.get_context("spawn").Process(
                target=_crash_mid_fetch, args=(streamer.address, segdir)
            )
            proc.start()
            await asyncio.get_running_loop().run_in_executor(None, proc.join)
            assert proc.exitcode == -signal.SIGKILL

            part = os.path.join(segdir, "000001.seg.npz.part")
            assert os.path.exists(part)
            part_size = os.path.getsize(part)
            assert 0 < part_size < size

            # A fresh applier (the restarted follower) resumes the torn
            # download instead of starting over, verifies the crc, and
            # serves the segment as an overlay.
            applier = follower_applier(world, streamer.address)
            try:
                stats = await applier.sync_once()
                assert stats["segments_fetched"] == 1
                assert applier.bytes_fetched == size - part_size
                assert not os.path.exists(part)
                assert applier.serving_index().query(5) == sealed_row(seg, 5)
            finally:
                await applier.close()
                await streamer.stop()

        asyncio.run(_main())
