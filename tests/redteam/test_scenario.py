"""End-to-end campaigns against a real fleet, and scenario plumbing."""

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.redteam import (
    EPSILON_TIERS,
    Scenario,
    load_truth_payload,
    run_attacks,
    run_scenario,
    truth_payload,
)
from repro.redteam.observations import ObservationLog


class TestScenario:
    def test_validation(self):
        with pytest.raises(ModelError):
            Scenario(n_providers=1)
        with pytest.raises(ModelError):
            Scenario(epochs=0)
        with pytest.raises(ModelError):
            Scenario(churn=1.5)
        with pytest.raises(ModelError):
            Scenario(shape="square-wave")
        with pytest.raises(ModelError):
            Scenario(min_true=5, max_true=3)

    def test_shaped_campaign_gets_a_think_time(self):
        assert Scenario(shape="diurnal").think_time_s > 0
        assert Scenario(shape="uniform").think_time_s == 0.0

    def test_tiers_interleave(self):
        sc = Scenario(n_owners=9)
        names = [name for name, _ in EPSILON_TIERS]
        assert [sc.tier_of(j) for j in range(4)] == names + [names[0]]
        assert sc.beta_of(0) == EPSILON_TIERS[0][1]

    def test_truth_history_is_deterministic_and_churns(self):
        sc = Scenario(n_owners=30, epochs=4, churn=0.1, seed=3)
        first, second = sc.truth_history(), sc.truth_history()
        assert first == second
        assert sorted(first) == [0, 1, 2, 3]
        moved = [
            sum(first[e][j] != first[e + 1][j] for j in range(30))
            for e in range(3)
        ]
        assert all(1 <= m <= 3 for m in moved)

    def test_sticky_publication_is_epoch_invariant(self):
        sc = Scenario(n_owners=12, n_providers=16, sticky=True)
        truth = sc.truth_history()[0]
        a = sc.published_dense(truth, epoch=0)
        b = sc.published_dense(truth, epoch=5)
        assert np.array_equal(a, b)

    def test_naive_publication_redraws_noise(self):
        sc = Scenario(n_owners=12, n_providers=16, sticky=False)
        truth = sc.truth_history()[0]
        a = sc.published_dense(truth, epoch=0)
        b = sc.published_dense(truth, epoch=1)
        assert not np.array_equal(a, b)
        # recall is never sacrificed: every true cell is published
        for owner, providers in truth.items():
            for dense in (a, b):
                assert all(dense[p, owner] for p in providers)


class TestTruthPayload:
    def test_roundtrip(self, tmp_path):
        sc = Scenario(n_owners=10, epochs=2, churn=0.1)
        outcome = run_scenario(sc, str(tmp_path))
        payload = truth_payload(outcome)
        truth_by_epoch, tier_map, mode = load_truth_payload(payload)
        assert truth_by_epoch == outcome.truth_by_epoch
        assert tier_map == sc.tier_map()
        assert mode == "sticky"


class TestLiveCampaigns:
    def test_sticky_campaign_is_flat(self, tmp_path):
        sc = Scenario(
            n_owners=24, n_providers=16, epochs=3, churn=0.05,
            sticky=True, seed=1, requests_per_worker=4, linkage_targets=4,
        )
        outcome = run_scenario(sc, str(tmp_path))
        report = outcome.report
        assert report.mode == "sticky"
        assert report.epochs == [0, 1, 2]
        assert report.observed_owners == 24
        assert len(outcome.load_reports) == 3
        assert all(lr.errors == 0 for lr in outcome.load_reports)
        # the tentpole claim: zero drift for stable owners, no false churn
        assert report.degradation_delta == pytest.approx(0.0, abs=1e-9)
        assert report.diff["precision"] == 1.0
        assert report.diff["false_churn_owners"] == []
        # per-ε tiers all surfaced, linkage ran
        assert set(report.per_tier_success) == {"strict", "default", "relaxed"}
        assert report.linkage["n_targets"] == 4

    def test_naive_campaign_degrades(self, tmp_path):
        sc = Scenario(
            n_owners=24, n_providers=16, epochs=3, churn=0.05,
            sticky=False, seed=1, requests_per_worker=4, linkage_targets=0,
        )
        report = run_scenario(sc, str(tmp_path)).report
        assert report.mode == "naive"
        assert report.degradation_delta > 0.05
        curve = [r["stable_confidence"] for r in report.degradation_curve]
        assert curve == sorted(curve)
        assert report.linkage is None

    def test_reload_storm_still_observes_every_epoch(self, tmp_path):
        sc = Scenario(
            n_owners=16, n_providers=16, epochs=3, churn=0.05,
            sticky=True, seed=2, requests_per_worker=4,
            reload_storm=True, shape="burst", linkage_targets=0,
        )
        outcome = run_scenario(sc, str(tmp_path))
        report = outcome.report
        assert report.epochs == [0, 1, 2]
        assert report.observed_owners == 16
        # storm harvests ride through the rollout, so extra observations
        # beyond the canonical one-per-owner-per-epoch are expected
        assert report.n_observations >= 3 * 16
        assert report.degradation_delta == pytest.approx(0.0, abs=1e-9)

    def test_observation_log_persists_and_replays(self, tmp_path):
        obs_path = tmp_path / "campaign.obs"
        sc = Scenario(
            n_owners=12, n_providers=16, epochs=2, churn=0.1,
            seed=4, requests_per_worker=3, linkage_targets=0,
        )
        outcome = run_scenario(
            sc, str(tmp_path), observation_path=str(obs_path)
        )
        log = ObservationLog(str(obs_path))
        try:
            replayed = run_attacks(
                log,
                outcome.truth_by_epoch,
                sc.tier_map(),
                sc.mode_name,
                linkage_targets=0,
            )
        finally:
            log.close()
        assert replayed.to_dict() == outcome.report.to_dict()
