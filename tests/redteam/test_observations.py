"""Observation log: framing, crash recovery, and live harvesting."""

import asyncio
import struct

import numpy as np
import pytest

from repro.core.postings import PostingsIndex
from repro.redteam.observations import (
    LiveObserver,
    Observation,
    ObservationLog,
    ObservationLogError,
)
from repro.serving.client import LocatorClient, RetryPolicy
from repro.serving.server import PPIServer


class TestObservationLog:
    def test_in_memory_append_and_views(self):
        log = ObservationLog()
        log.append(0, 7, [3, 1, 2])
        log.append(1, 7, [1, 2])
        log.append(0, 9, [5])
        assert log.n_records == 3
        assert log.epochs() == [0, 1]
        assert log.owners() == [7, 9]
        by_owner = log.by_owner()
        assert by_owner[7][0] == frozenset({1, 2, 3})
        assert by_owner[7][1] == frozenset({1, 2})
        assert by_owner[9] == {0: frozenset({5})}

    def test_records_are_normalized(self):
        log = ObservationLog()
        log.append(2, 1, (np.int64(4), 0, 4))
        record = log.observations[-1]
        assert isinstance(record, Observation)
        assert record.providers == frozenset({0, 4})
        assert all(isinstance(p, int) for p in record.providers)

    def test_newest_observation_wins_within_epoch(self):
        log = ObservationLog()
        log.append(0, 1, [1, 2])
        log.append(0, 1, [2])
        assert log.by_owner()[1][0] == frozenset({2})

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "campaign.obs"
        with ObservationLog(str(path)) as log:
            log.append(0, 3, [1, 9])
            log.append(4, 3, [9])
        reopened = ObservationLog(str(path))
        assert reopened.n_records == 2
        assert reopened.by_owner()[3] == {
            0: frozenset({1, 9}),
            4: frozenset({9}),
        }
        reopened.close()

    def test_reopen_appends(self, tmp_path):
        path = tmp_path / "campaign.obs"
        with ObservationLog(str(path)) as log:
            log.append(0, 1, [2])
        with ObservationLog(str(path)) as log:
            log.append(1, 1, [2, 3])
            assert log.n_records == 2
        final = ObservationLog(str(path))
        assert final.epochs() == [0, 1]
        final.close()

    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "campaign.obs"
        with ObservationLog(str(path)) as log:
            log.append(0, 1, [2])
            log.append(1, 1, [2, 5])
        intact = path.stat().st_size
        with open(path, "ab") as fh:  # a crash mid-append: half a header
            fh.write(struct.pack(">I", 999))
        repaired = ObservationLog(str(path))
        assert repaired.repaired_bytes > 0
        assert repaired.n_records == 2
        repaired.append(2, 1, [5])
        repaired.close()
        assert path.stat().st_size > intact
        clean = ObservationLog(str(path))
        assert clean.repaired_bytes == 0
        assert clean.n_records == 3
        clean.close()

    def test_corrupt_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.obs"
        path.write_bytes(b"NOTANOBSLOG0000")
        with pytest.raises(ObservationLogError):
            ObservationLog(str(path))

    def test_rejects_negative_ids(self):
        log = ObservationLog()
        with pytest.raises(ObservationLogError):
            log.append(-1, 0, [1])
        with pytest.raises(ObservationLogError):
            log.append(0, -2, [1])


class TestLiveObserver:
    def test_harvest_records_served_epochs(self):
        dense = np.zeros((8, 4), dtype=np.uint8)
        dense[1, 0] = dense[3, 0] = 1
        dense[2, 1] = 1
        next_dense = dense.copy()
        next_dense[5, 1] = 1

        async def body():
            server = await PPIServer(
                PostingsIndex.from_dense(dense)
            ).start()
            client = LocatorClient(
                servers=[server.address],
                cache_size=0,
                retry=RetryPolicy(max_retries=2, timeout_s=2.0),
            )
            log = ObservationLog()
            observer = LiveObserver(client, log)
            try:
                assert await observer.harvest(range(4)) == 4
                server.swap_index(
                    PostingsIndex.from_dense(next_dense), epoch=1
                )
                assert await observer.harvest(range(4)) == 4
            finally:
                await client.close()
                await server.stop()
            return log

        log = asyncio.run(body())
        assert log.epochs() == [0, 1]
        per_epoch = log.by_owner()[1]
        assert per_epoch[0] == frozenset({2})
        assert per_epoch[1] == frozenset({2, 5})
        # epoch tags come from the wire, one response per owner per epoch
        assert log.n_records == 8
