"""Longitudinal attackers over synthetic observation histories."""

import pytest

from repro.redteam import (
    EpochDiffAttacker,
    LinkageAttacker,
    LongitudinalIntersectionAttacker,
    stable_owners,
    synthetic_directory,
)
from repro.redteam.observations import ObservationLog


def log_of(history):
    """history: {epoch: {owner: providers}} -> in-memory log."""
    log = ObservationLog()
    for epoch in sorted(history):
        for owner, providers in history[epoch].items():
            log.append(epoch, owner, providers)
    return log


class TestStableOwners:
    def test_partitions_churned_from_stable(self):
        truth = {
            0: {1: {2, 3}, 2: {5}},
            1: {1: {2, 3}, 2: {6}},
        }
        assert stable_owners(truth) == {1}

    def test_empty_history(self):
        assert stable_owners({}) == set()


class TestLongitudinalIntersection:
    def test_survivors_intersect_across_epochs(self):
        log = log_of({
            0: {7: [1, 2, 3, 4]},
            1: {7: [2, 3, 4]},
            2: {7: [2, 4, 9]},
        })
        attacker = LongitudinalIntersectionAttacker(log)
        assert attacker.survivors()[7] == frozenset({2, 4})
        # upto_epoch replays the attacker's knowledge at that point in time
        assert attacker.survivors(upto_epoch=1)[7] == frozenset({2, 3, 4})

    def test_confidence_is_claim_success_probability(self):
        log = log_of({0: {1: [2, 3, 4, 5]}})
        result = LongitudinalIntersectionAttacker(log).attack({1: {2, 3}})
        assert result.confidences[1] == pytest.approx(0.5)
        assert result.anonymity_sizes[1] == 4
        assert result.mean_confidence == pytest.approx(0.5)

    def test_sticky_history_gives_flat_curve(self):
        row = [1, 5, 8, 9]
        truth_by_epoch = {e: {0: {1, 5}} for e in range(4)}
        log = log_of({e: {0: row} for e in range(4)})
        curve = LongitudinalIntersectionAttacker(log).degradation_curve(
            truth_by_epoch
        )
        assert [r["versions"] for r in curve] == [1, 2, 3, 4]
        stable = [r["stable_confidence"] for r in curve]
        assert stable == [pytest.approx(0.5)] * 4

    def test_fresh_noise_history_degrades(self):
        # noise flaps epoch to epoch; only the truth {1} survives them all
        log = log_of({
            0: {0: [1, 2, 3]},
            1: {0: [1, 4, 5]},
            2: {0: [1, 6]},
        })
        truth_by_epoch = {e: {0: {1}} for e in range(3)}
        curve = LongitudinalIntersectionAttacker(log).degradation_curve(
            truth_by_epoch
        )
        stable = [r["stable_confidence"] for r in curve]
        assert stable[0] == pytest.approx(1 / 3)
        assert stable[-1] == pytest.approx(1.0)
        assert stable == sorted(stable)  # monotone climb

    def test_empty_log(self):
        result = LongitudinalIntersectionAttacker(ObservationLog()).attack({})
        assert result.survivors == {}
        assert result.mean_confidence == 0.0


class TestEpochDiff:
    def test_sticky_no_churn_claims_nothing(self):
        log = log_of({e: {0: [1, 2], 1: [4]} for e in range(3)})
        truth = {e: {0: {1}, 1: {4}} for e in range(3)}
        result = EpochDiffAttacker(log).attack(truth)
        assert result.pairs == 4
        assert result.claimed_bits == 0
        assert result.precision == 1.0  # vacuous: claimed nothing
        assert result.churned_owners == []

    def test_real_churn_is_read_exactly(self):
        log = log_of({
            0: {0: [1, 2], 1: [7]},
            1: {0: [1, 3], 1: [7]},
        })
        truth = {
            0: {0: {1, 2}, 1: {7}},
            1: {0: {1, 3}, 1: {7}},
        }
        result = EpochDiffAttacker(log).attack(truth)
        assert result.claimed_bits == 2  # provider 2 left, provider 3 joined
        assert result.true_bits == 2
        assert result.precision == 1.0
        assert result.churned_owners == [0]
        assert result.false_churn_owners == []

    def test_flapping_noise_floods_the_diff(self):
        log = log_of({
            0: {0: [1, 2]},
            1: {0: [1, 5]},
        })
        truth = {e: {0: {1}} for e in range(2)}
        result = EpochDiffAttacker(log).attack(truth)
        assert result.claimed_bits == 2
        assert result.true_bits == 0
        assert result.precision == 0.0
        assert result.false_churn_owners == [0]


class TestLinkage:
    def test_dirty_records_link_and_claim(self):
        owners = [0, 1, 2, 3]
        log = log_of({0: {o: [o, o + 10] for o in owners}})
        directory = synthetic_directory(owners)
        # the attacker's own copies: a truncation typo on the first name
        targets = []
        for o in owners[:2]:
            fields = dict(directory[o])
            fields["first_name"] = fields["first_name"][:-1]
            targets.append(fields)
        truth = {o: {o} for o in owners}
        result = LinkageAttacker(log).attack(
            targets, directory, truth=truth, true_owners=owners[:2]
        )
        assert result.n_targets == 2
        assert result.linked == 2
        assert result.links == {0: 0, 1: 1}
        assert result.linkage_precision == 1.0
        # each linked owner's latest set has 2 candidates, 1 true
        assert result.membership_confidence == pytest.approx(0.5)

    def test_unrelated_records_do_not_link(self):
        owners = [0, 1]
        log = log_of({0: {o: [o] for o in owners}})
        directory = synthetic_directory(owners)
        stranger = {
            "first_name": "zzzzz",
            "last_name": "qqqqq",
            "date_of_birth": "1900-01-01",
            "city": "nowhere",
        }
        result = LinkageAttacker(log).attack([stranger], directory)
        assert result.linked == 0
        assert result.membership_confidence == 0.0

    def test_directory_is_deterministic(self):
        assert synthetic_directory(range(5)) == synthetic_directory(range(5))
