"""The ``redteam run|replay|report`` command group, end to end."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def campaign_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("campaign")
    code = main([
        "redteam", "run",
        "--out", str(out),
        "--owners", "20",
        "--providers", "16",
        "--epochs", "2",
        "--churn", "0.1",
        "--requests", "3",
        "--linkage-targets", "0",
        "--seed", "5",
    ])
    assert code == 0
    return out


class TestRun:
    def test_artifacts_written(self, campaign_dir, capsys):
        for name in ("observations.obs", "truth.json", "report.json"):
            assert (campaign_dir / name).exists(), name
        assert list(campaign_dir.glob("snapshots/epoch_*.npz"))

    def test_report_contents(self, campaign_dir):
        report = json.loads((campaign_dir / "report.json").read_text())
        assert report["mode"] == "sticky"
        assert report["epochs"] == [0, 1]
        assert report["observed_owners"] == 20
        assert len(report["degradation_curve"]) == 2

    def test_truth_contents(self, campaign_dir):
        truth = json.loads((campaign_dir / "truth.json").read_text())
        assert truth["mode"] == "sticky"
        assert set(truth["truth_by_epoch"]) == {"0", "1"}
        assert len(truth["tiers"]) == 20


class TestReplay:
    def test_replay_recomputes_the_same_report(self, campaign_dir, tmp_path):
        replayed_path = tmp_path / "replayed.json"
        code = main([
            "redteam", "replay",
            "--observations", str(campaign_dir / "observations.obs"),
            "--truth", str(campaign_dir / "truth.json"),
            "--linkage-targets", "0",
            "--json", str(replayed_path),
        ])
        assert code == 0
        original = json.loads((campaign_dir / "report.json").read_text())
        replayed = json.loads(replayed_path.read_text())
        assert replayed == original

    def test_missing_truth_errors(self, campaign_dir, capsys):
        code = main([
            "redteam", "replay",
            "--observations", str(campaign_dir / "observations.obs"),
            "--truth", str(campaign_dir / "no-such-truth.json"),
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestReport:
    def test_pretty_prints_saved_report(self, campaign_dir, capsys):
        code = main([
            "redteam", "report",
            "--report", str(campaign_dir / "report.json"),
        ])
        assert code == 0
        shown = capsys.readouterr().out
        assert "republication   sticky" in shown
        assert "degradation" in shown

    def test_run_prints_load_lines(self, campaign_dir):
        # the run fixture already printed; re-running report is cheap and
        # the run artifacts above prove the load phase executed
        report = json.loads((campaign_dir / "report.json").read_text())
        assert report["n_observations"] >= 40
