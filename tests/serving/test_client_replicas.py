"""Client-side replica routing: rendezvous affinity, read-your-epoch
failover, and routing-table refresh under replica sets.

Covers the cases a geo-replicated read tier adds on top of plain shard
routing: a dead replica fails over without moving other owners, a replica
still catching up is skipped (and its answers rejected) once the client
has seen a newer epoch, and ``refresh_routing`` stays correct when run
concurrently while part of the fleet is down.
"""

import asyncio

import pytest

from repro.serving import LocatorClient, PPIServer, RetryPolicy, ShardSpec
from repro.serving.client import TransportError

FAST = RetryPolicy(max_retries=1, timeout_s=0.5, base_delay_s=0.005)
N_OWNERS = 20


def make_client(servers, **kwargs):
    kwargs.setdefault("retry", FAST)
    kwargs.setdefault("cache_size", 0)
    return LocatorClient(servers=servers, **kwargs)


async def start_server(index, shard=0, n_shards=1, epoch=0) -> PPIServer:
    server = PPIServer(index, ShardSpec(shard, n_shards), epoch=epoch)
    await server.start()
    return server


class TestRendezvous:
    REPLICAS = [("10.0.0.1", 7000), ("10.0.0.2", 7000), ("10.0.0.3", 7000)]

    def test_affinity_is_deterministic_and_spread(self):
        client = make_client([self.REPLICAS])
        assignment = {o: client.server_for(o) for o in range(200)}
        again = {o: client.server_for(o) for o in range(200)}
        assert assignment == again
        # All three replicas carry some owners.
        assert set(assignment.values()) == set(self.REPLICAS)

    def test_removing_a_replica_moves_only_its_owners(self):
        full = make_client([self.REPLICAS])
        shrunk = make_client([self.REPLICAS[:2]])
        for owner in range(200):
            before = full.server_for(owner)
            after = shrunk.server_for(owner)
            if before != self.REPLICAS[2]:
                assert after == before  # survivors keep their owners
            else:
                assert after in self.REPLICAS[:2]


class TestFailover:
    def test_dead_first_choice_fails_over_to_survivor(self, served_network):
        _, index = served_network

        async def _main():
            live = await start_server(index)
            dead = await start_server(index)
            await dead.stop()  # port now refuses connections
            client = make_client([[dead.address, live.address]])
            try:
                # An owner whose rendezvous first choice is the dead node.
                owner = next(
                    o for o in range(N_OWNERS)
                    if client.server_for(o) == dead.address
                )
                direct = await client.call(live.address, "query", owner=owner)
                assert await client.query(owner) == direct["providers"]
            finally:
                await client.close()
                await live.stop()

        asyncio.run(_main())

    def test_behind_replica_answers_are_rejected(self, served_network):
        _, index = served_network

        async def _main():
            ahead = await start_server(index, epoch=1)
            behind = await start_server(index, epoch=0)
            client = make_client([[ahead.address, behind.address]])
            try:
                # Learn epoch 1 from whichever owner routes to the fresh
                # node, then sweep: every answer must carry epoch >= 1.
                for owner in range(N_OWNERS):
                    await client.query(owner)
                assert client.fleet_epoch == 1
                client.addr_epochs.pop(behind.address, None)
                skips_before = client.stale_replica_skips
                for owner in range(N_OWNERS):
                    await client.query(owner)
                assert client.stale_replica_skips > skips_before
                assert client.addr_epochs[behind.address] == 0
                # With its lag recorded, the behind node is not routed to.
                assert all(
                    client.server_for(o) == ahead.address
                    for o in range(N_OWNERS)
                )
            finally:
                await client.close()
                await behind.stop()
                await ahead.stop()

        asyncio.run(_main())

    def test_no_caught_up_replica_is_a_typed_failure(self, served_network):
        _, index = served_network

        async def _main():
            a = await start_server(index, epoch=0)
            b = await start_server(index, epoch=0)
            client = make_client([[a.address, b.address]])
            try:
                client.fleet_epoch = 5  # learned elsewhere; nobody has it
                with pytest.raises(TransportError, match="caught up"):
                    await client.query(0)
                assert client.stale_replica_skips == 2  # both were tried
            finally:
                await client.close()
                await a.stop()
                await b.stop()

        asyncio.run(_main())


class TestRoutingRefresh:
    async def _fleet(self, index):
        """Two shards, two replicas each."""
        servers = [
            await start_server(index, shard=s, n_shards=2)
            for s in (0, 0, 1, 1)
        ]
        sets = [
            [servers[0].address, servers[1].address],
            [servers[2].address, servers[3].address],
        ]
        return servers, sets

    def test_concurrent_refresh_with_mid_refresh_failover(self, served_network):
        _, index = served_network

        async def _main():
            servers, sets = await self._fleet(index)
            client = make_client(sets)
            try:
                await servers[1].stop()  # one shard-0 replica dies
                results = await asyncio.gather(
                    client.refresh_routing(), client.refresh_routing()
                )
                assert results == [True, True]
                assert client.routing_refreshes == 2
                dead = servers[1].address
                assert all(
                    dead not in rs for rs in client.replica_sets
                )
                assert client.replica_sets[0] == [servers[0].address]
                assert set(client.replica_sets[1]) == set(sets[1])
                # The rebuilt table still answers for every owner.
                for owner in range(N_OWNERS):
                    assert await client.query(owner) is not None
            finally:
                await client.close()
                for s in servers:
                    if s.address != servers[1].address:
                        await s.stop()

        asyncio.run(_main())

    def test_refresh_keeps_old_table_when_a_shard_is_dark(self, served_network):
        _, index = served_network

        async def _main():
            servers, sets = await self._fleet(index)
            client = make_client(sets)
            try:
                await servers[2].stop()
                await servers[3].stop()  # shard 1 fully dark
                assert await client.refresh_routing() is False
                assert client.replica_sets == sets  # untouched
                assert client.routing_refreshes == 0
            finally:
                await client.close()
                await servers[0].stop()
                await servers[1].stop()

        asyncio.run(_main())

    def test_wrong_shard_reroute_skips_behind_replica(self, served_network):
        """A misrouted query recovers via refresh, and the retried shard
        call still honors read-your-epoch against a lagging replica."""
        _, index = served_network

        async def _main():
            fresh0 = await start_server(index, shard=0, n_shards=2, epoch=1)
            behind0 = await start_server(index, shard=0, n_shards=2, epoch=0)
            s1a = await start_server(index, shard=1, n_shards=2, epoch=1)
            s1b = await start_server(index, shard=1, n_shards=2, epoch=1)
            servers = [fresh0, behind0, s1a, s1b]
            # Shard order swapped: owner 2k dials shard-1 servers first.
            client = make_client([
                [s1a.address, s1b.address],
                [fresh0.address, behind0.address],
            ])
            try:
                client.fleet_epoch = 1  # as learned from a prior session
                shard0_set = [fresh0.address, behind0.address]
                owner = next(
                    o for o in range(0, N_OWNERS, 2)
                    if client._replica_order(o, shard0_set)[0] == behind0.address
                )
                direct = await client.call(fresh0.address, "query", owner=owner)
                assert await client.query(owner) == direct["providers"]
                assert client.wrong_shard_reroutes == 1
                assert client.routing_refreshes == 1
                # The refresh itself learned behind0's lag from its info
                # answer, so the retried shard call skipped it upfront --
                # rendezvous preference notwithstanding.
                assert client.addr_epochs[behind0.address] == 0
                assert client.server_for(owner) == fresh0.address
                assert client.replica_sets[0] == shard0_set or set(
                    client.replica_sets[0]
                ) == set(shard0_set)
            finally:
                await client.close()
                for s in servers:
                    await s.stop()

        asyncio.run(_main())
