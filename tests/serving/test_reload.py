"""Hot-swap (``reload``) tests: epoch coherence end to end.

The regression at the heart of this file: a query that straddles a reload
must never be answered with pre-swap bytes.  The server swaps index, epoch
and pre-encoded response cache in one event-loop step, and every response
carries its epoch -- so the test can assert, for every response observed
under concurrent reloads, that the provider list is exactly the one its
epoch published.
"""

import asyncio
import os

import numpy as np
import pytest

from repro.core.index import PPIIndex
from repro.core.postings import PostingsIndex
from repro.serving.client import LocatorClient, RetryPolicy
from repro.serving.protocol import VERB_QUERY_BATCH, VERB_RELOAD, RemoteError
from repro.serving.server import PPIServer
from repro.serving.snapshot import save_snapshot

N_PROVIDERS = 8
N_OWNERS = 10


def index_a() -> PPIIndex:
    """Epoch-0 truth: owner j is published at even providers <= j."""
    matrix = np.zeros((N_PROVIDERS, N_OWNERS), dtype=np.uint8)
    for j in range(N_OWNERS):
        matrix[: j % N_PROVIDERS + 1 : 2, j] = 1
    return PPIIndex(matrix)


def index_b() -> PPIIndex:
    """Epoch-1 truth: complementary rows, so A and B never agree."""
    return PPIIndex(1 - index_a().matrix)


@pytest.fixture
def snapshots(tmp_path):
    a, b = str(tmp_path / "a.npz"), str(tmp_path / "b.npz")
    save_snapshot(index_a(), a, format_version=3, epoch=0)
    save_snapshot(index_b(), b, format_version=3, epoch=1)
    return a, b


def make_client(server, **kwargs) -> LocatorClient:
    kwargs.setdefault(
        "retry", RetryPolicy(max_retries=1, timeout_s=2.0, base_delay_s=0.005)
    )
    return LocatorClient(servers=[server.address], **kwargs)


class TestReloadVerb:
    def test_reload_swaps_index_epoch_and_counters(self, snapshots):
        path_a, path_b = snapshots

        async def body():
            server = await PPIServer(index_a(), snapshot_path=path_a).start()
            client = make_client(server)
            try:
                assert await client.query(3) == index_a().query(3)
                response = await client.call(
                    server.address, VERB_RELOAD, snapshot=path_b
                )
                assert response["epoch"] == 1
                assert server.epoch == 1
                assert server.snapshot_path == path_b
                stats = await client.stats(server.address)
                assert stats["counters"]["reloads_total"] == 1
                assert stats["gauges"]["epoch"] == 1.0
                # queries_served survived the swap (monotone counters).
                assert stats["counters"]["queries_served"] >= 1
            finally:
                await client.close()
                await server.stop()

        asyncio.run(body())

    def test_counters_accumulate_across_reloads(self, snapshots):
        """A reload swaps the index and response cache, never the metrics:
        monotone counters keep counting, and the emptied response cache
        shows up as a fresh miss for a previously hot owner."""
        path_a, path_b = snapshots

        async def body():
            server = await PPIServer(index_a(), snapshot_path=path_a).start()
            client = make_client(server, cache_size=0)
            try:
                await client.query(3)
                await client.query(3)  # served from the response cache
                stats = await client.stats(server.address)
                assert stats["counters"]["queries_served"] == 2
                assert stats["counters"]["response_cache_hits_total"] == 1
                assert stats["counters"]["response_cache_misses_total"] == 1

                await client.call(server.address, VERB_RELOAD, snapshot=path_b)
                await client.query(3)  # cache was dropped: a miss again
                stats = await client.stats(server.address)
                assert stats["counters"]["queries_served"] == 3
                assert stats["counters"]["response_cache_misses_total"] == 2
                assert stats["counters"]["reloads_total"] == 1
            finally:
                await client.close()
                await server.stop()

        asyncio.run(body())

    def test_reload_without_a_path_is_a_bad_request(self):
        async def body():
            server = await PPIServer(index_a()).start()  # no snapshot_path
            client = make_client(server)
            try:
                with pytest.raises(RemoteError, match="no snapshot path"):
                    await client.call(server.address, VERB_RELOAD)
            finally:
                await client.close()
                await server.stop()

        asyncio.run(body())

    def test_reload_defaults_to_the_boot_snapshot(self, snapshots):
        path_a, _ = snapshots

        async def body():
            server = await PPIServer(
                index_a(), snapshot_path=path_a, epoch=0
            ).start()
            client = make_client(server)
            try:
                response = await client.call(server.address, VERB_RELOAD)
                assert response["snapshot"] == path_a
                assert response["epoch"] == 0  # same epoch: allowed, not stale
            finally:
                await client.close()
                await server.stop()

        asyncio.run(body())

    def test_stale_snapshot_is_refused(self, snapshots):
        path_a, path_b = snapshots

        async def body():
            server = await PPIServer(index_b(), epoch=1).start()
            client = make_client(server)
            try:
                with pytest.raises(RemoteError, match="older than serving epoch"):
                    await client.call(server.address, VERB_RELOAD, snapshot=path_a)
                assert server.epoch == 1  # swap did not happen
            finally:
                await client.close()
                await server.stop()

        asyncio.run(body())


class TestStraddleRegression:
    @pytest.mark.parametrize("protocol", ["v1", "v2"])
    def test_no_response_ever_mixes_epochs_under_concurrent_reload(
        self, snapshots, protocol
    ):
        """Hammer one owner while the index hot-swaps underneath.

        Every single response must be self-consistent: epoch 0 with A's
        row, or epoch >= 1 with B's row.  A pre-swap payload served after
        the swap (the stale-response-cache bug) fails the assertion.
        Parametrized over the wire protocol: the v2 slab cache is swapped
        in the same event-loop step as the v1 payload cache, so the
        invariant must hold identically on both framings.
        """
        path_a, path_b = snapshots
        rows_a = {j: index_a().query(j) for j in range(N_OWNERS)}
        rows_b = {j: index_b().query(j) for j in range(N_OWNERS)}

        async def body():
            server = await PPIServer(index_a(), snapshot_path=path_a).start()
            client = make_client(server, protocol=protocol)
            observed = []
            stop = asyncio.Event()

            async def hammer(owner_id: int):
                while not stop.is_set():
                    response = await client.call(
                        server.address, "query", owner=owner_id
                    )
                    observed.append(
                        (owner_id, response["epoch"], response["providers"])
                    )

            try:
                tasks = [asyncio.ensure_future(hammer(j)) for j in range(4)]
                await asyncio.sleep(0.05)  # prime the pre-swap response cache
                await client.call(server.address, VERB_RELOAD, snapshot=path_b)
                await asyncio.sleep(0.05)  # keep querying post-swap
                stop.set()
                await asyncio.gather(*tasks)
            finally:
                await client.close()
                await server.stop()

            assert observed, "the hammer tasks never got a response in"
            epochs = {epoch for _, epoch, _ in observed}
            assert epochs == {0, 1}, "load did not straddle the reload"
            for owner_id, epoch, providers in observed:
                expected = rows_a[owner_id] if epoch == 0 else rows_b[owner_id]
                assert providers == expected, (
                    f"epoch-{epoch} response for owner {owner_id} carried "
                    f"the other epoch's bytes"
                )

        asyncio.run(body())

    @pytest.mark.parametrize("protocol", ["v1", "v2"])
    def test_batch_responses_are_epoch_consistent_too(self, snapshots, protocol):
        path_a, path_b = snapshots

        async def body():
            server = await PPIServer(index_a(), snapshot_path=path_a).start()
            client = make_client(server, protocol=protocol)
            try:
                before = await client.call(
                    server.address, VERB_QUERY_BATCH, owners=[1, 3]
                )
                assert before["epoch"] == 0
                await client.call(server.address, VERB_RELOAD, snapshot=path_b)
                after = await client.call(
                    server.address, VERB_QUERY_BATCH, owners=[1, 3]
                )
                assert after["epoch"] == 1
                assert after["results"]["1"] == index_b().query(1)
            finally:
                await client.close()
                await server.stop()

        asyncio.run(body())


class TestClientCacheInvalidation:
    def test_first_newer_epoch_response_invalidates_older_entries(
        self, snapshots
    ):
        path_a, path_b = snapshots

        async def body():
            server = await PPIServer(index_a(), snapshot_path=path_a).start()
            client = make_client(server)
            try:
                assert await client.query(2) == index_a().query(2)
                assert await client.query(2) == index_a().query(2)  # cache hit
                assert client.cache.hits == 1

                await client.call(server.address, VERB_RELOAD, snapshot=path_b)
                # A different owner's fetch carries epoch 1 -> high-water
                # mark moves, every epoch-0 entry becomes a miss.
                assert await client.query(5) == index_b().query(5)
                assert client.fleet_epoch == 1
                assert client.epoch_invalidations == 1
                assert await client.query(2) == index_b().query(2)
            finally:
                await client.close()
                await server.stop()

        asyncio.run(body())

    def test_batch_entries_are_epoch_tagged_as_well(self, snapshots):
        path_a, path_b = snapshots

        async def body():
            server = await PPIServer(index_a(), snapshot_path=path_a).start()
            client = make_client(server)
            try:
                await client.query_batch([1, 2, 3])
                await client.call(server.address, VERB_RELOAD, snapshot=path_b)
                await client.query(4)  # observe epoch 1
                refreshed = await client.query_batch([1, 2, 3])
                assert refreshed == {j: index_b().query(j) for j in (1, 2, 3)}
            finally:
                await client.close()
                await server.stop()

        asyncio.run(body())


class TestFdLifetime:
    def test_reload_loop_leaks_no_file_descriptors(self, snapshots):
        """Each swap must release the previous snapshot's mmap + fd."""
        path_a, _ = snapshots

        async def body():
            server = await PPIServer(index_a(), snapshot_path=path_a).start()
            client = make_client(server)
            try:
                # One warm-up swap so lazily created executor threads and
                # pool connections are already accounted for.
                await client.call(server.address, VERB_RELOAD)
                fds_before = len(os.listdir("/proc/self/fd"))
                for _ in range(30):
                    await client.call(server.address, VERB_RELOAD)
                fds_after = len(os.listdir("/proc/self/fd"))
            finally:
                await client.close()
                await server.stop()
            assert fds_after - fds_before <= 2, (
                f"reload loop leaked {fds_after - fds_before} fds"
            )
            assert isinstance(server.store.index, PostingsIndex)

        asyncio.run(body())

    def test_release_closes_the_mmap_and_is_idempotent(self, snapshots):
        from repro.serving.snapshot import load_postings

        path_a, _ = snapshots
        postings = load_postings(path_a, mmap=True)
        assert postings.query(1) == index_a().query(1)
        postings.release()
        postings.release()  # second call is a no-op, not an error
        assert postings.n_owners == 0  # buffers dropped
