"""Optional uvloop gating and SO_REUSEPORT accept sharing.

uvloop is an optional native dependency the test image may or may not
carry, so both sides of the gate are exercised: the graceful-fallback path
directly (when absent), and the install path through a stub policy module.
The reuse-port tests bind two real servers to one (host, port) and check
both answer -- the kernel-level accept sharding the replicated fleet
builds on.
"""

import asyncio
import socket
import sys
import types

import pytest

from repro.serving import (
    PPIServer,
    install_uvloop,
    reuse_port_supported,
    uvloop_available,
)
from repro.serving.client import LocatorClient, RetryPolicy
from repro.serving.fleet import FleetSupervisor

FAST_RETRY = RetryPolicy(max_retries=0, timeout_s=0.5)


def run(coro):
    return asyncio.run(coro)


class TestUvloopGate:
    def test_available_matches_a_direct_import(self):
        try:
            import uvloop  # noqa: F401

            importable = True
        except ImportError:
            importable = False
        assert uvloop_available() is importable

    def test_graceful_fallback_when_missing(self):
        if uvloop_available():
            pytest.skip("uvloop installed; fallback path not reachable")
        assert install_uvloop() is False
        with pytest.raises(ImportError):
            install_uvloop(strict=True)

    def test_install_sets_the_policy_and_is_idempotent(self, monkeypatch):
        class StubPolicy(asyncio.DefaultEventLoopPolicy):
            pass

        stub = types.ModuleType("uvloop")
        stub.EventLoopPolicy = StubPolicy
        monkeypatch.setitem(sys.modules, "uvloop", stub)
        old_policy = asyncio.get_event_loop_policy()
        try:
            assert uvloop_available() is True
            assert install_uvloop() is True
            policy = asyncio.get_event_loop_policy()
            assert isinstance(policy, StubPolicy)
            assert install_uvloop() is True  # no-op, same policy object
            assert asyncio.get_event_loop_policy() is policy
        finally:
            asyncio.set_event_loop_policy(old_policy)

    def test_reuse_port_supported_matches_the_platform(self):
        assert reuse_port_supported() is hasattr(socket, "SO_REUSEPORT")


class TestReusePortListeners:
    def test_rejected_where_unsupported(self, monkeypatch, served_network):
        _, index = served_network
        monkeypatch.setattr(
            "repro.serving.server.reuse_port_supported", lambda: False
        )
        with pytest.raises(ValueError, match="SO_REUSEPORT"):
            PPIServer(index, reuse_port=True)

    @pytest.mark.skipif(
        not reuse_port_supported(), reason="platform lacks SO_REUSEPORT"
    )
    def test_two_servers_share_one_port(self, served_network):
        _, index = served_network

        async def main():
            first = await PPIServer(index, reuse_port=True).start()
            host, port = first.address
            assert first.describe()["reuse_port"] is True
            second = await PPIServer(
                index, host=host, port=port, reuse_port=True
            ).start()
            assert second.address == first.address
            client = LocatorClient(
                [first.address], retry=FAST_RETRY, cache_size=0
            )
            try:
                # The kernel load-balances accepts between the two
                # listeners; every query answers correctly either way.
                for owner in range(index.n_owners):
                    assert await client.query(owner) == index.query(owner)
            finally:
                await client.close()
                await second.stop()
                await first.stop()

        run(main())

    def test_plain_server_still_refuses_a_taken_port(self, served_network):
        _, index = served_network

        async def main():
            first = await PPIServer(index).start()
            host, port = first.address
            try:
                with pytest.raises(OSError):
                    await PPIServer(index, host=host, port=port).start()
            finally:
                await first.stop()

        run(main())


class TestFleetAcceptProcs:
    def test_accept_procs_validated(self, tmp_path):
        with pytest.raises(ValueError, match="accept_procs"):
            FleetSupervisor(str(tmp_path / "s.npz"), 1, accept_procs=0)

    def test_accept_procs_need_reuseport_support(self, monkeypatch, tmp_path):
        monkeypatch.setattr(
            "repro.serving.fleet.reuse_port_supported", lambda: False
        )
        with pytest.raises(ValueError, match="SO_REUSEPORT"):
            FleetSupervisor(str(tmp_path / "s.npz"), 1, accept_procs=2)

    def test_worker_plan_replicates_each_shard(self, tmp_path):
        supervisor = FleetSupervisor(
            str(tmp_path / "s.npz"), 2, accept_procs=3
        )
        specs = [w.spec for w in supervisor._workers]
        assert len(specs) == 6
        assert [(s.shard_id, s.replica) for s in specs] == [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2),
        ]
        assert all(s.reuse_port for s in specs)
        # Replicas of one shard share its port; addresses list one each.
        by_shard = {}
        for s in specs:
            by_shard.setdefault(s.shard_id, set()).add(s.port)
        assert all(len(ports) == 1 for ports in by_shard.values())
        assert len(supervisor.addresses) == 2

    def test_single_accept_proc_keeps_plain_listeners(self, tmp_path):
        supervisor = FleetSupervisor(str(tmp_path / "s.npz"), 2)
        specs = [w.spec for w in supervisor._workers]
        assert len(specs) == 2
        assert not any(s.reuse_port for s in specs)
        assert not any(s.uvloop for s in specs)
