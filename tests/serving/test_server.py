"""PPIServer behavior over real sockets: verbs, sharding, backpressure,
shutdown."""

import asyncio

import pytest

from repro.serving import (
    IndexShardStore,
    PPIServer,
    RemoteError,
    ShardSpec,
    WrongShard,
    shard_of,
)
from repro.serving.client import LocatorClient, RetryPolicy

FAST_RETRY = RetryPolicy(max_retries=0, timeout_s=0.5)


def run(coro):
    return asyncio.run(coro)


class TestShardSpec:
    def test_routing_function(self):
        assert shard_of(10, 1) == 0
        assert shard_of(10, 4) == 2
        with pytest.raises(ValueError):
            shard_of(1, 0)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            ShardSpec(2, 2)
        with pytest.raises(ValueError):
            ShardSpec(-1, 2)

    def test_store_refuses_foreign_owner(self, served_network):
        _, index = served_network
        store = IndexShardStore(index, ShardSpec(0, 2))
        assert store.lookup(2) == index.query(2)
        with pytest.raises(WrongShard) as err:
            store.lookup(3)
        assert err.value.expected_shard == 1


class TestVerbs:
    def test_query_matches_index(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index).start()
            client = LocatorClient([server.address], retry=FAST_RETRY, cache_size=0)
            try:
                for owner in range(index.n_owners):
                    assert await client.query(owner) == index.query(owner)
            finally:
                await client.close()
                await server.stop()

        run(main())

    def test_batch_query_and_shard_routing(self, served_network):
        _, index = served_network

        async def main():
            servers = [
                await PPIServer(index, ShardSpec(i, 2)).start() for i in range(2)
            ]
            client = LocatorClient(
                [s.address for s in servers], retry=FAST_RETRY, cache_size=0
            )
            try:
                owners = list(range(index.n_owners))
                results = await client.query_batch(owners)
                assert set(results) == set(owners)
                for owner in owners:
                    assert results[owner] == index.query(owner)
                # Each shard only ever saw its own owners.
                for i, server in enumerate(servers):
                    served = server.metrics.counter("queries_served").value
                    assert served == sum(1 for o in owners if o % 2 == i)
            finally:
                await client.close()
                for s in servers:
                    await s.stop()

        run(main())

    def test_wrong_shard_error_names_the_right_shard(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index, ShardSpec(0, 2)).start()
            client = LocatorClient([server.address], retry=FAST_RETRY, cache_size=0)
            try:
                with pytest.raises(RemoteError) as err:
                    # Client thinks there is one shard; owner 3 lives on shard 1.
                    await client.query(3)
                assert err.value.code == "wrong-shard"
                assert err.value.detail["shard"] == 1
            finally:
                await client.close()
                await server.stop()

        run(main())

    def test_unknown_owner_is_bad_request(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index).start()
            client = LocatorClient([server.address], retry=FAST_RETRY, cache_size=0)
            try:
                with pytest.raises(RemoteError) as err:
                    await client.query(index.n_owners + 5)
                assert err.value.code == "bad-request"
                with pytest.raises(RemoteError) as err:
                    await client.call(server.address, "query", owner="zero")
                assert err.value.code == "bad-request"
            finally:
                await client.close()
                await server.stop()

        run(main())

    def test_unknown_verb(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index).start()
            client = LocatorClient([server.address], retry=FAST_RETRY)
            try:
                with pytest.raises(RemoteError) as err:
                    await client.call(server.address, "frobnicate")
                assert err.value.code == "unknown-verb"
            finally:
                await client.close()
                await server.stop()

        run(main())

    def test_stats_and_info(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index, ShardSpec(0, 1)).start()
            client = LocatorClient([server.address], retry=FAST_RETRY, cache_size=0)
            try:
                await client.query(0)
                await client.query(1)
                stats = await client.stats(server.address)
                assert stats["counters"]["queries_served"] == 2
                assert stats["counters"]["requests_query_total"] == 2
                assert stats["histograms"]["request_latency_s"]["count"] >= 2
                info = await client.info(server.address)
                assert info["role"] == "ppi-server"
                assert info["n_owners"] == index.n_owners
                assert info["n_shards"] == 1
            finally:
                await client.close()
                await server.stop()

        run(main())


class TestRuntime:
    def test_backpressure_bound_still_serves_all(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index, max_inflight=1).start()
            client = LocatorClient(
                [server.address], retry=FAST_RETRY, cache_size=0,
                max_idle_per_host=32,
            )
            try:
                owners = [o % index.n_owners for o in range(50)]
                results = await asyncio.gather(
                    *(client.query(o) for o in owners)
                )
                assert all(r == index.query(o) for r, o in zip(results, owners))
                assert server.metrics.counter("queries_served").value == 50
            finally:
                await client.close()
                await server.stop()

        run(main())

    def test_graceful_stop_refuses_new_connections(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index).start()
            addr = server.address
            client = LocatorClient([addr], retry=FAST_RETRY, cache_size=0)
            try:
                assert await client.ping(addr)
                await server.stop()
                fresh = LocatorClient([addr], retry=FAST_RETRY, cache_size=0)
                try:
                    assert not await fresh.ping(addr)
                finally:
                    await fresh.close()
            finally:
                await client.close()

        run(main())

    def test_double_start_rejected(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index).start()
            try:
                with pytest.raises(RuntimeError):
                    await server.start()
            finally:
                await server.stop()

        run(main())

    def test_garbled_frame_answered_then_disconnected(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index).start()
            try:
                reader, writer = await asyncio.open_connection(*server.address)
                writer.write(b"\x00\x00\x00\x04oops")
                await writer.drain()
                from repro.serving.protocol import read_frame

                response = await asyncio.wait_for(read_frame(reader), timeout=1.0)
                assert response["ok"] is False
                assert response["code"] == "bad-request"
                assert await reader.read() == b""  # server hung up
                writer.close()
            finally:
                await server.stop()

        run(main())


class TestResponseCache:
    """The pre-encoded response payload cache on the query hot path."""

    def test_repeat_queries_hit_the_cache(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index).start()
            client = LocatorClient([server.address], retry=FAST_RETRY, cache_size=0)
            try:
                first = await client.query(3)
                second = await client.query(3)
                assert first == second == index.query(3)
                counters = server.metrics.snapshot()["counters"]
                assert counters["response_cache_misses_total"] == 1
                assert counters["response_cache_hits_total"] == 1
                assert counters["queries_served"] == 2
            finally:
                await client.close()
                await server.stop()

        run(main())

    def test_cached_and_uncached_frames_are_identical(self, served_network):
        _, index = served_network

        async def main():
            cold = await PPIServer(index, response_cache_size=0).start()
            warm = await PPIServer(index).start()
            client = LocatorClient(
                [cold.address], retry=FAST_RETRY, cache_size=0
            )
            try:
                for owner in range(index.n_owners):
                    expected = await client.call(cold.address, "query", owner=owner)
                    await client.call(warm.address, "query", owner=owner)  # warm it
                    hit = await client.call(warm.address, "query", owner=owner)
                    # ids are per-request; everything else must be identical.
                    expected.pop("id"), hit.pop("id")
                    assert hit == expected
                assert cold.metrics.snapshot()["counters"].get(
                    "response_cache_hits_total", 0
                ) == 0
            finally:
                await client.close()
                await cold.stop()
                await warm.stop()

        run(main())

    def test_errors_are_not_cached(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index, shard=ShardSpec(0, 2)).start()
            client = LocatorClient([server.address], retry=FAST_RETRY, cache_size=0)
            try:
                for _ in range(2):
                    with pytest.raises(RemoteError):
                        await client.query(3)  # wrong shard
                    with pytest.raises(RemoteError):
                        await client.call(
                            server.address, "query", owner=index.n_owners + 1
                        )
                counters = server.metrics.snapshot()["counters"]
                assert "response_cache_hits_total" not in counters
                assert "response_cache_misses_total" not in counters
            finally:
                await client.close()
                await server.stop()

        run(main())

    def test_lru_eviction_is_bounded(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index, response_cache_size=2).start()
            client = LocatorClient([server.address], retry=FAST_RETRY, cache_size=0)
            try:
                assert index.n_owners > 3
                for owner in range(4):
                    await client.query(owner)
                # 0 and 1 were evicted by 2 and 3: re-asking misses again.
                await client.query(0)
                counters = server.metrics.snapshot()["counters"]
                assert counters["response_cache_misses_total"] == 5
                info = await client.info(server.address)
                assert info["response_cache_size"] == 2
            finally:
                await client.close()
                await server.stop()

        run(main())


class TestPostingsBackedServer:
    """The server answers identically when booted on the CSR engine."""

    def test_query_and_batch_match_dense(self, served_network):
        from repro.core.postings import PostingsIndex

        _, index = served_network
        postings = PostingsIndex.from_index(index)

        async def main():
            server = await PPIServer(postings).start()
            client = LocatorClient([server.address], retry=FAST_RETRY, cache_size=0)
            try:
                owners = list(range(index.n_owners))
                for owner in owners:
                    assert await client.query(owner) == index.query(owner)
                results = await client.query_batch(owners)
                for owner in owners:
                    assert results[owner] == index.query(owner)
                info = await client.info(server.address)
                assert info["index_engine"] == "PostingsIndex"
                assert info["n_owners"] == index.n_owners
            finally:
                await client.close()
                await server.stop()

        run(main())
