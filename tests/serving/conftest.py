"""Fixtures for the serving-runtime tests.

No pytest-asyncio dependency: tests are synchronous and call
``asyncio.run`` on an async body, typically through the :func:`cluster`
context manager which stands up a sharded server fleet plus every
provider's endpoint in-process and tears them down afterwards.
"""

from __future__ import annotations

import contextlib

import numpy as np
import pytest

from repro.core.authsearch import AccessControl
from repro.core.construction import construct_epsilon_ppi
from repro.core.model import InformationNetwork
from repro.core.policies import ChernoffPolicy
from repro.serving import LocatorClient, PPIServer, ProviderEndpoint, RetryPolicy, ShardSpec


def make_network(
    n_providers: int = 6, n_owners: int = 20, seed: int = 0
) -> InformationNetwork:
    rng = np.random.default_rng(seed)
    net = InformationNetwork(n_providers)
    for j in range(n_owners):
        owner = net.register_owner(f"owner-{j}", float(rng.uniform(0.3, 0.9)))
        for pid in rng.choice(
            n_providers, size=int(rng.integers(1, 4)), replace=False
        ):
            net.delegate(owner, int(pid), payload=f"record-{j}@{pid}")
    return net


@pytest.fixture
def served_network():
    """(network, index) pair ready to host."""
    net = make_network()
    index = construct_epsilon_ppi(
        net, ChernoffPolicy(0.9), np.random.default_rng(1)
    ).index
    return net, index


class Cluster:
    """A running in-process fleet: sharded servers + provider endpoints."""

    def __init__(self, network, index, servers, providers):
        self.network = network
        self.index = index
        self.servers = servers
        self.providers = providers

    @property
    def server_addrs(self):
        return [s.address for s in self.servers]

    @property
    def provider_addrs(self):
        return {pid: ep.address for pid, ep in self.providers.items()}

    def client(self, **kwargs) -> LocatorClient:
        kwargs.setdefault(
            "retry", RetryPolicy(max_retries=1, timeout_s=0.5, base_delay_s=0.005)
        )
        return LocatorClient(
            servers=self.server_addrs, providers=self.provider_addrs, **kwargs
        )


@contextlib.asynccontextmanager
async def cluster(network, index, n_shards: int = 1, acls=None):
    """Start servers for every shard and an endpoint per provider."""
    servers = [
        await PPIServer(index, ShardSpec(i, n_shards)).start()
        for i in range(n_shards)
    ]
    providers = {}
    for pid in range(network.n_providers):
        acl = (acls or {}).get(pid, AccessControl(trusted={"searcher"}))
        providers[pid] = await ProviderEndpoint(
            network.providers[pid], acl
        ).start()
    try:
        yield Cluster(network, index, servers, providers)
    finally:
        for node in servers + list(providers.values()):
            await node.stop()
