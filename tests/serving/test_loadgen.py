"""Closed-loop load generator: reports, consistency with server counters."""

import asyncio
import threading

import pytest

from repro.serving import LocatorClient, PPIServer, RetryPolicy, run_load, run_load_sync

from .conftest import cluster


def run(coro):
    return asyncio.run(coro)


FAST = RetryPolicy(max_retries=1, timeout_s=0.5, base_delay_s=0.005)


class TestRunLoad:
    def test_query_mode_report(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index).start()
            client = LocatorClient([server.address], retry=FAST, cache_size=0)
            try:
                report = await run_load(
                    client,
                    list(range(index.n_owners)),
                    n_workers=4,
                    requests_per_worker=20,
                    mode="query",
                )
                assert report.total == 80
                assert report.errors == 0
                assert report.qps > 0
                pct = report.latency_percentiles_ms()
                assert pct["p50"] <= pct["p95"] <= pct["p99"]
                # No cache: every request hit the server.
                stats = await client.stats(server.address)
                assert stats["counters"]["queries_served"] == 80
                assert "throughput" in report.format()
            finally:
                await client.close()
                await server.stop()

        run(main())

    def test_cache_cuts_server_load(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index).start()
            client = LocatorClient(
                [server.address], retry=FAST, cache_size=1024
            )
            try:
                report = await run_load(
                    client,
                    list(range(index.n_owners)),
                    n_workers=2,
                    requests_per_worker=50,
                    mode="query",
                )
                assert report.total == 100
                served = (await client.stats(server.address))["counters"][
                    "queries_served"
                ]
                # At most one miss per distinct owner (plus races), far
                # below the request count.
                assert served < report.total
                assert client.cache.hits > 0
            finally:
                await client.close()
                await server.stop()

        run(main())

    def test_search_mode_tallies(self, served_network):
        network, index = served_network

        async def main():
            async with cluster(network, index) as c:
                client = c.client(cache_size=0)
                try:
                    report = await run_load(
                        client,
                        list(range(network.n_owners)),
                        n_workers=3,
                        requests_per_worker=10,
                        mode="search",
                    )
                    assert report.total == 30
                    assert report.errors == 0
                    assert report.records_found > 0
                    assert report.providers_contacted >= report.records_found
                    assert report.providers_failed == 0
                    assert "records" in report.format()
                finally:
                    await client.close()

        run(main())

    def test_validation(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index).start()
            client = LocatorClient([server.address], retry=FAST)
            try:
                with pytest.raises(ValueError):
                    await run_load(client, [], mode="query")
                with pytest.raises(ValueError):
                    await run_load(client, [0], mode="teleport")
                with pytest.raises(ValueError):
                    await run_load(client, [0], n_workers=0)
            finally:
                await client.close()
                await server.stop()

        run(main())


class TestRunLoadSync:
    def test_against_cluster_in_background_thread(self, served_network):
        """run_load_sync drives a fleet owned by another event loop, the
        same shape as hitting out-of-process servers."""
        network, index = served_network
        ready = threading.Event()
        done = threading.Event()
        state = {}

        def host():
            async def serve():
                async with cluster(network, index) as c:
                    state["servers"] = c.server_addrs
                    state["providers"] = c.provider_addrs
                    ready.set()
                    while not done.is_set():
                        await asyncio.sleep(0.01)

            asyncio.run(serve())

        thread = threading.Thread(target=host, daemon=True)
        thread.start()
        assert ready.wait(timeout=10.0)
        try:
            report = run_load_sync(
                lambda: LocatorClient(
                    servers=state["servers"],
                    providers=state["providers"],
                    retry=FAST,
                    cache_size=0,
                ),
                list(range(network.n_owners)),
                n_workers=2,
                requests_per_worker=10,
                mode="search",
                report_stats_from=state["servers"][0],
            )
            assert report.total == 20
            assert report.errors == 0
            assert report.server_stats["counters"]["queries_served"] == 20
        finally:
            done.set()
            thread.join(timeout=10.0)


class RecordingClient:
    """Duck-typed client that records the owner ids it was asked for."""

    def __init__(self):
        self.owners = []

    async def query(self, owner_id):
        self.owners.append(owner_id)
        return [0]

    async def query_batch(self, owner_ids):
        self.owners.extend(owner_ids)
        return {o: [0] for o in owner_ids}


class TestZipfSchedule:
    IDS = list(range(20))

    def drive(self, zipf_a, seed, **kwargs):
        client = RecordingClient()
        kwargs.setdefault("n_workers", 3)
        kwargs.setdefault("requests_per_worker", 30)
        report = run(
            run_load(client, self.IDS, zipf_a=zipf_a, seed=seed, **kwargs)
        )
        return client.owners, report

    def test_same_seed_replays_the_same_schedule(self):
        first, _ = self.drive(zipf_a=1.2, seed=7)
        second, _ = self.drive(zipf_a=1.2, seed=7)
        assert first == second
        assert len(first) == 90

    def test_different_seeds_draw_different_schedules(self):
        first, _ = self.drive(zipf_a=1.2, seed=7)
        second, _ = self.drive(zipf_a=1.2, seed=8)
        assert first != second

    def test_front_of_the_id_list_is_hot(self):
        ids = list(range(100, 120))  # rank order, not id order, decides heat
        client = RecordingClient()
        run(
            run_load(
                client, ids,
                n_workers=4, requests_per_worker=100,
                zipf_a=1.5, seed=3,
            )
        )
        counts = {o: client.owners.count(o) for o in ids}
        assert counts[ids[0]] > counts[ids[-1]] * 5
        assert counts[ids[0]] > counts[ids[10]]

    def test_zero_skew_keeps_the_uniform_round_robin(self):
        owners, _ = self.drive(zipf_a=0.0, seed=7, n_workers=2,
                               requests_per_worker=20)
        assert all(owners.count(o) == 2 for o in self.IDS)

    def test_batch_mode_draws_batches_from_the_schedule(self):
        owners, report = self.drive(
            zipf_a=1.1, seed=1,
            n_workers=2, requests_per_worker=5,
            mode="batch", batch_size=4,
        )
        assert report.total == 2 * 5 * 4
        assert len(owners) == report.total
        assert set(owners) <= set(self.IDS)

    def test_negative_skew_is_rejected(self):
        with pytest.raises(ValueError, match="zipf_a"):
            run(run_load(RecordingClient(), self.IDS, zipf_a=-0.5))
