"""Closed-loop load generator: reports, consistency with server counters."""

import asyncio
import threading

import pytest

from repro.serving import LocatorClient, PPIServer, RetryPolicy, run_load, run_load_sync

from .conftest import cluster


def run(coro):
    return asyncio.run(coro)


FAST = RetryPolicy(max_retries=1, timeout_s=0.5, base_delay_s=0.005)


class TestRunLoad:
    def test_query_mode_report(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index).start()
            client = LocatorClient([server.address], retry=FAST, cache_size=0)
            try:
                report = await run_load(
                    client,
                    list(range(index.n_owners)),
                    n_workers=4,
                    requests_per_worker=20,
                    mode="query",
                )
                assert report.total == 80
                assert report.errors == 0
                assert report.qps > 0
                pct = report.latency_percentiles_ms()
                assert pct["p50"] <= pct["p95"] <= pct["p99"]
                # No cache: every request hit the server.
                stats = await client.stats(server.address)
                assert stats["counters"]["queries_served"] == 80
                assert "throughput" in report.format()
            finally:
                await client.close()
                await server.stop()

        run(main())

    def test_cache_cuts_server_load(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index).start()
            client = LocatorClient(
                [server.address], retry=FAST, cache_size=1024
            )
            try:
                report = await run_load(
                    client,
                    list(range(index.n_owners)),
                    n_workers=2,
                    requests_per_worker=50,
                    mode="query",
                )
                assert report.total == 100
                served = (await client.stats(server.address))["counters"][
                    "queries_served"
                ]
                # At most one miss per distinct owner (plus races), far
                # below the request count.
                assert served < report.total
                assert client.cache.hits > 0
            finally:
                await client.close()
                await server.stop()

        run(main())

    def test_search_mode_tallies(self, served_network):
        network, index = served_network

        async def main():
            async with cluster(network, index) as c:
                client = c.client(cache_size=0)
                try:
                    report = await run_load(
                        client,
                        list(range(network.n_owners)),
                        n_workers=3,
                        requests_per_worker=10,
                        mode="search",
                    )
                    assert report.total == 30
                    assert report.errors == 0
                    assert report.records_found > 0
                    assert report.providers_contacted >= report.records_found
                    assert report.providers_failed == 0
                    assert "records" in report.format()
                finally:
                    await client.close()

        run(main())

    def test_validation(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index).start()
            client = LocatorClient([server.address], retry=FAST)
            try:
                with pytest.raises(ValueError):
                    await run_load(client, [], mode="query")
                with pytest.raises(ValueError):
                    await run_load(client, [0], mode="teleport")
                with pytest.raises(ValueError):
                    await run_load(client, [0], n_workers=0)
            finally:
                await client.close()
                await server.stop()

        run(main())


class TestRunLoadSync:
    def test_against_cluster_in_background_thread(self, served_network):
        """run_load_sync drives a fleet owned by another event loop, the
        same shape as hitting out-of-process servers."""
        network, index = served_network
        ready = threading.Event()
        done = threading.Event()
        state = {}

        def host():
            async def serve():
                async with cluster(network, index) as c:
                    state["servers"] = c.server_addrs
                    state["providers"] = c.provider_addrs
                    ready.set()
                    while not done.is_set():
                        await asyncio.sleep(0.01)

            asyncio.run(serve())

        thread = threading.Thread(target=host, daemon=True)
        thread.start()
        assert ready.wait(timeout=10.0)
        try:
            report = run_load_sync(
                lambda: LocatorClient(
                    servers=state["servers"],
                    providers=state["providers"],
                    retry=FAST,
                    cache_size=0,
                ),
                list(range(network.n_owners)),
                n_workers=2,
                requests_per_worker=10,
                mode="search",
                report_stats_from=state["servers"][0],
            )
            assert report.total == 20
            assert report.errors == 0
            assert report.server_stats["counters"]["queries_served"] == 20
        finally:
            done.set()
            thread.join(timeout=10.0)
