"""Framing and message-schema tests for the serving wire protocol."""

import asyncio
import json
import struct

import pytest

from repro.serving.protocol import (
    MAX_FRAME_BYTES,
    ConnectionClosed,
    FrameTooLarge,
    ProtocolError,
    RemoteError,
    encode_frame,
    error_response,
    ok_response,
    raise_for_response,
    read_frame,
    request,
)


def read_from_bytes(data: bytes, n_frames: int = 1):
    """Feed raw bytes into a fresh StreamReader and read frames off it."""

    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        frames = [await read_frame(reader) for _ in range(n_frames)]
        return frames[0] if n_frames == 1 else tuple(frames)

    return asyncio.run(main())


class TestFraming:
    def test_roundtrip(self):
        message = request("query", 7, owner=42)
        assert read_from_bytes(encode_frame(message)) == message

    def test_multiple_frames_on_one_stream(self):
        a = request("ping", 1)
        b = request("query", 2, owner=0)
        assert read_from_bytes(encode_frame(a) + encode_frame(b), n_frames=2) == (a, b)

    def test_clean_eof_raises_connection_closed(self):
        with pytest.raises(ConnectionClosed):
            read_from_bytes(b"")

    def test_truncated_frame_raises_connection_closed(self):
        with pytest.raises(ConnectionClosed):
            read_from_bytes(encode_frame(request("ping", 1))[:-2])

    def test_oversized_announcement_rejected_before_read(self):
        with pytest.raises(FrameTooLarge):
            read_from_bytes(struct.pack(">I", MAX_FRAME_BYTES + 1))

    def test_oversized_encode_rejected(self):
        with pytest.raises(FrameTooLarge):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})

    def test_non_object_body_rejected(self):
        body = json.dumps([1, 2, 3]).encode()
        with pytest.raises(ProtocolError):
            read_from_bytes(struct.pack(">I", len(body)) + body)

    def test_garbage_body_rejected(self):
        body = b"\xff\xfe not json"
        with pytest.raises(ProtocolError):
            read_from_bytes(struct.pack(">I", len(body)) + body)


class TestMessages:
    def test_ok_response_passes_through(self):
        response = ok_response(3, providers=[1, 2])
        assert raise_for_response(response) is response

    def test_error_response_raises_remote_error_with_detail(self):
        response = error_response(3, "wrong-shard", "owner 5 not here", shard=2)
        with pytest.raises(RemoteError) as err:
            raise_for_response(response)
        assert err.value.code == "wrong-shard"
        assert err.value.detail == {"shard": 2}

    def test_missing_fields_default_to_internal(self):
        with pytest.raises(RemoteError) as err:
            raise_for_response({"id": 1, "ok": False})
        assert err.value.code == "internal"
