"""Fleet supervision tests against real worker processes.

These tests spawn actual OS processes (forkserver/spawn context) serving
real TCP sockets, so they are integration tests by construction.  Timings
are tuned tight (50 ms health interval, 20-50 ms backoff base) and every
wait is deadline-bounded -- nothing here sleeps "long enough", it polls
until the asserted state or a generous deadline.

The headline test is the fault injection: SIGKILL a worker while a
closed-loop load generator is hammering the fleet, and require that the
supervisor restarts it within its backoff budget and that *every* query
eventually succeeds -- retries allowed, lost owners not.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.core.index import PPIIndex
from repro.serving.client import LocatorClient, RetryPolicy
from repro.serving.fleet import FleetSupervisor, sync_request
from repro.serving.loadgen import run_load_sync
from repro.serving.protocol import VERB_INFO, VERB_QUERY, VERB_STATS, RemoteError
from repro.serving.snapshot import save_snapshot

N_PROVIDERS = 8
N_OWNERS = 24


def fleet_index() -> PPIIndex:
    i, j = np.meshgrid(np.arange(N_PROVIDERS), np.arange(N_OWNERS), indexing="ij")
    return PPIIndex(((i + j) % 3 == 0).astype(np.uint8))


@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("fleet") / "index.npz")
    save_snapshot(fleet_index(), path)
    return path


def make_supervisor(snapshot_path: str, n_shards: int = 2, **overrides):
    settings = dict(
        health_interval_s=0.05,
        health_timeout_s=0.5,
        unhealthy_after=3,
        max_restarts=4,
        backoff_base_s=0.05,
        backoff_max_s=0.5,
        start_timeout_s=30.0,
    )
    settings.update(overrides)
    return FleetSupervisor(snapshot_path, n_shards, **settings)


def wait_until(predicate, deadline_s: float, what: str):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out after {deadline_s}s waiting for {what}")


class TestLifecycle:
    def test_every_shard_serves_its_owners(self, snapshot_path):
        index = fleet_index()
        with make_supervisor(snapshot_path, n_shards=2) as fleet:
            fleet.start(monitor=False)
            addresses = fleet.addresses
            assert len(addresses) == 2
            for owner_id in range(N_OWNERS):
                response = sync_request(
                    addresses[owner_id % 2], VERB_QUERY, owner=owner_id
                )
                assert response["providers"] == index.query(owner_id)
            states = fleet.worker_states()
            assert all(w["state"] == "healthy" for w in states.values())
            assert all(w["restarts"] == 0 for w in states.values())

    def test_misrouted_query_names_the_right_shard(self, snapshot_path):
        with make_supervisor(snapshot_path, n_shards=2) as fleet:
            fleet.start(monitor=False)
            with pytest.raises(RemoteError) as excinfo:
                sync_request(fleet.addresses[0], VERB_QUERY, owner=1)
            assert excinfo.value.code == "wrong-shard"
            assert excinfo.value.detail["shard"] == 1

    def test_stop_tears_down_every_process(self, snapshot_path):
        fleet = make_supervisor(snapshot_path, n_shards=2)
        fleet.start(monitor=False)
        pids = [w["pid"] for w in fleet.worker_states().values()]
        fleet.stop()
        assert all(w["state"] == "stopped" for w in fleet.worker_states().values())
        for pid in pids:
            # A reaped child is gone; os.kill(pid, 0) must not find it.
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
        for addr in fleet.addresses:
            with pytest.raises(OSError):
                sync_request(addr, VERB_QUERY, timeout_s=0.3, owner=0)


class TestFaultInjection:
    @pytest.mark.parametrize("protocol", ["v1", "v2"])
    def test_sigkill_mid_load_loses_no_queries(self, snapshot_path, protocol):
        """Kill shard 0 while a closed-loop generator is running.

        The client's retry budget (~8 capped-backoff attempts, several
        seconds) comfortably covers the supervisor's worst-case recovery
        (detect within one 50 ms health round + 50-100 ms backoff + boot),
        so the run must complete with zero errors and correct results.
        Parametrized over the wire protocol: a SIGKILL can land mid-frame
        on a v2 binary response exactly as on a v1 JSON one, and the
        reconnect/retry path must lose zero queries either way.
        """
        index = fleet_index()
        with make_supervisor(snapshot_path, n_shards=2) as fleet:
            fleet.start(monitor=True)
            addresses = [tuple(a) for a in fleet.addresses]
            victim_pid = fleet.worker_states()[0]["pid"]

            killed = threading.Event()

            def assassin():
                os.kill(victim_pid, signal.SIGKILL)
                killed.set()

            # Strike shortly into the load run: late enough that queries are
            # in flight, early enough that plenty remain to ride the outage.
            timer = threading.Timer(0.05, assassin)
            timer.start()
            try:
                report = run_load_sync(
                    lambda: LocatorClient(
                        servers=addresses,
                        retry=RetryPolicy(
                            max_retries=8,
                            timeout_s=1.0,
                            base_delay_s=0.05,
                            max_delay_s=0.5,
                        ),
                        cache_size=0,
                        protocol=protocol,
                    ),
                    owner_ids=list(range(N_OWNERS)),
                    n_workers=4,
                    requests_per_worker=300,
                )
            finally:
                timer.cancel()

            assert killed.is_set(), "assassin never fired; test proves nothing"
            assert report.total == 4 * 300
            assert report.errors == 0, f"{report.errors} queries never succeeded"

            wait_until(
                lambda: fleet.worker_states()[0]["state"] == "healthy",
                deadline_s=10.0,
                what="shard 0 to be restarted and healthy",
            )
            states = fleet.worker_states()
            assert states[0]["restarts"] >= 1
            assert states[0]["pid"] != victim_pid
            assert states[1]["restarts"] == 0
            assert fleet.addresses == list(addresses)  # topology never moved

            # Zero lost owners: after recovery, every owner resolves to the
            # exact provider list the index publishes.
            for owner_id in range(N_OWNERS):
                response = sync_request(
                    fleet.addresses[owner_id % 2], VERB_QUERY, owner=owner_id
                )
                assert response["providers"] == index.query(owner_id)

            supervisor_counters = fleet.fleet_stats()["supervisor"]["counters"]
            assert supervisor_counters["worker_deaths_total"] >= 1
            assert supervisor_counters["restarts_total"] >= 1

    def test_restart_happens_within_the_backoff_budget(self, snapshot_path):
        """Detect + restart must fit in health_interval + first backoff step
        (plus boot); the deadline below is ~20x that budget, so a pass means
        the mechanism works and a fail means it is wedged, not slow."""
        with make_supervisor(snapshot_path, n_shards=1) as fleet:
            fleet.start(monitor=True)
            pid = fleet.worker_states()[0]["pid"]
            os.kill(pid, signal.SIGKILL)
            t0 = time.monotonic()
            wait_until(
                lambda: fleet.worker_states()[0]["state"] == "healthy"
                and fleet.worker_states()[0]["pid"] != pid,
                deadline_s=10.0,
                what="restarted worker to report healthy",
            )
            recovery_s = time.monotonic() - t0
            # Generous absolute bound: interval (0.05) + backoff (0.05) +
            # process boot; anything near 10 s means supervision is broken.
            assert recovery_s < 8.0


class TestGiveUp:
    def test_unbootable_worker_fails_without_sinking_the_fleet(
        self, snapshot_path, tmp_path
    ):
        # Private snapshot copy: this test deletes it mid-flight.
        doomed_snapshot = str(tmp_path / "doomed.npz")
        save_snapshot(fleet_index(), doomed_snapshot)
        with make_supervisor(
            doomed_snapshot, n_shards=2, max_restarts=2, backoff_base_s=0.02
        ) as fleet:
            fleet.start(monitor=False)
            os.unlink(doomed_snapshot)  # every future boot now crashes
            os.kill(fleet.worker_states()[0]["pid"], signal.SIGKILL)

            events = []
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                events.extend(fleet.check_once())
                if any(kind == "gave-up" for kind, _ in events):
                    break
                time.sleep(0.02)

            kinds = [kind for kind, shard in events if shard == 0]
            assert "died" in kinds
            assert kinds.count("restarted") == 2  # max_restarts exhausted
            assert kinds[-1] == "gave-up"
            assert fleet.worker_states()[0]["state"] == "failed"
            counters = fleet.metrics.snapshot()["counters"]
            assert counters["workers_given_up"] == 1

            # The healthy shard is unaffected: shard 1 owners still resolve.
            response = sync_request(fleet.addresses[1], VERB_QUERY, owner=1)
            assert response["providers"] == fleet_index().query(1)
            # A failed worker stays down -- further rounds take no action.
            assert fleet.check_once() == []


class TestFleetStats:
    def test_aggregate_counters_sum_over_workers(self, snapshot_path):
        with make_supervisor(snapshot_path, n_shards=2) as fleet:
            fleet.start(monitor=False)
            for owner_id in range(N_OWNERS):
                sync_request(fleet.addresses[owner_id % 2], VERB_QUERY, owner=owner_id)
            stats = fleet.fleet_stats()
            assert stats["n_shards"] == 2
            assert set(stats["workers"]) == {0, 1}
            per_worker = [
                w["stats"]["counters"]["queries_served"]
                for w in stats["workers"].values()
            ]
            assert sum(per_worker) == N_OWNERS
            assert stats["aggregate_counters"]["queries_served"] == N_OWNERS
            # Each fleet_stats call is itself a stats request per worker.
            assert stats["aggregate_counters"]["requests_total"] >= N_OWNERS + 2

    def test_unreachable_worker_reports_none_stats(self, snapshot_path):
        with make_supervisor(snapshot_path, n_shards=2) as fleet:
            fleet.start(monitor=False)
            os.kill(fleet.worker_states()[0]["pid"], signal.SIGKILL)
            wait_until(
                lambda: not sync_alive(fleet.addresses[0]),
                deadline_s=5.0,
                what="killed worker's listener to vanish",
            )
            stats = fleet.fleet_stats()
            assert stats["workers"][0]["stats"] is None
            assert stats["workers"][1]["stats"] is not None


def sync_alive(addr) -> bool:
    try:
        sync_request(addr, VERB_STATS, timeout_s=0.3)
        return True
    except Exception:  # noqa: BLE001 -- any failure means not serving
        return False


def fleet_index_v2() -> PPIIndex:
    """Epoch-1 truth: the complement of epoch 0, so no owner row agrees."""
    return PPIIndex(1 - fleet_index().matrix)


class TestRollout:
    """Rolling hot-swap of a live fleet onto a new snapshot epoch."""

    @pytest.fixture
    def epoch1_snapshot(self, tmp_path):
        path = str(tmp_path / "epoch1.npz")
        save_snapshot(fleet_index_v2(), path, format_version=3, epoch=1)
        return path

    def test_rollout_moves_every_shard_to_the_new_epoch(
        self, snapshot_path, epoch1_snapshot
    ):
        v2 = fleet_index_v2()
        with make_supervisor(snapshot_path, n_shards=2) as fleet:
            fleet.start(monitor=False)
            events = fleet.rollout(epoch1_snapshot, settle_timeout_s=15.0)
            assert events == [("rolled", 0), ("rolled", 1)]
            assert fleet.snapshot_path == epoch1_snapshot
            for shard, addr in enumerate(fleet.addresses):
                info = sync_request(addr, VERB_INFO)
                assert info["epoch"] == 1
                assert info["snapshot_path"] == epoch1_snapshot
            for owner_id in range(N_OWNERS):
                response = sync_request(
                    fleet.addresses[owner_id % 2], VERB_QUERY, owner=owner_id
                )
                assert response["providers"] == v2.query(owner_id)
                assert response["epoch"] == 1
            counters = fleet.metrics.snapshot()["counters"]
            assert counters["shard_reloads_total"] == 2
            assert counters["rollouts_total"] == 1
            # No process was restarted: the swap was in-place, listener up.
            assert all(
                w["restarts"] == 0 for w in fleet.worker_states().values()
            )

    def test_rollout_survives_worker_restarts(
        self, snapshot_path, epoch1_snapshot
    ):
        """A shard whose process is already gone when the rollout reaches it
        is restarted by the supervision the rollout drives -- and because the
        spec is repointed before the reload request, the fresh process boots
        straight into the new epoch."""
        with make_supervisor(snapshot_path, n_shards=2) as fleet:
            fleet.start(monitor=False)
            os.kill(fleet.worker_states()[1]["pid"], signal.SIGKILL)
            events = fleet.rollout(epoch1_snapshot, settle_timeout_s=15.0)
            assert ("rolled", 0) in events and ("rolled", 1) in events
            assert fleet.worker_states()[1]["restarts"] >= 1
            for addr in fleet.addresses:
                assert sync_request(addr, VERB_INFO)["epoch"] == 1

    def test_sigkill_mid_rollout_loses_no_queries(
        self, snapshot_path, epoch1_snapshot
    ):
        """Kill a shard while a rollout and a load run are both in flight.

        Required outcome: the rollout still lands every shard on epoch 1,
        the supervisor restarts the victim (on the new snapshot), and the
        retrying load generator reports zero failed queries -- reloads and
        restarts cost latency, never answers.
        """
        v2 = fleet_index_v2()
        with make_supervisor(snapshot_path, n_shards=2) as fleet:
            fleet.start(monitor=True)
            addresses = [tuple(a) for a in fleet.addresses]
            victim_pid = fleet.worker_states()[1]["pid"]

            killed = threading.Event()

            def assassin():
                os.kill(victim_pid, signal.SIGKILL)
                killed.set()

            rollout_events = []

            def roll():
                rollout_events.extend(
                    fleet.rollout(epoch1_snapshot, settle_timeout_s=30.0)
                )

            roller = threading.Thread(target=roll)
            timer = threading.Timer(0.1, assassin)
            roller.start()
            timer.start()
            try:
                report = run_load_sync(
                    lambda: LocatorClient(
                        servers=addresses,
                        retry=RetryPolicy(
                            max_retries=8,
                            timeout_s=1.0,
                            base_delay_s=0.05,
                            max_delay_s=0.5,
                        ),
                        cache_size=0,
                    ),
                    owner_ids=list(range(N_OWNERS)),
                    n_workers=4,
                    requests_per_worker=300,
                )
            finally:
                timer.cancel()
                roller.join(timeout=60.0)

            assert killed.is_set(), "assassin never fired; test proves nothing"
            assert not roller.is_alive(), "rollout never finished"
            assert report.errors == 0, f"{report.errors} queries never succeeded"
            assert ("rolled", 0) in rollout_events
            assert ("rolled", 1) in rollout_events

            wait_until(
                lambda: all(
                    w["state"] == "healthy"
                    for w in fleet.worker_states().values()
                ),
                deadline_s=10.0,
                what="the whole fleet to be healthy post-rollout",
            )
            # Every shard settled on the new epoch, every owner answers the
            # new truth: zero lost *and* zero stale.
            for owner_id in range(N_OWNERS):
                response = sync_request(
                    addresses[owner_id % 2], VERB_QUERY, owner=owner_id
                )
                assert response["epoch"] == 1
                assert response["providers"] == v2.query(owner_id)

    def test_unsettleable_rollout_aborts_and_leaves_the_rest_alone(
        self, snapshot_path, tmp_path
    ):
        doomed = str(tmp_path / "doomed.npz")
        save_snapshot(fleet_index_v2(), doomed, format_version=3, epoch=1)
        # Corrupt the postings payload: the epoch in the meta block stays
        # readable (the rollout can compute its target), but every worker's
        # reload fails the snapshot checksum and refuses the swap.
        with np.load(doomed) as archive:
            arrays = dict(archive)
        arrays["indices"] = arrays["indices"].copy()
        arrays["indices"][0] += 1
        np.savez(doomed, **arrays)
        with make_supervisor(snapshot_path, n_shards=2) as fleet:
            fleet.start(monitor=False)
            events = fleet.rollout(doomed, settle_timeout_s=0.5)
            assert events[-1] == ("rollout-stuck", 0)
            assert ("rolled", 1) not in events
            assert fleet.snapshot_path == snapshot_path  # not committed
            counters = fleet.metrics.snapshot()["counters"]
            assert counters["rollouts_aborted_total"] == 1
            # Both shards keep serving the old epoch.
            for addr in fleet.addresses:
                assert sync_request(addr, VERB_INFO)["epoch"] == 0


class TestReadReplicas:
    def test_replica_sets_epochs_and_manual_promotion(self, snapshot_path):
        from repro.serving.snapshot import snapshot_epoch

        index = fleet_index()
        base_epoch = snapshot_epoch(snapshot_path)
        with make_supervisor(snapshot_path, n_shards=2, read_replicas=1) as fleet:
            fleet.start(monitor=False)
            sets = fleet.replica_sets
            assert len(sets) == 2 and all(len(rs) == 2 for rs in sets)
            assert [rs[0] for rs in sets] == fleet.addresses
            roles = [w["role"] for w in fleet.worker_states().values()]
            assert sorted(roles) == ["primary", "primary", "replica", "replica"]
            stats = fleet.fleet_stats()
            assert stats["read_replicas"] == 1
            assert stats["epochs"] == {0: base_epoch, 1: base_epoch}
            probed = [w for w in stats["workers"].values() if w["stats"]]
            assert all(w["epoch"] == base_epoch for w in probed)
            # Replicas answer the same rows as their primaries.
            for owner_id in range(N_OWNERS):
                replica_addr = sets[owner_id % 2][1]
                response = sync_request(replica_addr, VERB_QUERY, owner=owner_id)
                assert response["providers"] == index.query(owner_id)

            old_primary = fleet.addresses[0]
            old_replica = sets[0][1]
            kind, detail = fleet.promote(0)
            assert kind == "promoted" and detail[0] == 0
            assert fleet.addresses[0] == old_replica
            assert fleet.replica_sets[0] == [old_replica, old_primary]
            # The promoted worker serves shard 0's owners.
            response = sync_request(fleet.addresses[0], VERB_QUERY, owner=0)
            assert response["providers"] == index.query(0)

    def test_gave_up_primary_auto_promotes_a_replica(self, snapshot_path):
        index = fleet_index()
        with make_supervisor(
            snapshot_path, n_shards=1, read_replicas=1, max_restarts=0
        ) as fleet:
            fleet.start(monitor=False)
            doomed = fleet.addresses[0]
            states = fleet.worker_states()
            pid = next(
                w["pid"] for w in states.values() if w["role"] == "primary"
            )
            os.kill(pid, signal.SIGKILL)
            seen = []

            def promoted():
                seen.extend(fleet.check_once())
                return any(e[0] == "promoted" for e in seen)

            wait_until(promoted, deadline_s=10.0, what="automatic promotion")
            assert ("gave-up", 0) in seen
            assert fleet.addresses[0] != doomed
            for owner_id in range(N_OWNERS):
                response = sync_request(
                    fleet.addresses[0], VERB_QUERY, owner=owner_id
                )
                assert response["providers"] == index.query(owner_id)
