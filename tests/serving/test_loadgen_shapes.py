"""Traffic shapes and per-ε-tier latency breakdown in the load generator."""

import asyncio

import numpy as np
import pytest

from repro.cli import main
from repro.core.postings import PostingsIndex
from repro.serving.fleet import FleetSupervisor
from repro.serving.loadgen import (
    TRAFFIC_SHAPES,
    LoadReport,
    run_load,
    shape_pause_s,
)
from repro.serving.snapshot import save_snapshot


def run(coro):
    return asyncio.run(coro)


class RecordingClient:
    """Duck-typed client that records the owner ids it was asked for."""

    def __init__(self):
        self.owners = []

    async def query(self, owner_id):
        self.owners.append(owner_id)
        return [0]

    async def query_batch(self, owner_ids):
        self.owners.extend(owner_ids)
        return {o: [0] for o in owner_ids}


class TestShapePause:
    def test_uniform_is_constant(self):
        assert [shape_pause_s("uniform", k, 0.01, 8) for k in range(8)] == (
            [0.01] * 8
        )

    def test_diurnal_is_sinusoidal(self):
        period = 8
        pauses = [
            shape_pause_s("diurnal", k, 0.01, period) for k in range(period)
        ]
        # peaks at a quarter period, bottoms out at three quarters
        assert pauses[2] == pytest.approx(0.02)
        assert pauses[6] == pytest.approx(0.0, abs=1e-12)
        assert pauses[0] == pytest.approx(0.01)
        # periodic: the next cycle replays the first
        assert shape_pause_s("diurnal", period + 2, 0.01, period) == (
            pytest.approx(pauses[2])
        )

    def test_burst_is_on_off(self):
        period = 8  # duty cycle 0.25 -> positions 0..1 burst, 2..7 idle
        pauses = [
            shape_pause_s("burst", k, 0.01, period) for k in range(period)
        ]
        assert pauses[:2] == [0.0, 0.0]
        assert pauses[2:] == [0.02] * 6

    def test_phase_shifts_the_cycle(self):
        assert shape_pause_s("burst", 0, 0.01, 8, phase=2) == (
            shape_pause_s("burst", 2, 0.01, 8)
        )

    def test_unknown_shape_raises(self):
        with pytest.raises(ValueError):
            shape_pause_s("square", 0, 0.01, 8)


class TestShapedRunLoad:
    IDS = list(range(16))

    def drive(self, **kwargs):
        client = RecordingClient()
        kwargs.setdefault("n_workers", 2)
        kwargs.setdefault("requests_per_worker", 10)
        report = run(run_load(client, self.IDS, **kwargs))
        return client.owners, report

    def test_all_shapes_complete(self):
        for shape in TRAFFIC_SHAPES:
            _, report = self.drive(shape=shape, think_time_s=0.0005)
            assert report.total == 20
            assert report.errors == 0

    def test_shaped_run_is_seed_reproducible(self):
        first, _ = self.drive(shape="burst", think_time_s=0.0005,
                              zipf_a=1.1, seed=9)
        second, _ = self.drive(shape="burst", think_time_s=0.0005,
                               zipf_a=1.1, seed=9)
        assert first == second

    def test_shaped_run_requires_think_time(self):
        with pytest.raises(ValueError):
            self.drive(shape="diurnal", think_time_s=0.0)

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError):
            self.drive(shape="sawtooth")

    def test_short_period_rejected(self):
        with pytest.raises(ValueError):
            self.drive(shape="burst", think_time_s=0.001, shape_period=1)


class TestTierBreakdown:
    IDS = list(range(12))
    TIERS = {j: ("strict" if j % 2 else "relaxed") for j in range(12)}

    def drive(self, **kwargs):
        client = RecordingClient()
        kwargs.setdefault("n_workers", 2)
        kwargs.setdefault("requests_per_worker", 12)
        return run(run_load(client, self.IDS, tier_of=self.TIERS, **kwargs))

    def test_every_request_lands_in_its_tier(self):
        report = self.drive()
        assert set(report.tier_latencies_s) == {"strict", "relaxed"}
        sampled = sum(len(v) for v in report.tier_latencies_s.values())
        assert sampled == report.total

    def test_percentiles_per_tier(self):
        report = self.drive()
        pct = report.tier_latency_percentiles_ms()
        for tier in ("strict", "relaxed"):
            assert pct[tier]["p50"] <= pct[tier]["p95"] <= pct[tier]["p99"]
            assert pct[tier]["requests"] > 0

    def test_format_includes_tier_lines(self):
        shown = self.drive().format()
        assert "tier strict" in shown
        assert "tier relaxed" in shown

    def test_batch_mode_counts_each_tier_once_per_request(self):
        report = self.drive(mode="batch", batch_size=4,
                            requests_per_worker=6)
        # a batch spanning both tiers contributes one sample to each
        assert set(report.tier_latencies_s) == {"strict", "relaxed"}
        for samples in report.tier_latencies_s.values():
            assert 0 < len(samples) <= report.total

    def test_no_tier_map_no_breakdown(self):
        client = RecordingClient()
        report = run(
            run_load(client, self.IDS, n_workers=1, requests_per_worker=5)
        )
        assert report.tier_latencies_s == {}
        assert report.tier_latency_percentiles_ms() == {}
        assert "tier " not in report.format()

    def test_report_roundtrips_through_dataclass(self):
        report = LoadReport(mode="query", n_workers=1)
        report.tier_latencies_s["strict"] = [0.001, 0.002]
        pct = report.tier_latency_percentiles_ms()
        assert pct["strict"]["requests"] == 2.0


class TestLoadgenCLI:
    def test_shape_and_tier_flags(self, tmp_path, capsys):
        rng = np.random.default_rng(3)
        dense = (rng.random((8, 12)) < 0.3).astype(np.uint8)
        path = tmp_path / "base.npz"
        save_snapshot(
            PostingsIndex.from_dense(dense), str(path),
            format_version=3, epoch=0,
        )
        with FleetSupervisor(str(path), n_shards=1) as fleet:
            fleet.start(monitor=True)
            host, port = fleet.addresses[0]
            code = main([
                "loadgen",
                "--server", f"{host}:{port}",
                "--owners", "12",
                "--workers", "2",
                "--requests", "6",
                "--shape", "burst",
                "--think-time", "0.001",
                "--tiers", "2",
                "--cache-size", "0",
            ])
        assert code == 0
        shown = capsys.readouterr().out
        assert "tier tier-0" in shown
        assert "tier tier-1" in shown
