"""Conformance suite for wire protocol v2 (``repro.serving.protocol_v2``).

Four layers, from bytes up:

* **codecs** -- packed binary payloads round-trip exactly, and every
  message the binary form cannot express falls back to JSON instead of
  failing (v2 is a superset of v1, never a restriction);
* **golden files** -- the byte layouts in ``tests/serving/data/`` are
  pinned: re-encoding must reproduce them bit for bit, and a hand-written
  hex literal pins the header layout independently of the encoder;
* **corruption** -- a live server answers every malformed frame (flipped
  crc, truncated tail, oversized length announcement, bad version,
  disabled protocol) with a *typed* error in the frame's own protocol and
  never crashes, never mixes responses across pipelined requests;
* **interop** -- v1 clients work against v2 servers and vice versa, and an
  ``auto`` client downgrades to v1 exactly once per legacy address.
"""

import asyncio
import binascii
import pathlib
import struct
import zlib

import numpy as np
import pytest

from repro.core.index import PPIIndex
from repro.serving.client import LocatorClient, RetryPolicy, TransportError
from repro.serving.protocol import (
    MAX_FRAME_BYTES,
    ConnectionClosed,
    FrameTooLarge,
    ProtocolError,
    RemoteError,
    encode_frame,
    error_response,
    ok_response,
)
from repro.serving.protocol_v2 import (
    FLAG_ERROR,
    FLAG_JSON,
    FLAG_RESPONSE,
    HEADER,
    MAGIC,
    PROTOCOL_V2,
    FrameDecoder,
    batch_response_parts,
    encode_frame_v2,
    encode_reply_v2,
    pack_batch_segment,
    prepared_response_v2,
    read_any_frame,
)
from repro.serving.server import PPIServer

DATA = pathlib.Path(__file__).parent / "data"

N_PROVIDERS = 6
N_OWNERS = 12


def make_index() -> PPIIndex:
    """Deterministic truth: provider i publishes owner j iff (i+j) % 3 == 0."""
    matrix = np.zeros((N_PROVIDERS, N_OWNERS), dtype=np.uint8)
    for i in range(N_PROVIDERS):
        for j in range(N_OWNERS):
            if (i + j) % 3 == 0:
                matrix[i, j] = 1
    return PPIIndex(matrix)


def decode_one(blob: bytes, protocols=(1, 2)):
    """Decode exactly one frame from ``blob`` (must consume it fully)."""
    decoder = FrameDecoder(protocols=protocols)
    frames = decoder.feed(blob)
    assert decoder.error is None, decoder.error
    assert len(frames) == 1 and decoder.buffered == 0
    return frames[0]


# -- codec layer --------------------------------------------------------------


class TestCodecs:
    def test_query_request_binary_roundtrip(self):
        blob = encode_frame_v2("query", 7, {"owner": 42})
        _, _, _, flags, _, length, _ = HEADER.unpack(blob[: HEADER.size])
        assert not flags & FLAG_JSON  # packed form, not JSON
        assert length == 8  # one u64
        frame = decode_one(blob)
        assert frame.protocol == PROTOCOL_V2
        assert frame.message == {"id": 7, "verb": "query", "owner": 42}

    def test_query_response_binary_roundtrip(self):
        blob = encode_frame_v2(
            "query",
            7,
            {"owner": 42, "providers": [3, 9, 17], "epoch": 7},
            response=True,
        )
        frame = decode_one(blob)
        assert frame.message == {
            "id": 7,
            "ok": True,
            "owner": 42,
            "providers": [3, 9, 17],
            "epoch": 7,
        }

    def test_batch_roundtrip(self):
        req = decode_one(encode_frame_v2("query-batch", 9, {"owners": [1, 2, 3]}))
        assert req.message == {"id": 9, "verb": "query-batch", "owners": [1, 2, 3]}
        resp = decode_one(
            encode_frame_v2(
                "query-batch",
                9,
                {"results": {"1": [0, 2], "2": [1]}, "epoch": 5},
                response=True,
            )
        )
        # str owner keys: byte-compatible with the v1 JSON response shape.
        assert resp.message == {
            "id": 9,
            "ok": True,
            "results": {"1": [0, 2], "2": [1]},
            "epoch": 5,
        }

    def test_unexpressible_messages_fall_back_to_json(self):
        # A non-integer owner has no binary form -- but still travels.
        blob = encode_frame_v2("query", 1, {"owner": "zero"})
        _, _, _, flags, _, _, _ = HEADER.unpack(blob[: HEADER.size])
        assert flags & FLAG_JSON
        assert decode_one(blob).message == {"id": 1, "verb": "query", "owner": "zero"}
        # Provider ids wider than u32 overflow the packed form, not the wire.
        wide = {"owner": 1, "providers": [2**40], "epoch": 0}
        blob = encode_frame_v2("query", 2, wide, response=True)
        _, _, _, flags, _, _, _ = HEADER.unpack(blob[: HEADER.size])
        assert flags & FLAG_JSON
        assert decode_one(blob).message == {"id": 2, "ok": True, **wide}

    def test_extension_verbs_carry_the_name_in_the_payload(self):
        blob = encode_frame_v2("frobnicate", 11, {"knob": 5})
        _, _, verb_id, flags, _, _, _ = HEADER.unpack(blob[: HEADER.size])
        assert verb_id == 0 and flags & FLAG_JSON
        frame = decode_one(blob)
        assert frame.message == {"id": 11, "verb": "frobnicate", "knob": 5}

    def test_error_replies_are_typed_json(self):
        reply = error_response(13, "wrong-shard", "owner 5 lives on shard 1", shard=1)
        blob = b"".join(encode_reply_v2("query", reply))
        _, _, _, flags, _, _, _ = HEADER.unpack(blob[: HEADER.size])
        assert flags & FLAG_ERROR and flags & FLAG_JSON and flags & FLAG_RESPONSE
        message = decode_one(blob).message
        assert message["ok"] is False and message["code"] == "wrong-shard"
        assert message["shard"] == 1 and message["id"] == 13

    def test_reply_with_a_non_integer_id_encodes_id_zero(self):
        # v1 answers id-less requests with id null; u64 headers say 0.
        blob = b"".join(encode_reply_v2(None, error_response(None, "bad-request", "x")))
        assert decode_one(blob).message["id"] == 0

    def test_request_id_must_be_a_u64(self):
        for bad in (-1, 2**64, True, "7", None):
            with pytest.raises(ProtocolError):
                encode_frame_v2("ping", bad)

    def test_prepared_frames_share_payload_across_request_ids(self):
        prepared = prepared_response_v2(
            "query", {"owner": 4, "providers": [1, 2], "epoch": 0}
        )
        a, b = b"".join(prepared.encode(1)), b"".join(prepared.encode(2))
        assert a[HEADER.size :] == b[HEADER.size :]
        # Only the request id field (bytes 8..16) may differ.
        assert a[:8] == b[:8] and a[16 : HEADER.size] == b[16 : HEADER.size]
        assert prepared_response_v2("stats", {"stats": {"x": 1}}).flags & FLAG_JSON

    def test_scatter_gather_batch_matches_monolithic_encoding(self):
        segments = [pack_batch_segment(1, [0, 2]), pack_batch_segment(2, [1])]
        parts = batch_response_parts(9, 5, segments)
        monolithic = encode_frame_v2(
            "query-batch",
            9,
            {"results": {"1": [0, 2], "2": [1]}, "epoch": 5},
            response=True,
        )
        assert b"".join(parts) == monolithic

    def test_oversized_batch_response_is_refused_at_encode_time(self):
        with pytest.raises(FrameTooLarge):
            batch_response_parts(1, 0, [bytes(MAX_FRAME_BYTES + 1)])


# -- golden files -------------------------------------------------------------

#: filename -> (builder producing the exact bytes, expected decoded messages)
GOLDENS = {
    "protocol_v2_ping_request.bin": (
        lambda: encode_frame_v2("ping", 1),
        [{"id": 1, "verb": "ping"}],
    ),
    "protocol_v2_query_request.bin": (
        lambda: encode_frame_v2("query", 7, {"owner": 42}),
        [{"id": 7, "verb": "query", "owner": 42}],
    ),
    "protocol_v2_batch_request.bin": (
        lambda: encode_frame_v2("query-batch", 9, {"owners": [1, 2, 3]}),
        [{"id": 9, "verb": "query-batch", "owners": [1, 2, 3]}],
    ),
    "protocol_v2_stats_request.bin": (
        lambda: encode_frame_v2("stats", 3),
        [{"id": 3, "verb": "stats"}],
    ),
    "protocol_v2_ext_request.bin": (
        lambda: encode_frame_v2("frobnicate", 11, {"knob": 5}),
        [{"id": 11, "verb": "frobnicate", "knob": 5}],
    ),
    "protocol_v2_query_response.bin": (
        lambda: encode_frame_v2(
            "query",
            7,
            {"owner": 42, "providers": [3, 9, 17], "epoch": 7},
            response=True,
        ),
        [{"id": 7, "ok": True, "owner": 42, "providers": [3, 9, 17], "epoch": 7}],
    ),
    "protocol_v2_batch_response.bin": (
        lambda: b"".join(
            batch_response_parts(
                9, 5, [pack_batch_segment(1, [0, 2]), pack_batch_segment(2, [1])]
            )
        ),
        [{"id": 9, "ok": True, "results": {"1": [0, 2], "2": [1]}, "epoch": 5}],
    ),
    "protocol_v2_error_wrong_shard.bin": (
        lambda: b"".join(
            encode_reply_v2(
                "query",
                error_response(13, "wrong-shard", "owner 5 lives on shard 1", shard=1),
            )
        ),
        [
            {
                "id": 13,
                "ok": False,
                "code": "wrong-shard",
                "error": "owner 5 lives on shard 1",
                "shard": 1,
            }
        ],
    ),
    "protocol_v1_query.bin": (
        lambda: encode_frame({"id": 7, "verb": "query", "owner": 42})
        + encode_frame(ok_response(7, owner=42, providers=[3, 9, 17], epoch=7)),
        [
            {"id": 7, "verb": "query", "owner": 42},
            {"id": 7, "ok": True, "owner": 42, "providers": [3, 9, 17], "epoch": 7},
        ],
    ),
}


class TestGoldenFiles:
    @pytest.mark.parametrize("name", sorted(GOLDENS))
    def test_reencoding_reproduces_the_pinned_bytes(self, name):
        """An encoder change that shifts the wire layout fails here first."""
        build, _ = GOLDENS[name]
        assert (DATA / name).read_bytes() == build()

    @pytest.mark.parametrize("name", sorted(GOLDENS))
    def test_pinned_bytes_decode_to_the_expected_messages(self, name):
        _, expected = GOLDENS[name]
        decoder = FrameDecoder()
        frames = decoder.feed((DATA / name).read_bytes())
        assert decoder.error is None and decoder.buffered == 0
        assert [f.message for f in frames] == expected
        want = 1 if name.startswith("protocol_v1") else PROTOCOL_V2
        assert all(f.protocol == want for f in frames)

    def test_header_layout_pinned_by_hand(self):
        """The 24-byte header, asserted against a hex literal written from
        the spec table -- independent of ``HEADER.pack``."""
        assert binascii.hexlify(encode_frame_v2("ping", 1)).decode() == (
            "65505049"  # magic "ePPI"
            "02"  # version 2
            "01"  # verb id: ping
            "0000"  # flags: request, binary payload
            "0100000000000000"  # request id 1 (u64 LE)
            "00000000"  # payload length 0
            "00000000"  # crc32 of b""
        )
        assert binascii.hexlify(
            encode_frame_v2("query", 7, {"owner": 42})
        ).decode() == (
            "65505049"
            "02"
            "04"  # verb id: query
            "0000"
            "0700000000000000"
            "08000000"  # payload: one u64
            "f7a1940d"  # crc32 of the owner field
            "2a00000000000000"  # owner 42
        )


# -- decoder fault handling ---------------------------------------------------


class TestFrameDecoder:
    def test_interleaved_protocols_in_one_chunk(self):
        blob = (
            encode_frame({"id": 1, "verb": "ping"})
            + encode_frame_v2("ping", 2)
            + encode_frame({"id": 3, "verb": "ping"})
        )
        decoder = FrameDecoder()
        frames = decoder.feed(blob)
        assert [(f.protocol, f.message["id"]) for f in frames] == [
            (1, 1),
            (2, 2),
            (1, 3),
        ]
        assert decoder.frames_decoded == {1: 2, 2: 1}

    def test_byte_at_a_time_feed(self):
        blob = encode_frame_v2("query", 5, {"owner": 9}) + encode_frame_v2("ping", 6)
        decoder = FrameDecoder()
        frames = []
        for i in range(len(blob)):
            frames.extend(decoder.feed(blob[i : i + 1]))
        assert [f.message["id"] for f in frames] == [5, 6]
        assert decoder.buffered == 0

    def test_crc_flip_poisons_with_bad_crc(self):
        blob = bytearray(encode_frame_v2("query", 5, {"owner": 9}))
        blob[HEADER.size] ^= 0xFF  # flip a payload byte, crc now stale
        decoder = FrameDecoder()
        assert decoder.feed(bytes(blob)) == []
        assert decoder.error is not None and decoder.error.code == "bad-crc"
        assert decoder.error.protocol == PROTOCOL_V2
        # Poisoned: later feeds yield nothing even for valid frames.
        assert decoder.feed(encode_frame_v2("ping", 1)) == []

    def test_frames_before_the_malformed_one_still_come_out(self):
        good = encode_frame_v2("ping", 1)
        bad = bytearray(encode_frame_v2("query", 2, {"owner": 3}))
        bad[-1] ^= 0x01
        decoder = FrameDecoder()
        frames = decoder.feed(good + bytes(bad))
        assert [f.message["id"] for f in frames] == [1]
        assert decoder.error.code == "bad-crc"

    def test_bad_version_byte(self):
        blob = bytearray(encode_frame_v2("ping", 1))
        blob[4] = 3
        decoder = FrameDecoder()
        decoder.feed(bytes(blob))
        assert decoder.error.code == "bad-version"

    def test_giant_length_rejected_from_the_header_alone(self):
        header = HEADER.pack(MAGIC, 2, 1, 0, 1, MAX_FRAME_BYTES + 1, 0)
        decoder = FrameDecoder()
        decoder.feed(header)  # no payload bytes needed to refuse
        assert decoder.error.code == "frame-too-large"

    def test_truncated_frame_is_not_an_error_yet(self):
        blob = encode_frame_v2("query", 5, {"owner": 9})
        decoder = FrameDecoder()
        assert decoder.feed(blob[:-1]) == [] and decoder.error is None
        assert decoder.buffered == len(blob) - 1
        assert [f.message["id"] for f in decoder.feed(blob[-1:])] == [5]

    def test_disabled_protocols_get_typed_refusals(self):
        v2_only = FrameDecoder(protocols=(2,))
        v2_only.feed(encode_frame({"id": 1, "verb": "ping"}))
        assert (v2_only.error.protocol, v2_only.error.code) == (1, "protocol-disabled")
        v1_only = FrameDecoder(protocols=(1,))
        v1_only.feed(encode_frame_v2("ping", 1))
        assert (v1_only.error.protocol, v1_only.error.code) == (2, "protocol-disabled")
        with pytest.raises(ValueError):
            FrameDecoder(protocols=())

    def test_v1_garbage_stays_a_v1_bad_request(self):
        decoder = FrameDecoder()
        decoder.feed(b"\x00\x00\x00\x04oops")
        assert (decoder.error.protocol, decoder.error.code) == (1, "bad-request")


# -- live-server corruption / fuzz harness ------------------------------------


def run_against_server(body, **server_kwargs):
    """Start a PPIServer on the test's index, run ``body(server)``."""

    async def main():
        server = await PPIServer(make_index(), **server_kwargs).start()
        try:
            await body(server)
        finally:
            await server.stop()

    asyncio.run(main())


async def raw_connection(server):
    return await asyncio.open_connection(*server.address)


class TestServerConformance:
    def test_pipelined_requests_answered_in_order_never_mixed(self):
        index = make_index()

        async def body(server):
            reader, writer = await raw_connection(server)
            owners = [3, 0, 7, 1, 11, 5, 2, 9]
            burst = b"".join(
                encode_frame_v2("query", 100 + k, {"owner": oid})
                for k, oid in enumerate(owners)
            )
            writer.write(burst)  # one write: one server read, one writev back
            await writer.drain()
            for k, oid in enumerate(owners):
                protocol, message = await read_any_frame(reader)
                assert protocol == PROTOCOL_V2
                assert message["id"] == 100 + k  # in order, ids never swapped
                assert message["owner"] == oid
                assert message["providers"] == index.query(oid)
            writer.close()

        run_against_server(body)

    def test_v1_and_v2_interleave_on_one_connection(self):
        async def body(server):
            reader, writer = await raw_connection(server)
            writer.write(
                encode_frame({"id": 1, "verb": "query", "owner": 4})
                + encode_frame_v2("query", 2, {"owner": 4})
            )
            await writer.drain()
            p1, m1 = await read_any_frame(reader)
            p2, m2 = await read_any_frame(reader)
            assert (p1, m1["id"]) == (1, 1) and (p2, m2["id"]) == (2, 2)
            assert m1["providers"] == m2["providers"]
            writer.close()

        run_against_server(body)

    def test_crc_flip_gets_a_typed_error_then_eof(self):
        async def body(server):
            reader, writer = await raw_connection(server)
            blob = bytearray(encode_frame_v2("query", 5, {"owner": 9}))
            blob[HEADER.size] ^= 0xFF
            writer.write(bytes(blob))
            await writer.drain()
            protocol, message = await read_any_frame(reader)
            assert protocol == PROTOCOL_V2
            assert message["ok"] is False and message["code"] == "bad-crc"
            with pytest.raises(ConnectionClosed):
                await read_any_frame(reader)  # framing lost: connection dropped
            writer.close()
            # The *server* survived; a fresh connection still works.
            reader, writer = await raw_connection(server)
            writer.write(encode_frame_v2("ping", 1))
            await writer.drain()
            _, pong = await read_any_frame(reader)
            assert pong["ok"] is True
            writer.close()

        run_against_server(body)

    def test_good_frames_in_the_same_chunk_are_answered_before_the_error(self):
        async def body(server):
            reader, writer = await raw_connection(server)
            bad = bytearray(encode_frame_v2("query", 2, {"owner": 3}))
            bad[-1] ^= 0x01
            writer.write(encode_frame_v2("ping", 1) + bytes(bad))
            await writer.drain()
            _, pong = await read_any_frame(reader)
            assert pong == {"id": 1, "ok": True}
            _, err = await read_any_frame(reader)
            assert err["ok"] is False and err["code"] == "bad-crc"
            writer.close()

        run_against_server(body)

    def test_giant_declared_length_is_refused_before_the_payload(self):
        async def body(server):
            reader, writer = await raw_connection(server)
            writer.write(HEADER.pack(MAGIC, 2, 1, 0, 1, MAX_FRAME_BYTES + 1, 0))
            await writer.drain()
            protocol, message = await read_any_frame(reader)
            assert protocol == PROTOCOL_V2
            assert message["code"] == "frame-too-large"
            writer.close()

        run_against_server(body)

    def test_bad_version_is_refused_with_a_typed_error(self):
        async def body(server):
            reader, writer = await raw_connection(server)
            blob = bytearray(encode_frame_v2("ping", 1))
            blob[4] = 9
            writer.write(bytes(blob))
            await writer.drain()
            _, message = await read_any_frame(reader)
            assert message["code"] == "bad-version"
            writer.close()

        run_against_server(body)

    def test_mid_frame_disconnect_leaves_the_server_healthy(self):
        async def body(server):
            _, writer = await raw_connection(server)
            writer.write(encode_frame_v2("query", 5, {"owner": 9})[:10])
            await writer.drain()
            writer.close()  # half a frame, then gone
            await asyncio.sleep(0)  # let the server task observe the EOF
            reader, writer = await raw_connection(server)
            writer.write(encode_frame_v2("query", 6, {"owner": 9}))
            await writer.drain()
            _, message = await read_any_frame(reader)
            assert message["ok"] is True and message["id"] == 6
            writer.close()

        run_against_server(body)

    def test_v1_pinned_server_refuses_v2_frames_typed(self):
        async def body(server):
            reader, writer = await raw_connection(server)
            writer.write(encode_frame_v2("query", 1, {"owner": 4}))
            await writer.drain()
            protocol, message = await read_any_frame(reader)
            # The refusal is spoken in the refused frame's protocol, so the
            # sender can actually parse it.
            assert protocol == PROTOCOL_V2
            assert message["code"] == "protocol-disabled"
            writer.close()

        run_against_server(body, protocols=(1,))

    def test_v2_pinned_server_refuses_v1_frames_typed(self):
        async def body(server):
            reader, writer = await raw_connection(server)
            writer.write(encode_frame({"id": 1, "verb": "ping"}))
            await writer.drain()
            protocol, message = await read_any_frame(reader)
            assert protocol == 1
            assert message["code"] == "protocol-disabled"
            writer.close()

        run_against_server(body, protocols=(2,))

    def test_per_protocol_frame_counters(self):
        async def body(server):
            reader, writer = await raw_connection(server)
            writer.write(
                encode_frame({"id": 1, "verb": "ping"})
                + encode_frame_v2("ping", 2)
                + encode_frame_v2("stats", 3)
            )
            await writer.drain()
            await read_any_frame(reader)
            await read_any_frame(reader)
            _, message = await read_any_frame(reader)
            counters = message["stats"]["counters"]
            assert counters["frames_v1_total"] == 1
            assert counters["frames_v2_total"] == 2  # ping + the stats call itself
            writer.close()

        run_against_server(body)

    def test_protocol_error_counter_increments_on_garbage(self):
        async def body(server):
            reader, writer = await raw_connection(server)
            writer.write(b"\xff\xff\xff\xff garbage")
            await writer.drain()
            protocol, message = await read_any_frame(reader)
            assert protocol == 1 and message["code"] == "bad-request"
            writer.close()
            reader, writer = await raw_connection(server)
            writer.write(encode_frame_v2("stats", 1))
            await writer.drain()
            _, message = await read_any_frame(reader)
            assert message["stats"]["counters"]["protocol_errors_total"] == 1
            writer.close()

        run_against_server(body)

    def test_warm_response_is_byte_identical_modulo_request_id(self):
        """The slab cache's zero-copy promise, observed on the wire."""

        async def body(server):
            reader, writer = await raw_connection(server)

            async def raw_reply(rid):
                writer.write(encode_frame_v2("query", rid, {"owner": 4}))
                await writer.drain()
                header = await reader.readexactly(HEADER.size)
                (length,) = struct.unpack_from("<I", header, 16)
                return header, await reader.readexactly(length)

            cold_head, cold_payload = await raw_reply(1)
            warm_head, warm_payload = await raw_reply(2)
            assert cold_payload == warm_payload
            assert cold_head[:8] == warm_head[:8]  # magic/version/verb/flags
            assert cold_head[16:] == warm_head[16:]  # length + crc
            assert struct.unpack_from("<Q", cold_head, 8)[0] == 1
            assert struct.unpack_from("<Q", warm_head, 8)[0] == 2
            assert zlib.crc32(warm_payload) == struct.unpack_from("<I", warm_head, 20)[0]
            writer.close()

        run_against_server(body)


# -- interop matrix -----------------------------------------------------------


def make_client(server, **kwargs) -> LocatorClient:
    kwargs.setdefault(
        "retry", RetryPolicy(max_retries=2, timeout_s=2.0, base_delay_s=0.005)
    )
    kwargs.setdefault("cache_size", 0)
    return LocatorClient(servers=[server.address], **kwargs)


class TestInterop:
    @pytest.mark.parametrize("protocol", ["v1", "v2", "auto"])
    def test_every_client_protocol_against_a_dual_server(self, protocol):
        index = make_index()

        async def body(server):
            client = make_client(server, protocol=protocol)
            try:
                assert await client.query(4) == index.query(4)
                batch = await client.query_batch(list(range(N_OWNERS)))
                assert batch == {j: index.query(j) for j in range(N_OWNERS)}
                assert await client.ping(server.address)
                stats = await client.stats(server.address)
                counters = stats["counters"]
                if protocol == "v1":
                    assert counters.get("frames_v2_total", 0) == 0
                    assert counters["frames_v1_total"] > 0
                else:
                    assert counters.get("frames_v1_total", 0) == 0
                    assert counters["frames_v2_total"] > 0
                assert client.protocol_downgrades == 0
            finally:
                await client.close()

        run_against_server(body)

    def test_auto_client_downgrades_once_against_a_v1_only_server(self):
        index = make_index()

        async def body(server):
            client = make_client(server, protocol="auto")
            try:
                assert await client.query(4) == index.query(4)
                assert client.protocol_downgrades == 1
                assert server.address in client._v1_only
                # Pinned: later calls speak v1 straight away, no re-probe.
                assert await client.query(7) == index.query(7)
                await client.query_batch([1, 2, 3])
                assert client.protocol_downgrades == 1
                stats = await client.stats(server.address)
                assert stats["counters"].get("frames_v2_total", 0) == 0
            finally:
                await client.close()

        run_against_server(body, protocols=(1,))

    def test_strict_v2_client_fails_loudly_against_a_v1_only_server(self):
        async def body(server):
            client = make_client(server, protocol="v2")
            try:
                with pytest.raises(TransportError, match="does not speak protocol v2"):
                    await client.query(4)
            finally:
                await client.close()

        run_against_server(body, protocols=(1,))

    def test_v1_client_against_a_v2_only_server_gets_a_typed_refusal(self):
        async def body(server):
            client = make_client(server, protocol="v1")
            try:
                with pytest.raises(RemoteError) as exc_info:
                    await client.query(4)
                assert exc_info.value.code == "protocol-disabled"
            finally:
                await client.close()

        run_against_server(body, protocols=(2,))

    def test_auto_client_against_a_v2_only_server_never_downgrades(self):
        index = make_index()

        async def body(server):
            client = make_client(server, protocol="auto")
            try:
                assert await client.query(4) == index.query(4)
                assert client.protocol_downgrades == 0
            finally:
                await client.close()

        run_against_server(body, protocols=(2,))

    def test_v1_and_v2_clients_see_identical_answers(self):
        """Both directions of the interop requirement, one truth."""

        async def body(server):
            v1 = make_client(server, protocol="v1")
            v2 = make_client(server, protocol="v2")
            try:
                for j in range(N_OWNERS):
                    assert await v1.query(j) == await v2.query(j)
                assert await v1.query_batch([0, 5, 10]) == await v2.query_batch(
                    [0, 5, 10]
                )
                with pytest.raises(RemoteError) as e1:
                    await v1.call(server.address, "query", owner="zero")
                with pytest.raises(RemoteError) as e2:
                    await v2.call(server.address, "query", owner="zero")
                assert e1.value.code == e2.value.code == "bad-request"
            finally:
                await v1.close()
                await v2.close()

        run_against_server(body)
