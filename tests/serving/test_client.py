"""LocatorClient machinery: LRU cache, pooling, retries, timeouts, routing."""

import asyncio
import random
import time

import pytest

from repro.serving import PPIServer, ShardSpec, TransportError
from repro.serving.client import ConnectionPool, LocatorClient, LRUCache, RetryPolicy


def run(coro):
    return asyncio.run(coro)


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_hit_miss_accounting(self):
        cache = LRUCache(4)
        cache.put("k", "v")
        cache.get("k")
        cache.get("nope")
        assert cache.hits == 1
        assert cache.misses == 1

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("k", "v")
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_capacity_one_holds_exactly_the_last_key(self):
        cache = LRUCache(1)
        cache.put("a", 1)
        assert cache.get("a") == 1
        cache.put("b", 2)  # evicts a immediately
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert len(cache) == 1
        # Re-putting the resident key must not evict it.
        cache.put("b", 3)
        assert cache.get("b") == 3

    def test_eviction_follows_recency_not_insertion(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key)
        # Touch in reverse insertion order: recency is now c < b < a... no:
        # get() refreshes, so after touching a, b the LRU victim is c.
        cache.get("a")
        cache.get("b")
        cache.put("d", "d")
        assert cache.get("c") is None
        assert all(cache.get(k) is not None for k in "abd")

    def test_overwrite_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # overwrite must refresh a, making b the victim
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 10
        assert cache.get("c") == 3


class TestRetryPolicy:
    def test_backoff_is_capped_and_jittered(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.3)
        rng = random.Random(0)
        delays = [policy.backoff_s(attempt, rng) for attempt in range(10)]
        assert all(0.0 <= d <= 0.3 for d in delays)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0)


class TestCaching:
    def test_repeat_queries_served_from_cache(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index).start()
            client = LocatorClient(
                [server.address],
                retry=RetryPolicy(max_retries=0, timeout_s=0.5),
                cache_size=64,
            )
            try:
                first = await client.query(0)
                for _ in range(9):
                    assert await client.query(0) == first
                assert server.metrics.counter("queries_served").value == 1
                assert client.cache.hits == 9
            finally:
                await client.close()
                await server.stop()

        run(main())

    def test_cached_lists_are_isolated_copies(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index).start()
            client = LocatorClient(
                [server.address],
                retry=RetryPolicy(max_retries=0, timeout_s=0.5),
            )
            try:
                first = await client.query(0)
                first.append(999_999)
                assert 999_999 not in await client.query(0)
            finally:
                await client.close()
                await server.stop()

        run(main())


class _FlakyServer:
    """Accepts connections but slams the door the first ``failures`` times."""

    def __init__(self, failures: int):
        self.failures = failures
        self.connections = 0
        self.server = None

    async def start(self):
        self.server = await asyncio.start_server(self._on_conn, "127.0.0.1", 0)
        return self.server.sockets[0].getsockname()[:2]

    def _on_conn(self, reader, writer):
        self.connections += 1
        if self.connections <= self.failures:
            writer.close()
            return
        asyncio.ensure_future(self._answer(reader, writer))

    async def _answer(self, reader, writer):
        from repro.serving.protocol import ok_response, read_frame, write_frame

        try:
            while True:
                message = await read_frame(reader)
                await write_frame(writer, ok_response(message["id"], pong=True))
        except Exception:
            writer.close()

    async def stop(self):
        self.server.close()
        await self.server.wait_closed()


class TestRetries:
    def test_transport_failures_retried_until_success(self):
        async def main():
            flaky = _FlakyServer(failures=2)
            addr = await flaky.start()
            client = LocatorClient(
                [addr],
                retry=RetryPolicy(
                    max_retries=3, timeout_s=0.5, base_delay_s=0.001
                ),
            )
            try:
                response = await client.call(addr, "ping")
                assert response["pong"] is True
                assert client.retries_total == 2
            finally:
                await client.close()
                await flaky.stop()

        run(main())

    def test_exhausted_retries_raise_transport_error(self):
        async def main():
            client = LocatorClient(
                [("127.0.0.1", 1)],  # nothing listens on port 1
                retry=RetryPolicy(
                    max_retries=2, timeout_s=0.2, base_delay_s=0.001
                ),
            )
            try:
                with pytest.raises(TransportError):
                    await client.call(("127.0.0.1", 1), "ping")
                assert client.retries_total == 2
            finally:
                await client.close()

        run(main())

    def test_unresponsive_server_times_out(self):
        async def main():
            # A listener that accepts and then says nothing.
            silent = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            addr = silent.sockets[0].getsockname()[:2]
            client = LocatorClient(
                [addr],
                retry=RetryPolicy(
                    max_retries=1, timeout_s=0.1, base_delay_s=0.001
                ),
            )
            try:
                started = time.monotonic()
                with pytest.raises(TransportError):
                    await client.call(addr, "ping")
                elapsed = time.monotonic() - started
                # Two attempts at 0.1 s timeout plus bounded backoff.
                assert elapsed < 2.0
            finally:
                await client.close()
                silent.close()
                await silent.wait_closed()

        run(main())


class TestConnectionPoolInternals:
    def test_released_connection_is_reused(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index).start()
            pool = ConnectionPool()
            try:
                conn = await pool.acquire(server.address)
                pool.release(server.address, conn)
                reused = await pool.acquire(server.address)
                assert reused[0] is conn[0] and reused[1] is conn[1]
            finally:
                pool.discard(conn)
                await pool.close()
                await server.stop()

        run(main())

    def test_closed_idle_connection_never_handed_back(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index).start()
            pool = ConnectionPool()
            try:
                conn = await pool.acquire(server.address)
                pool.release(server.address, conn)
                conn[1].close()  # dies while idle (server restart, LB reap...)
                fresh = await pool.acquire(server.address)
                assert fresh is not conn
                assert not fresh[1].is_closing()
                pool.discard(fresh)
            finally:
                await pool.close()
                await server.stop()

        run(main())

    def test_discarded_connection_leaves_the_pool(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index).start()
            pool = ConnectionPool()
            try:
                conn = await pool.acquire(server.address)
                pool.discard(conn)
                assert conn[1].is_closing()
                fresh = await pool.acquire(server.address)
                assert fresh is not conn
                pool.discard(fresh)
            finally:
                await pool.close()
                await server.stop()

        run(main())

    def test_idle_cap_closes_overflow_connections(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index).start()
            pool = ConnectionPool(max_idle_per_host=1)
            try:
                first = await pool.acquire(server.address)
                second = await pool.acquire(server.address)
                pool.release(server.address, first)
                pool.release(server.address, second)  # over the cap: closed
                assert not first[1].is_closing()
                assert second[1].is_closing()
            finally:
                await pool.close()
                await server.stop()

        run(main())

    def test_connection_discarded_after_transport_error(self, served_network):
        """A timed-out request orphans its in-flight response; the client
        must dial fresh instead of reusing the poisoned connection."""
        _, index = served_network

        async def main():
            # A listener that accepts and never answers: the first call
            # times out, poisoning its connection.
            silent = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            addr = silent.sockets[0].getsockname()[:2]
            client = LocatorClient(
                [addr],
                retry=RetryPolicy(max_retries=1, timeout_s=0.1, base_delay_s=0.001),
            )
            try:
                with pytest.raises(TransportError):
                    await client.call(addr, "ping")
                # Both attempts' connections were discarded, not pooled.
                assert client.pool._idle.get(tuple(addr), []) == []
            finally:
                await client.close()
                silent.close()
                await silent.wait_closed()

        run(main())


class TestWrongShardRecovery:
    def test_query_reroutes_to_shard_named_in_error(self, served_network):
        _, index = served_network

        async def main():
            shard0 = await PPIServer(index, ShardSpec(0, 2)).start()
            shard1 = await PPIServer(index, ShardSpec(1, 2)).start()
            # Misconfigured: servers list NOT in shard order.
            client = LocatorClient(
                [shard1.address, shard0.address],
                retry=RetryPolicy(max_retries=0, timeout_s=1.0),
            )
            try:
                # Owner 0 lives on shard 0; the client asks shard 1 first,
                # gets wrong-shard, refreshes its table, and recovers.
                assert await client.query(0) == index.query(0)
                assert client.wrong_shard_reroutes == 1
                assert client.routing_refreshes == 1
                assert shard1.metrics.counter("wrong_shard_total").value == 1
                # The table is fixed: shard order now matches server order.
                assert client.servers == [shard0.address, shard1.address]
                # Subsequent queries for either shard route directly.
                assert await client.query(2) == index.query(2)
                assert await client.query(3) == index.query(3)
                assert client.wrong_shard_reroutes == 1
                assert shard0.metrics.counter("wrong_shard_total").value == 0
            finally:
                await client.close()
                await shard0.stop()
                await shard1.stop()

        run(main())

    def test_query_batch_reroutes(self, served_network):
        _, index = served_network

        async def main():
            shard0 = await PPIServer(index, ShardSpec(0, 2)).start()
            shard1 = await PPIServer(index, ShardSpec(1, 2)).start()
            client = LocatorClient(
                [shard1.address, shard0.address],
                retry=RetryPolicy(max_retries=0, timeout_s=1.0),
            )
            try:
                owners = list(range(8))
                results = await client.query_batch(owners)
                assert results == {o: index.query(o) for o in owners}
                # Each shard chunk was misrouted at most once (a chunk that
                # dispatched after the other's refresh routes correctly).
                assert 1 <= client.wrong_shard_reroutes <= 2
                assert client.servers == [shard0.address, shard1.address]
            finally:
                await client.close()
                await shard0.stop()
                await shard1.stop()

        run(main())

    def test_unfixable_misrouting_surfaces_the_error(self, served_network):
        """A fleet the client cannot see completely (one address for a
        two-shard fleet) re-raises wrong-shard instead of looping."""
        from repro.serving.protocol import RemoteError

        _, index = served_network

        async def main():
            shard1 = await PPIServer(index, ShardSpec(1, 2)).start()
            client = LocatorClient(
                [shard1.address],
                retry=RetryPolicy(max_retries=0, timeout_s=1.0),
            )
            try:
                with pytest.raises(RemoteError) as excinfo:
                    await client.query(0)  # owner 0 -> shard 0, unreachable
                assert excinfo.value.code == "wrong-shard"
            finally:
                await client.close()
                await shard1.stop()

        run(main())


class TestPooling:
    def test_connections_reused_across_requests(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index).start()
            client = LocatorClient(
                [server.address],
                retry=RetryPolicy(max_retries=0, timeout_s=0.5),
                cache_size=0,
            )
            try:
                for owner in range(10):
                    await client.query(owner % index.n_owners)
                assert server.metrics.counter("connections_total").value == 1
            finally:
                await client.close()
                await server.stop()

        run(main())
