"""LocatorClient machinery: LRU cache, pooling, retries, timeouts."""

import asyncio
import random
import time

import pytest

from repro.serving import PPIServer, TransportError
from repro.serving.client import LocatorClient, LRUCache, RetryPolicy


def run(coro):
    return asyncio.run(coro)


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_hit_miss_accounting(self):
        cache = LRUCache(4)
        cache.put("k", "v")
        cache.get("k")
        cache.get("nope")
        assert cache.hits == 1
        assert cache.misses == 1

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("k", "v")
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)


class TestRetryPolicy:
    def test_backoff_is_capped_and_jittered(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.3)
        rng = random.Random(0)
        delays = [policy.backoff_s(attempt, rng) for attempt in range(10)]
        assert all(0.0 <= d <= 0.3 for d in delays)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0)


class TestCaching:
    def test_repeat_queries_served_from_cache(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index).start()
            client = LocatorClient(
                [server.address],
                retry=RetryPolicy(max_retries=0, timeout_s=0.5),
                cache_size=64,
            )
            try:
                first = await client.query(0)
                for _ in range(9):
                    assert await client.query(0) == first
                assert server.metrics.counter("queries_served").value == 1
                assert client.cache.hits == 9
            finally:
                await client.close()
                await server.stop()

        run(main())

    def test_cached_lists_are_isolated_copies(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index).start()
            client = LocatorClient(
                [server.address],
                retry=RetryPolicy(max_retries=0, timeout_s=0.5),
            )
            try:
                first = await client.query(0)
                first.append(999_999)
                assert 999_999 not in await client.query(0)
            finally:
                await client.close()
                await server.stop()

        run(main())


class _FlakyServer:
    """Accepts connections but slams the door the first ``failures`` times."""

    def __init__(self, failures: int):
        self.failures = failures
        self.connections = 0
        self.server = None

    async def start(self):
        self.server = await asyncio.start_server(self._on_conn, "127.0.0.1", 0)
        return self.server.sockets[0].getsockname()[:2]

    def _on_conn(self, reader, writer):
        self.connections += 1
        if self.connections <= self.failures:
            writer.close()
            return
        asyncio.ensure_future(self._answer(reader, writer))

    async def _answer(self, reader, writer):
        from repro.serving.protocol import ok_response, read_frame, write_frame

        try:
            while True:
                message = await read_frame(reader)
                await write_frame(writer, ok_response(message["id"], pong=True))
        except Exception:
            writer.close()

    async def stop(self):
        self.server.close()
        await self.server.wait_closed()


class TestRetries:
    def test_transport_failures_retried_until_success(self):
        async def main():
            flaky = _FlakyServer(failures=2)
            addr = await flaky.start()
            client = LocatorClient(
                [addr],
                retry=RetryPolicy(
                    max_retries=3, timeout_s=0.5, base_delay_s=0.001
                ),
            )
            try:
                response = await client.call(addr, "ping")
                assert response["pong"] is True
                assert client.retries_total == 2
            finally:
                await client.close()
                await flaky.stop()

        run(main())

    def test_exhausted_retries_raise_transport_error(self):
        async def main():
            client = LocatorClient(
                [("127.0.0.1", 1)],  # nothing listens on port 1
                retry=RetryPolicy(
                    max_retries=2, timeout_s=0.2, base_delay_s=0.001
                ),
            )
            try:
                with pytest.raises(TransportError):
                    await client.call(("127.0.0.1", 1), "ping")
                assert client.retries_total == 2
            finally:
                await client.close()

        run(main())

    def test_unresponsive_server_times_out(self):
        async def main():
            # A listener that accepts and then says nothing.
            silent = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            addr = silent.sockets[0].getsockname()[:2]
            client = LocatorClient(
                [addr],
                retry=RetryPolicy(
                    max_retries=1, timeout_s=0.1, base_delay_s=0.001
                ),
            )
            try:
                started = time.monotonic()
                with pytest.raises(TransportError):
                    await client.call(addr, "ping")
                elapsed = time.monotonic() - started
                # Two attempts at 0.1 s timeout plus bounded backoff.
                assert elapsed < 2.0
            finally:
                await client.close()
                silent.close()
                await silent.wait_closed()

        run(main())


class TestPooling:
    def test_connections_reused_across_requests(self, served_network):
        _, index = served_network

        async def main():
            server = await PPIServer(index).start()
            client = LocatorClient(
                [server.address],
                retry=RetryPolicy(max_retries=0, timeout_s=0.5),
                cache_size=0,
            )
            try:
                for owner in range(10):
                    await client.query(owner % index.n_owners)
                assert server.metrics.counter("connections_total").value == 1
            finally:
                await client.close()
                await server.stop()

        run(main())
