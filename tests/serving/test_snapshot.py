"""Snapshot format tests, pinned by golden files.

``tests/serving/data/golden_index_v1.npz`` / ``golden_index_v2.npz`` /
``golden_index_v3.npz`` (epoch 7) and the companion JSON were written
once from the deterministic matrix built by :func:`golden_matrix` below.  They are committed so that any
byte-layout drift in the snapshot writer or either reader shows up as a
failure against bits produced by an *older* build -- a same-process round
trip alone cannot catch that.
"""

import os
import zlib

import numpy as np
import pytest

from repro.core.index import PPIIndex
from repro.core.postings import PostingsIndex
from repro.serving.snapshot import (
    SNAPSHOT_FORMAT_V1,
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    inspect_snapshot,
    load_postings,
    load_serving_index,
    load_serving_state,
    load_snapshot,
    save_snapshot,
    snapshot_epoch,
    snapshot_version,
)

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")
GOLDEN_NPZ = os.path.join(DATA_DIR, "golden_index_v1.npz")
GOLDEN_NPZ_V2 = os.path.join(DATA_DIR, "golden_index_v2.npz")
GOLDEN_NPZ_V3 = os.path.join(DATA_DIR, "golden_index_v3.npz")
GOLDEN_JSON = os.path.join(DATA_DIR, "golden_index_v1.json")


def golden_matrix() -> np.ndarray:
    """The exact matrix the committed golden files were generated from."""
    i, j = np.meshgrid(np.arange(11), np.arange(23), indexing="ij")
    return ((i * 7 + j * 3) % 5 == 0).astype(np.uint8)


def golden_names() -> list:
    return [f"owner-{n:03d}" for n in range(23)]


@pytest.fixture
def index():
    rng = np.random.default_rng(7)
    matrix = (rng.random((9, 31)) < 0.3).astype(np.uint8)
    return PPIIndex(matrix, owner_names=[f"o{j}" for j in range(31)])


def _mutate(path, **replacements):
    """Rewrite an npz with some members replaced (corruption harness)."""
    with np.load(path) as archive:
        arrays = dict(archive)
    arrays.update(replacements)
    np.savez(path, **arrays)


class TestRoundTrip:
    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_matrix_and_names_survive(self, index, tmp_path, version):
        path = str(tmp_path / "snap.npz")
        save_snapshot(index, path, format_version=version)
        assert snapshot_version(path) == version
        loaded = load_snapshot(path)
        assert np.array_equal(loaded.matrix, index.matrix)
        assert loaded.owner_names == index.owner_names

    @pytest.mark.parametrize("mmap", [True, False])
    def test_v2_loads_as_postings(self, index, tmp_path, mmap):
        path = str(tmp_path / "snap.npz")
        save_snapshot(index, path)
        postings = load_postings(path, mmap=mmap)
        assert isinstance(postings, PostingsIndex)
        assert np.array_equal(postings.to_dense(), index.matrix)
        assert postings.owner_names == index.owner_names
        for j in range(index.n_owners):
            assert postings.query(j) == index.query(j)

    def test_v2_mmap_load_really_maps(self, index, tmp_path):
        path = str(tmp_path / "snap.npz")
        save_snapshot(index, path)
        postings = load_postings(path, mmap=True)
        assert isinstance(postings.indices, np.memmap)
        assert isinstance(postings.indptr, np.memmap)

    def test_v1_snapshot_still_yields_postings_via_fallback(self, index, tmp_path):
        path = str(tmp_path / "snap.npz")
        save_snapshot(index, path, format_version=1)
        postings = load_postings(path)
        assert np.array_equal(postings.to_dense(), index.matrix)

    def test_load_serving_index_picks_engine_by_version(self, index, tmp_path):
        v1, v2 = str(tmp_path / "v1.npz"), str(tmp_path / "v2.npz")
        save_snapshot(index, v1, format_version=1)
        save_snapshot(index, v2, format_version=2)
        assert isinstance(load_serving_index(v1), PPIIndex)
        assert isinstance(load_serving_index(v2), PostingsIndex)

    @pytest.mark.parametrize("epoch", [0, 1, 41])
    def test_v3_epoch_round_trips(self, index, tmp_path, epoch):
        path = str(tmp_path / "snap.npz")
        info = save_snapshot(index, path, format_version=3, epoch=epoch)
        assert info["epoch"] == epoch
        assert snapshot_epoch(path) == epoch
        assert inspect_snapshot(path)["epoch"] == epoch

    @pytest.mark.parametrize("version", [1, 2])
    def test_pre_epoch_formats_read_back_as_epoch_zero(
        self, index, tmp_path, version
    ):
        path = str(tmp_path / "snap.npz")
        save_snapshot(index, path, format_version=version)
        assert snapshot_epoch(path) == 0
        assert inspect_snapshot(path)["epoch"] == 0

    @pytest.mark.parametrize("version", [1, 2])
    def test_nonzero_epoch_on_pre_epoch_format_rejected(
        self, index, tmp_path, version
    ):
        # Silently dropping the epoch would defeat staleness detection.
        with pytest.raises(SnapshotError, match="cannot carry epoch"):
            save_snapshot(
                index, str(tmp_path / "snap.npz"), format_version=version, epoch=3
            )

    def test_negative_epoch_rejected(self, index, tmp_path):
        with pytest.raises(SnapshotError, match="epoch"):
            save_snapshot(index, str(tmp_path / "snap.npz"), epoch=-1)

    def test_load_serving_state_pairs_index_with_epoch(self, index, tmp_path):
        path = str(tmp_path / "snap.npz")
        save_snapshot(index, path, epoch=5)
        loaded, epoch = load_serving_state(path)
        assert epoch == 5
        assert isinstance(loaded, PostingsIndex)
        assert np.array_equal(loaded.to_dense(), index.matrix)
        loaded.release()

    def test_load_serving_state_on_v1_snapshot(self, index, tmp_path):
        path = str(tmp_path / "snap.npz")
        save_snapshot(index, path, format_version=1)
        loaded, epoch = load_serving_state(path)
        assert epoch == 0
        assert isinstance(loaded, PPIIndex)

    def test_save_from_postings_index(self, index, tmp_path):
        path = str(tmp_path / "snap.npz")
        save_snapshot(PostingsIndex.from_index(index), path)
        assert np.array_equal(load_snapshot(path).matrix, index.matrix)

    def test_unnamed_index_round_trips_without_names(self, tmp_path):
        index = PPIIndex(np.eye(5, dtype=np.uint8))
        path = str(tmp_path / "snap.npz")
        info = save_snapshot(index, path)
        assert info["has_owner_names"] is False
        assert load_snapshot(path).owner_names is None
        assert load_postings(path).owner_names is None

    def test_non_multiple_of_eight_cells(self, tmp_path):
        # 3 x 5 = 15 cells: packbits pads the final byte; the reader must
        # trim via count= rather than trusting the packed length.
        matrix = np.ones((3, 5), dtype=np.uint8)
        path = str(tmp_path / "snap.npz")
        save_snapshot(PPIIndex(matrix), path)
        assert np.array_equal(load_snapshot(path).matrix, matrix)

    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_empty_index(self, tmp_path, version):
        matrix = np.zeros((4, 0), dtype=np.uint8)
        path = str(tmp_path / "snap.npz")
        save_snapshot(PPIIndex(matrix), path, format_version=version)
        loaded = load_snapshot(path)
        assert loaded.n_providers == 4 and loaded.n_owners == 0
        if version == 2:
            postings = load_postings(path)
            assert postings.n_providers == 4 and postings.n_owners == 0

    def test_save_reports_inspect_summary(self, index, tmp_path):
        path = str(tmp_path / "snap.npz")
        info = save_snapshot(index, path)
        assert info == inspect_snapshot(path)
        assert info["checksum_ok"] is True
        assert info["format_version"] == SNAPSHOT_FORMAT_VERSION
        assert info["published_positives"] == int(index.matrix.sum())

    def test_unknown_write_version_rejected(self, index, tmp_path):
        with pytest.raises(SnapshotError, match="cannot write"):
            save_snapshot(index, str(tmp_path / "snap.npz"), format_version=9)


class TestGoldenFile:
    """The committed v1 bits must keep loading, byte for byte."""

    def test_golden_loads_to_the_generating_matrix(self):
        loaded = load_snapshot(GOLDEN_NPZ)
        assert np.array_equal(loaded.matrix, golden_matrix())
        assert loaded.owner_names == golden_names()

    def test_golden_matches_the_json_representation(self):
        # The snapshot and JSON codecs are independent; both committed
        # artifacts must decode to the same index.
        with open(GOLDEN_JSON) as f:
            from_json = PPIIndex.from_json(f.read())
        from_snapshot = load_snapshot(GOLDEN_NPZ)
        assert np.array_equal(from_snapshot.matrix, from_json.matrix)
        assert from_snapshot.owner_names == from_json.owner_names

    def test_golden_inspect_summary(self):
        info = inspect_snapshot(GOLDEN_NPZ)
        assert info["format_version"] == 1
        assert info["n_providers"] == 11
        assert info["n_owners"] == 23
        assert info["published_positives"] == 51
        assert info["has_owner_names"] is True
        assert info["checksum_ok"] is True

    def test_rewriting_the_golden_index_is_byte_identical_logically(self, tmp_path):
        # Not byte-identical on disk (npz timestamps), but the re-written
        # v1 archive must carry the identical packed payload and checksum.
        path = str(tmp_path / "rewrite.npz")
        save_snapshot(
            load_snapshot(GOLDEN_NPZ), path, format_version=SNAPSHOT_FORMAT_V1
        )
        with np.load(GOLDEN_NPZ) as old, np.load(path) as new:
            assert np.array_equal(old["packed"], new["packed"])
            assert np.array_equal(old["meta"], new["meta"])


class TestGoldenFileV2:
    """The committed v2 bits (packed + CSR postings) must keep loading."""

    def test_golden_v2_loads_densely_and_as_postings(self):
        assert np.array_equal(load_snapshot(GOLDEN_NPZ_V2).matrix, golden_matrix())
        postings = load_postings(GOLDEN_NPZ_V2)
        assert np.array_equal(postings.to_dense(), golden_matrix())
        assert postings.owner_names == golden_names()

    def test_golden_v2_agrees_with_golden_v1(self):
        v1, v2 = load_snapshot(GOLDEN_NPZ), load_snapshot(GOLDEN_NPZ_V2)
        assert np.array_equal(v1.matrix, v2.matrix)
        assert v1.owner_names == v2.owner_names

    def test_golden_v2_inspect_summary(self):
        info = inspect_snapshot(GOLDEN_NPZ_V2)
        assert info["format_version"] == 2
        assert info["published_positives"] == 51
        assert info["checksum_ok"] is True

    def test_rewriting_the_golden_v2_is_byte_identical_logically(self, tmp_path):
        path = str(tmp_path / "rewrite.npz")
        save_snapshot(load_snapshot(GOLDEN_NPZ_V2), path, format_version=2)
        with np.load(GOLDEN_NPZ_V2) as old, np.load(path) as new:
            for key in ("meta", "packed", "indptr", "indices"):
                assert np.array_equal(old[key], new[key]), key


class TestGoldenFileV3:
    """The committed v3 bits (v2 + trailing epoch) must keep loading."""

    def test_golden_v3_loads_and_carries_its_epoch(self):
        assert np.array_equal(load_snapshot(GOLDEN_NPZ_V3).matrix, golden_matrix())
        assert snapshot_epoch(GOLDEN_NPZ_V3) == 7
        postings, epoch = load_serving_state(GOLDEN_NPZ_V3)
        assert epoch == 7
        assert np.array_equal(postings.to_dense(), golden_matrix())
        assert postings.owner_names == golden_names()
        postings.release()

    def test_golden_v3_agrees_with_golden_v2(self):
        v2, v3 = load_snapshot(GOLDEN_NPZ_V2), load_snapshot(GOLDEN_NPZ_V3)
        assert np.array_equal(v2.matrix, v3.matrix)
        assert v2.owner_names == v3.owner_names

    def test_golden_v3_inspect_summary(self):
        info = inspect_snapshot(GOLDEN_NPZ_V3)
        assert info["format_version"] == 3
        assert info["epoch"] == 7
        assert info["published_positives"] == 51
        assert info["checksum_ok"] is True

    def test_rewriting_the_golden_v3_is_byte_identical_logically(self, tmp_path):
        path = str(tmp_path / "rewrite.npz")
        save_snapshot(load_snapshot(GOLDEN_NPZ_V3), path, format_version=3, epoch=7)
        with np.load(GOLDEN_NPZ_V3) as old, np.load(path) as new:
            for key in ("meta", "packed", "indptr", "indices"):
                assert np.array_equal(old[key], new[key]), key


class TestRejection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_snapshot(str(tmp_path / "nope.npz"))

    def test_not_an_npz(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"definitely not a zip archive")
        with pytest.raises(SnapshotError):
            load_snapshot(str(path))

    def test_npz_missing_keys(self, tmp_path):
        path = str(tmp_path / "empty.npz")
        np.savez(path, unrelated=np.arange(3))
        with pytest.raises(SnapshotError, match="missing keys"):
            load_snapshot(path)

    def test_unsupported_version(self, index, tmp_path):
        path = str(tmp_path / "snap.npz")
        save_snapshot(index, path)
        with np.load(path) as archive:
            arrays = dict(archive)
        arrays["meta"] = arrays["meta"].copy()
        arrays["meta"][0] = SNAPSHOT_FORMAT_VERSION + 1
        np.savez(path, **arrays)
        with pytest.raises(SnapshotError, match="version 4 unsupported"):
            load_snapshot(path)
        with pytest.raises(SnapshotError, match="version 4 unsupported"):
            load_postings(path)

    @pytest.mark.parametrize("version", [1, 2])
    def test_corrupted_payload_fails_checksum(self, index, tmp_path, version):
        path = str(tmp_path / "snap.npz")
        save_snapshot(index, path, format_version=version)
        with np.load(path) as archive:
            packed = archive["packed"].copy()
        packed[0] ^= 0xFF
        _mutate(path, packed=packed)
        with pytest.raises(SnapshotError, match="checksum"):
            load_snapshot(path)
        assert inspect_snapshot(path)["checksum_ok"] is False

    def test_truncated_payload_rejected(self, index, tmp_path):
        path = str(tmp_path / "snap.npz")
        save_snapshot(index, path, format_version=1)
        with np.load(path) as archive:
            arrays = dict(archive)
        short = arrays["packed"][:-2].copy()
        meta = arrays["meta"].copy()
        meta[3] = zlib.crc32(short.tobytes())  # keep checksum valid
        _mutate(path, packed=short, meta=meta)
        with pytest.raises(SnapshotError, match="truncated"):
            load_snapshot(path)

    @pytest.mark.parametrize("mmap", [True, False])
    def test_corrupted_postings_fail_their_checksum(self, index, tmp_path, mmap):
        path = str(tmp_path / "snap.npz")
        save_snapshot(index, path)
        with np.load(path) as archive:
            indices = archive["indices"].copy()
        indices[0] += 1
        _mutate(path, indices=indices)
        with pytest.raises(SnapshotError, match="postings checksum"):
            load_postings(path, mmap=mmap)
        assert inspect_snapshot(path)["checksum_ok"] is False
        # The dense payload is intact, so the dense reader still works.
        assert np.array_equal(load_snapshot(path).matrix, index.matrix)

    def test_truncated_postings_rejected(self, index, tmp_path):
        path = str(tmp_path / "snap.npz")
        save_snapshot(index, path)
        with np.load(path) as archive:
            indices = archive["indices"].copy()
        _mutate(path, indices=indices[:-3])
        with pytest.raises(SnapshotError, match="malformed postings"):
            load_postings(path)

    def test_v2_missing_postings_arrays_rejected(self, index, tmp_path):
        path = str(tmp_path / "snap.npz")
        save_snapshot(index, path)
        with np.load(path) as archive:
            arrays = dict(archive)
        del arrays["indices"]
        np.savez(path, **arrays)
        with pytest.raises(SnapshotError, match="postings arrays"):
            load_postings(path)

    def test_failed_write_leaves_no_temp_file(self, tmp_path, monkeypatch):
        index = PPIIndex(np.eye(3, dtype=np.uint8))
        path = str(tmp_path / "snap.npz")

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            save_snapshot(index, path)
        assert os.listdir(tmp_path) == []


class TestMmapFallback:
    def test_compressed_members_fall_back_to_copying_load(self, index, tmp_path):
        # A hand-rolled deflated archive (savez_compressed) is still a
        # valid snapshot -- just not mmap-able; the loader must cope.
        path = str(tmp_path / "snap.npz")
        save_snapshot(index, path)
        with np.load(path) as archive:
            arrays = dict(archive)
        np.savez_compressed(path, **arrays)
        postings = load_postings(path, mmap=True)
        assert not isinstance(postings.indices, np.memmap)
        assert np.array_equal(postings.to_dense(), index.matrix)
