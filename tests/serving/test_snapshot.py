"""Snapshot format tests, pinned by golden files.

``tests/serving/data/golden_index_v1.npz`` and its companion JSON were
written once from the deterministic matrix built by :func:`golden_matrix`
below.  They are committed so that any byte-layout drift in the snapshot
writer or reader shows up as a failure against bits produced by an *older*
build -- a same-process round trip alone cannot catch that.
"""

import os
import zlib

import numpy as np
import pytest

from repro.core.index import PPIIndex
from repro.serving.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    inspect_snapshot,
    load_snapshot,
    save_snapshot,
)

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")
GOLDEN_NPZ = os.path.join(DATA_DIR, "golden_index_v1.npz")
GOLDEN_JSON = os.path.join(DATA_DIR, "golden_index_v1.json")


def golden_matrix() -> np.ndarray:
    """The exact matrix the committed golden files were generated from."""
    i, j = np.meshgrid(np.arange(11), np.arange(23), indexing="ij")
    return ((i * 7 + j * 3) % 5 == 0).astype(np.uint8)


def golden_names() -> list:
    return [f"owner-{n:03d}" for n in range(23)]


@pytest.fixture
def index():
    rng = np.random.default_rng(7)
    matrix = (rng.random((9, 31)) < 0.3).astype(np.uint8)
    return PPIIndex(matrix, owner_names=[f"o{j}" for j in range(31)])


class TestRoundTrip:
    def test_matrix_and_names_survive(self, index, tmp_path):
        path = str(tmp_path / "snap.npz")
        save_snapshot(index, path)
        loaded = load_snapshot(path)
        assert np.array_equal(loaded.matrix, index.matrix)
        assert loaded.owner_names == index.owner_names

    def test_unnamed_index_round_trips_without_names(self, tmp_path):
        index = PPIIndex(np.eye(5, dtype=np.uint8))
        path = str(tmp_path / "snap.npz")
        info = save_snapshot(index, path)
        assert info["has_owner_names"] is False
        assert load_snapshot(path).owner_names is None

    def test_non_multiple_of_eight_cells(self, tmp_path):
        # 3 x 5 = 15 cells: packbits pads the final byte; the reader must
        # trim via count= rather than trusting the packed length.
        matrix = np.ones((3, 5), dtype=np.uint8)
        path = str(tmp_path / "snap.npz")
        save_snapshot(PPIIndex(matrix), path)
        assert np.array_equal(load_snapshot(path).matrix, matrix)

    def test_empty_index(self, tmp_path):
        matrix = np.zeros((4, 0), dtype=np.uint8)
        path = str(tmp_path / "snap.npz")
        save_snapshot(PPIIndex(matrix), path)
        loaded = load_snapshot(path)
        assert loaded.n_providers == 4 and loaded.n_owners == 0

    def test_save_reports_inspect_summary(self, index, tmp_path):
        path = str(tmp_path / "snap.npz")
        info = save_snapshot(index, path)
        assert info == inspect_snapshot(path)
        assert info["checksum_ok"] is True
        assert info["format_version"] == SNAPSHOT_FORMAT_VERSION
        assert info["published_positives"] == int(index.matrix.sum())


class TestGoldenFile:
    """The committed v1 bits must keep loading, byte for byte."""

    def test_golden_loads_to_the_generating_matrix(self):
        loaded = load_snapshot(GOLDEN_NPZ)
        assert np.array_equal(loaded.matrix, golden_matrix())
        assert loaded.owner_names == golden_names()

    def test_golden_matches_the_json_representation(self):
        # The snapshot and JSON codecs are independent; both committed
        # artifacts must decode to the same index.
        with open(GOLDEN_JSON) as f:
            from_json = PPIIndex.from_json(f.read())
        from_snapshot = load_snapshot(GOLDEN_NPZ)
        assert np.array_equal(from_snapshot.matrix, from_json.matrix)
        assert from_snapshot.owner_names == from_json.owner_names

    def test_golden_inspect_summary(self):
        info = inspect_snapshot(GOLDEN_NPZ)
        assert info["format_version"] == 1
        assert info["n_providers"] == 11
        assert info["n_owners"] == 23
        assert info["published_positives"] == 51
        assert info["has_owner_names"] is True
        assert info["checksum_ok"] is True

    def test_rewriting_the_golden_index_is_byte_identical_logically(self, tmp_path):
        # Not byte-identical on disk (npz timestamps), but the re-written
        # archive must carry the identical packed payload and checksum.
        path = str(tmp_path / "rewrite.npz")
        save_snapshot(load_snapshot(GOLDEN_NPZ), path)
        with np.load(GOLDEN_NPZ) as old, np.load(path) as new:
            assert np.array_equal(old["packed"], new["packed"])
            assert np.array_equal(old["meta"], new["meta"])


class TestRejection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_snapshot(str(tmp_path / "nope.npz"))

    def test_not_an_npz(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"definitely not a zip archive")
        with pytest.raises(SnapshotError):
            load_snapshot(str(path))

    def test_npz_missing_keys(self, tmp_path):
        path = str(tmp_path / "empty.npz")
        np.savez(path, unrelated=np.arange(3))
        with pytest.raises(SnapshotError, match="missing keys"):
            load_snapshot(path)

    def test_unsupported_version(self, index, tmp_path):
        path = str(tmp_path / "snap.npz")
        save_snapshot(index, path)
        with np.load(path) as archive:
            arrays = dict(archive)
        arrays["meta"] = arrays["meta"].copy()
        arrays["meta"][0] = SNAPSHOT_FORMAT_VERSION + 1
        np.savez(path, **arrays)
        with pytest.raises(SnapshotError, match="version 2 unsupported"):
            load_snapshot(path)

    def test_corrupted_payload_fails_checksum(self, index, tmp_path):
        path = str(tmp_path / "snap.npz")
        save_snapshot(index, path)
        with np.load(path) as archive:
            arrays = dict(archive)
        arrays["packed"] = arrays["packed"].copy()
        arrays["packed"][0] ^= 0xFF
        np.savez(path, **arrays)
        with pytest.raises(SnapshotError, match="checksum"):
            load_snapshot(path)
        assert inspect_snapshot(path)["checksum_ok"] is False

    def test_truncated_payload_rejected(self, index, tmp_path):
        path = str(tmp_path / "snap.npz")
        save_snapshot(index, path)
        with np.load(path) as archive:
            arrays = dict(archive)
        short = arrays["packed"][:-2].copy()
        arrays["packed"] = short
        arrays["meta"] = arrays["meta"].copy()
        arrays["meta"][3] = zlib.crc32(short.tobytes())  # keep checksum valid
        np.savez(path, **arrays)
        with pytest.raises(SnapshotError, match="truncated"):
            load_snapshot(path)

    def test_failed_write_leaves_no_temp_file(self, tmp_path, monkeypatch):
        index = PPIIndex(np.eye(3, dtype=np.uint8))
        path = str(tmp_path / "snap.npz")

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            save_snapshot(index, path)
        assert os.listdir(tmp_path) == []
