"""End-to-end serving tests: the paper's two-phase search over real TCP.

The locator invariant under test is the paper's: every search must reach
*every* provider that truly holds the owner's records (100 % recall --
noise may only add contacts, never hide true positives), and the runtime
must degrade gracefully -- a dead provider is recorded as failed, never
hung on.
"""

import asyncio

from repro.core.authsearch import AccessControl
from repro.serving import ProviderEndpoint, RetryPolicy

from .conftest import cluster


def run(coro):
    return asyncio.run(coro)


class TestTwoPhaseSearch:
    def test_full_recall_with_noise_contacts(self, served_network):
        network, index = served_network
        matrix = network.membership_matrix()

        async def main():
            async with cluster(network, index, n_shards=2) as c:
                client = c.client()
                try:
                    noise_contacts = 0
                    for owner in range(network.n_owners):
                        report = await client.search(owner)
                        true_set = matrix.providers_of(owner)
                        # The paper's invariant: obscured, never lossy.
                        assert set(report.positive_providers) == set(true_set)
                        assert not report.failed_providers
                        assert not report.denied_providers
                        # Records really came back, one per delegation.
                        assert {r.owner_id for r in report.records} == (
                            {owner} if true_set else set()
                        )
                        noise_contacts += len(report.noise_providers)
                    # The index was built with nontrivial epsilons: noise
                    # providers must exist somewhere in the workload.
                    assert noise_contacts > 0
                finally:
                    await client.close()

        run(main())

    def test_search_respects_acls(self, served_network):
        network, index = served_network
        matrix = network.membership_matrix()
        # Provider 0 trusts nobody: every contact to it must be denied.
        acls = {0: AccessControl()}

        async def main():
            async with cluster(network, index, acls=acls) as c:
                client = c.client()
                try:
                    saw_denial = False
                    for owner in range(network.n_owners):
                        report = await client.search(owner)
                        assert set(report.denied_providers) <= {0}
                        saw_denial |= bool(report.denied_providers)
                        expected = set(matrix.providers_of(owner)) - {0}
                        assert set(report.positive_providers) == expected
                    assert saw_denial
                finally:
                    await client.close()

        run(main())

    def test_search_metrics_consistent_across_fleet(self, served_network):
        network, index = served_network

        async def main():
            async with cluster(network, index) as c:
                client = c.client(cache_size=0)
                try:
                    owners = list(range(network.n_owners))
                    contacted = 0
                    for owner in owners:
                        report = await client.search(owner)
                        contacted += report.contacted
                    stats = await client.stats(c.servers[0].address)
                    assert stats["counters"]["queries_served"] == len(owners)
                    fleet_searches = 0
                    for endpoint in c.providers.values():
                        snap = await client.stats(endpoint.address)
                        fleet_searches += snap["counters"].get(
                            "searches_served", 0
                        )
                    assert fleet_searches == contacted
                finally:
                    await client.close()

        run(main())


class TestFaultInjection:
    def test_dead_provider_recorded_not_hung(self, served_network):
        network, index = served_network
        matrix = network.membership_matrix()

        async def main():
            async with cluster(network, index) as c:
                client = c.client(
                    retry=RetryPolicy(
                        max_retries=1, timeout_s=0.15, base_delay_s=0.005
                    )
                )
                try:
                    # Pick an owner with >= 2 true providers, kill one of them.
                    owner = next(
                        j for j in range(network.n_owners)
                        if len(matrix.providers_of(j)) >= 2
                    )
                    victim = min(matrix.providers_of(owner))
                    await c.providers[victim].stop()

                    report = await asyncio.wait_for(
                        client.search(owner), timeout=5.0
                    )
                    assert victim in report.failed_providers
                    expected = set(matrix.providers_of(owner)) - {victim}
                    assert set(report.positive_providers) == expected
                finally:
                    await client.close()

        run(main())

    def test_provider_restart_restores_coverage(self, served_network):
        network, index = served_network
        matrix = network.membership_matrix()

        async def main():
            async with cluster(network, index) as c:
                client = c.client(
                    retry=RetryPolicy(
                        max_retries=1, timeout_s=0.15, base_delay_s=0.005
                    )
                )
                try:
                    owner = next(
                        j for j in range(network.n_owners)
                        if len(matrix.providers_of(j)) >= 2
                    )
                    victim = min(matrix.providers_of(owner))
                    port = c.providers[victim].port
                    await c.providers[victim].stop()

                    degraded = await asyncio.wait_for(
                        client.search(owner), timeout=5.0
                    )
                    assert victim in degraded.failed_providers

                    # Bring the provider back on the same port; the very
                    # next search recovers full coverage (client state is
                    # per-request, nothing needs resetting).
                    revived = ProviderEndpoint(
                        network.providers[victim],
                        AccessControl(trusted={"searcher"}),
                        port=port,
                    )
                    await revived.start()
                    try:
                        healed = await asyncio.wait_for(
                            client.search(owner), timeout=5.0
                        )
                        assert not healed.failed_providers
                        assert set(healed.positive_providers) == set(
                            matrix.providers_of(owner)
                        )
                    finally:
                        await revived.stop()
                finally:
                    await client.close()

        run(main())

    def test_all_servers_down_degrades_to_empty_report(self, served_network):
        network, index = served_network

        async def main():
            async with cluster(network, index) as c:
                client = c.client(
                    retry=RetryPolicy(
                        max_retries=1, timeout_s=0.1, base_delay_s=0.005
                    )
                )
                try:
                    await c.servers[0].stop()
                    report = await asyncio.wait_for(
                        client.search(0), timeout=5.0
                    )
                    assert report.contacted == 0
                    assert not report.records
                finally:
                    await client.close()

        run(main())
