"""Metric primitives: counters, gauges, reservoir histograms, registry."""

import pytest

from repro.serving.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 99.0) == 0.0

    def test_single_value(self):
        assert percentile([5.0], 50.0) == 5.0
        assert percentile([5.0], 99.0) == 5.0

    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 50.0) == 51.0  # nearest-rank on 0..99
        assert percentile(values, 100.0) == 100.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)

    def test_low_quantile_edges(self):
        # q=1 on a small sample nearest-ranks to the first element; the
        # empty-list short-circuit must win over range validation.
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 1.0) == 1.0
        assert percentile(values, 99.0) == 4.0
        assert percentile([], -5.0) == 0.0

    def test_two_samples_split_at_the_midpoint(self):
        assert percentile([1.0, 2.0], 0.0) == 1.0
        assert percentile([1.0, 2.0], 49.0) == 1.0
        assert percentile([1.0, 2.0], 51.0) == 2.0
        assert percentile([1.0, 2.0], 100.0) == 2.0


class TestCounterGauge:
    def test_counter_monotone(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge()
        g.inc()
        g.inc()
        g.dec()
        assert g.value == 1.0
        g.set(7.5)
        assert g.value == 7.5


class TestHistogram:
    def test_exact_below_reservoir_cap(self):
        h = Histogram(max_samples=1000)
        for v in range(100):
            h.observe(float(v))
        assert h.count == 100
        assert h.total == sum(range(100))
        q = h.quantiles()
        assert q["p50"] <= q["p95"] <= q["p99"]
        assert q["p99"] >= 95.0

    def test_count_and_sum_exact_past_cap(self):
        h = Histogram(max_samples=16)
        for v in range(1000):
            h.observe(1.0)
        assert h.count == 1000
        assert h.total == 1000.0
        assert h.quantiles()["p50"] == 1.0

    def test_reservoir_stays_representative(self):
        h = Histogram(max_samples=256)
        for v in range(10_000):
            h.observe(float(v))
        # A uniform sample of a uniform ramp: the median estimate must land
        # well inside the middle half.
        assert 2500 < h.quantiles()["p50"] < 7500

    def test_empty_histogram_quantiles_are_zero(self):
        h = Histogram()
        q = h.quantiles()
        assert q["p50"] == q["p95"] == q["p99"] == 0.0
        assert h.count == 0
        assert h.snapshot()["mean"] == 0.0

    def test_single_sample_pins_every_quantile(self):
        h = Histogram()
        h.observe(3.5)
        q = h.quantiles()
        assert q["p50"] == q["p95"] == q["p99"] == 3.5

    def test_snapshot_shape(self):
        h = Histogram()
        h.observe(2.0)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["sum"] == 2.0
        assert snap["mean"] == 2.0
        assert set(snap) >= {"p50", "p95", "p99"}


class TestRegistry:
    def test_lazily_created_and_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_snapshot_is_json_plain(self):
        import json

        reg = MetricsRegistry()
        reg.counter("requests").inc(3)
        reg.gauge("inflight").set(2)
        reg.histogram("latency").observe(0.5)
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["counters"]["requests"] == 3
        assert snap["gauges"]["inflight"] == 2.0
        assert snap["histograms"]["latency"]["count"] == 1

    def test_get_helper(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        assert reg.get("counter", "x") == 1.0
        assert reg.get("counter", "missing") is None
        assert reg.get("nope", "x") is None
