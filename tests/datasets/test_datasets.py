"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    exact_frequency_matrix,
    make_dataset,
    tiered_epsilons,
    uniform_epsilons,
    zipf_matrix,
)
from repro.datasets.trec_like import TrecLikeConfig, build_trec_like_network
from repro.datasets.workload import popularity_workload, uniform_workload


class TestZipfMatrix:
    def test_shape(self, np_rng):
        matrix = zipf_matrix(50, 200, np_rng)
        assert matrix.n_providers == 50
        assert matrix.n_owners == 200

    def test_frequencies_capped(self, np_rng):
        matrix = zipf_matrix(100, 300, np_rng, max_fraction=0.1)
        freqs = [matrix.frequency(j) for j in range(300)]
        assert max(freqs) <= 10
        assert min(freqs) >= 1

    def test_heavy_tail(self, np_rng):
        """Zipf skew: most identities rare, a few popular."""
        matrix = zipf_matrix(100, 1000, np_rng, max_fraction=0.2)
        freqs = np.array([matrix.frequency(j) for j in range(1000)])
        assert np.median(freqs) <= 2
        assert freqs.max() >= 5

    def test_invalid_shape_rejected(self, np_rng):
        with pytest.raises(ValueError):
            zipf_matrix(0, 10, np_rng)


class TestExactFrequencyMatrix:
    def test_exact_frequencies(self, np_rng):
        matrix = exact_frequency_matrix(20, [0, 1, 5, 20], np_rng)
        assert [matrix.frequency(j) for j in range(4)] == [0, 1, 5, 20]

    def test_out_of_range_rejected(self, np_rng):
        with pytest.raises(ValueError):
            exact_frequency_matrix(5, [6], np_rng)

    def test_providers_distinct(self, np_rng):
        matrix = exact_frequency_matrix(10, [7], np_rng)
        assert len(matrix.providers_of(0)) == 7


class TestEpsilonGenerators:
    def test_uniform_in_range(self, np_rng):
        eps = uniform_epsilons(500, np_rng)
        assert np.all((eps >= 0) & (eps <= 1))

    def test_tiered_counts(self, np_rng):
        eps = tiered_epsilons(1000, np_rng, vip_fraction=0.1)
        assert np.sum(eps == 0.95) == 100
        assert np.sum(eps == 0.5) == 900

    def test_tiered_validation(self, np_rng):
        with pytest.raises(ValueError):
            tiered_epsilons(10, np_rng, vip_fraction=1.5)

    def test_make_dataset_reproducible(self):
        a = make_dataset(30, 100, seed=7)
        b = make_dataset(30, 100, seed=7)
        assert np.array_equal(a.matrix.to_dense(), b.matrix.to_dense())
        assert np.array_equal(a.epsilons, b.epsilons)


class TestTrecLike:
    def test_network_structure(self):
        config = TrecLikeConfig(n_providers=20, n_owners=50)
        net = build_trec_like_network(config, seed=1)
        assert net.n_providers == 20
        assert net.n_owners == 50
        assert net.providers[0].name.startswith("collection-")
        assert net.owners[0].name.endswith(".example.org")

    def test_records_delegated(self):
        config = TrecLikeConfig(n_providers=10, n_owners=30)
        net = build_trec_like_network(config, seed=2)
        matrix = net.membership_matrix()
        assert matrix.total_memberships > 0

    def test_heavy_tailed_hosts(self):
        config = TrecLikeConfig(n_providers=40, n_owners=100, attachment=0.8)
        net = build_trec_like_network(config, seed=3)
        matrix = net.membership_matrix()
        freqs = sorted(
            (matrix.frequency(j) for j in range(100)), reverse=True
        )
        # preferential attachment: head clearly heavier than the median.
        assert freqs[0] >= 2 * max(1, freqs[50])

    def test_epsilon_range_respected(self):
        config = TrecLikeConfig(
            n_providers=5, n_owners=20, epsilon_low=0.4, epsilon_high=0.6
        )
        net = build_trec_like_network(config, seed=4)
        eps = net.epsilons()
        assert np.all((eps >= 0.4) & (eps <= 0.6))

    def test_reproducible(self):
        config = TrecLikeConfig(n_providers=10, n_owners=20)
        a = build_trec_like_network(config, seed=5).membership_matrix()
        b = build_trec_like_network(config, seed=5).membership_matrix()
        assert np.array_equal(a.to_dense(), b.to_dense())


class TestWorkloads:
    def test_uniform_ids_in_range(self, np_rng):
        w = uniform_workload(50, 200, np_rng)
        assert len(w) == 200
        assert w.owner_ids.min() >= 0 and w.owner_ids.max() < 50

    def test_popularity_skews_to_frequent(self, np_rng):
        freqs = np.array([100, 0, 0, 0])
        w = popularity_workload(freqs, 1000, np_rng)
        counts = np.bincount(w.owner_ids, minlength=4)
        assert counts[0] > 0.9 * 1000

    def test_popularity_smoothing_allows_absent(self, np_rng):
        freqs = np.array([0, 0])
        w = popularity_workload(freqs, 100, np_rng)
        assert len(w) == 100
