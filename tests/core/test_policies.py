"""Tests for the β-calculation policies (Eq. 3/4/5, Thm. 3.1)."""

import numpy as np
import pytest

from repro.core.errors import PolicyError
from repro.core.policies import (
    BasicPolicy,
    ChernoffPolicy,
    IncrementedExpectationPolicy,
    basic_beta,
    chernoff_beta,
    frequency_threshold,
    sigma_threshold,
)


class TestBasicBeta:
    def test_equation3_formula(self):
        # beta_b = [(sigma^-1 - 1)(eps^-1 - 1)]^-1
        sigma, eps = 0.01, 0.5
        expected = 1.0 / ((1 / sigma - 1) * (1 / eps - 1))
        assert basic_beta(sigma, eps) == pytest.approx(expected)

    def test_paper_closed_form_identity(self):
        """beta_b expressed via Eq. 3's derivation: eps = (1-s)b / ((1-s)b + s)."""
        sigma, eps = 0.05, 0.7
        beta = basic_beta(sigma, eps)
        achieved = ((1 - sigma) * beta) / ((1 - sigma) * beta + sigma)
        assert achieved == pytest.approx(eps)

    def test_zero_sigma_gives_zero(self):
        assert basic_beta(0.0, 0.5) == 0.0

    def test_zero_epsilon_gives_zero(self):
        assert basic_beta(0.5, 0.0) == 0.0

    def test_full_sigma_gives_one(self):
        assert basic_beta(1.0, 0.5) == 1.0

    def test_full_epsilon_gives_one(self):
        assert basic_beta(0.5, 1.0) == 1.0

    def test_clamped_to_one(self):
        assert basic_beta(0.9, 0.9) == 1.0

    def test_monotone_in_sigma(self):
        betas = [basic_beta(s, 0.5) for s in (0.01, 0.1, 0.3, 0.6)]
        assert betas == sorted(betas)

    def test_monotone_in_epsilon(self):
        betas = [basic_beta(0.1, e) for e in (0.1, 0.4, 0.7, 0.95)]
        assert betas == sorted(betas)

    @pytest.mark.parametrize("sigma,eps", [(-0.1, 0.5), (1.1, 0.5), (0.5, -1), (0.5, 2)])
    def test_range_validation(self, sigma, eps):
        with pytest.raises(PolicyError):
            basic_beta(sigma, eps)


class TestChernoffBeta:
    def test_equation5_formula(self):
        import math

        sigma, eps, gamma, m = 0.01, 0.5, 0.9, 10000
        beta_b = basic_beta(sigma, eps)
        g = math.log(1 / (1 - gamma)) / ((1 - sigma) * m)
        expected = beta_b + g + math.sqrt(g * g + 2 * beta_b * g)
        assert chernoff_beta(sigma, eps, gamma, m) == pytest.approx(expected)

    def test_exceeds_basic(self):
        assert chernoff_beta(0.01, 0.5, 0.9, 1000) > basic_beta(0.01, 0.5)

    def test_higher_gamma_higher_beta(self):
        b1 = chernoff_beta(0.01, 0.5, 0.8, 1000)
        b2 = chernoff_beta(0.01, 0.5, 0.99, 1000)
        assert b2 > b1

    def test_more_providers_tighter(self):
        """With more providers the concentration is tighter, so the bump over
        beta_b shrinks."""
        bump_small = chernoff_beta(0.01, 0.5, 0.9, 100) - basic_beta(0.01, 0.5)
        bump_large = chernoff_beta(0.01, 0.5, 0.9, 100000) - basic_beta(0.01, 0.5)
        assert bump_large < bump_small

    def test_gamma_must_exceed_half(self):
        with pytest.raises(PolicyError):
            chernoff_beta(0.1, 0.5, 0.5, 100)
        with pytest.raises(PolicyError):
            chernoff_beta(0.1, 0.5, 1.0, 100)

    def test_zero_cases(self):
        assert chernoff_beta(0.0, 0.5, 0.9, 100) == 0.0
        assert chernoff_beta(0.1, 0.0, 0.9, 100) == 0.0

    def test_clamped_to_one(self):
        assert chernoff_beta(0.99, 0.99, 0.9, 10) == 1.0


class TestPolicyClasses:
    def test_basic_policy_matches_function(self):
        p = BasicPolicy()
        assert p.beta(0.05, 0.6, 100) == basic_beta(0.05, 0.6)

    def test_incremented_policy_adds_delta(self):
        p = IncrementedExpectationPolicy(delta=0.02)
        assert p.beta(0.05, 0.6, 100) == pytest.approx(basic_beta(0.05, 0.6) + 0.02)

    def test_incremented_policy_keeps_zero_at_zero(self):
        """Absent identities must not get noise published for them."""
        p = IncrementedExpectationPolicy(delta=0.02)
        assert p.beta(0.0, 0.6, 100) == 0.0

    def test_incremented_negative_delta_rejected(self):
        with pytest.raises(PolicyError):
            IncrementedExpectationPolicy(delta=-0.01)

    def test_chernoff_policy_matches_function(self):
        p = ChernoffPolicy(gamma=0.9)
        assert p.beta(0.05, 0.6, 100) == chernoff_beta(0.05, 0.6, 0.9, 100)

    def test_chernoff_gamma_validated(self):
        with pytest.raises(PolicyError):
            ChernoffPolicy(gamma=0.3)

    def test_policy_names(self):
        assert BasicPolicy().name == "basic"
        assert IncrementedExpectationPolicy().name == "inc-exp"
        assert ChernoffPolicy().name == "chernoff"


class TestVectorized:
    @pytest.mark.parametrize(
        "policy",
        [BasicPolicy(), IncrementedExpectationPolicy(0.03), ChernoffPolicy(0.95)],
    )
    def test_vector_matches_scalar(self, policy):
        sigmas = np.array([0.0, 0.001, 0.01, 0.1, 0.5, 0.99, 1.0])
        epsilons = np.array([0.5, 0.0, 0.3, 0.8, 1.0, 0.9, 0.4])
        vec = policy.beta_vector(sigmas, epsilons, 1000)
        for i in range(len(sigmas)):
            assert vec[i] == pytest.approx(
                policy.beta(float(sigmas[i]), float(epsilons[i]), 1000)
            ), (sigmas[i], epsilons[i])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(PolicyError):
            BasicPolicy().beta_vector(np.zeros(3), np.zeros(4), 100)

    def test_vector_in_unit_interval(self):
        rng = np.random.default_rng(1)
        sigmas, epsilons = rng.random(100), rng.random(100)
        for policy in (BasicPolicy(), ChernoffPolicy(0.9)):
            vec = policy.beta_vector(sigmas, epsilons, 500)
            assert np.all((vec >= 0) & (vec <= 1))


class TestThresholds:
    def test_basic_threshold_closed_form(self):
        """For the basic policy beta >= 1 iff sigma >= 1 - eps."""
        for eps in (0.2, 0.5, 0.8):
            assert sigma_threshold(BasicPolicy(), eps, 1000) == pytest.approx(
                1 - eps, abs=1e-9
            )

    def test_chernoff_threshold_below_basic(self):
        """Chernoff beta is larger, so it crosses 1 at a smaller sigma."""
        basic_t = sigma_threshold(BasicPolicy(), 0.5, 1000)
        chernoff_t = sigma_threshold(ChernoffPolicy(0.9), 0.5, 1000)
        assert chernoff_t < basic_t

    def test_epsilon_zero_never_common(self):
        assert sigma_threshold(BasicPolicy(), 0.0, 100) == 1.0

    def test_frequency_threshold_integer(self):
        t = frequency_threshold(BasicPolicy(), 0.5, 100)
        assert t == 50

    def test_frequency_threshold_at_least_one(self):
        assert frequency_threshold(BasicPolicy(), 1.0, 100) >= 1

    def test_threshold_consistent_with_beta(self):
        """Frequencies at/above the threshold must yield beta >= 1 (within
        rounding), below must be < 1."""
        policy = ChernoffPolicy(0.9)
        m, eps = 200, 0.6
        t = frequency_threshold(policy, eps, m)
        if t <= m:
            assert policy.beta(t / m, eps, m) >= 1.0 - 1e-6
        if t - 1 >= 1:
            assert policy.beta((t - 1) / m, eps, m) < 1.0 + 1e-9
