"""Tests for the data model (owners, providers, matrix, network)."""

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.core.model import (
    InformationNetwork,
    MembershipMatrix,
    Owner,
    Provider,
    Record,
)


class TestOwner:
    def test_valid_epsilon_range(self):
        Owner(owner_id=0, name="a", epsilon=0.0)
        Owner(owner_id=0, name="a", epsilon=1.0)

    @pytest.mark.parametrize("eps", [-0.1, 1.1, 2.0])
    def test_invalid_epsilon_rejected(self, eps):
        with pytest.raises(ModelError):
            Owner(owner_id=0, name="a", epsilon=eps)


class TestProvider:
    def test_store_and_lookup(self):
        p = Provider(provider_id=0, name="h0")
        p.store(Record(owner_id=3, payload="x"))
        assert p.has_owner(3)
        assert not p.has_owner(4)
        assert p.owner_ids == {3}

    def test_multiple_records_same_owner(self):
        p = Provider(provider_id=0, name="h0")
        p.store(Record(owner_id=3, payload="x"))
        p.store(Record(owner_id=3, payload="y"))
        assert len(p.records[3]) == 2

    def test_membership_vector(self):
        p = Provider(provider_id=0, name="h0")
        p.store(Record(owner_id=1))
        p.store(Record(owner_id=3))
        vec = p.membership_vector(5)
        assert vec.tolist() == [0, 1, 0, 1, 0]


class TestMembershipMatrix:
    def test_set_get(self, small_matrix):
        assert small_matrix.get(0, 0)
        assert not small_matrix.get(1, 0)

    def test_providers_of(self, small_matrix):
        assert small_matrix.providers_of(0) == {0, 2}
        assert small_matrix.providers_of(1) == {0, 1}
        assert small_matrix.providers_of(2) == {2}

    def test_owners_of(self, small_matrix):
        assert small_matrix.owners_of(0) == {0, 1}
        assert small_matrix.owners_of(1) == {1}

    def test_frequency_and_sigma(self, small_matrix):
        assert small_matrix.frequency(0) == 2
        assert small_matrix.sigma(0) == pytest.approx(2 / 3)

    def test_frequencies_vector_matches_per_owner(self, small_matrix):
        freqs = small_matrix.frequencies()
        assert freqs.dtype == np.int64
        assert freqs.tolist() == [
            small_matrix.frequency(j) for j in range(small_matrix.n_owners)
        ]

    def test_sigmas_vector_matches_per_owner(self, small_matrix):
        sigmas = small_matrix.sigmas()
        assert sigmas.shape == (small_matrix.n_owners,)
        for j in range(small_matrix.n_owners):
            assert sigmas[j] == pytest.approx(small_matrix.sigma(j))

    def test_sigmas_of_empty_network(self):
        matrix = MembershipMatrix(4, 0)
        assert matrix.frequencies().tolist() == []
        assert matrix.sigmas().tolist() == []

    def test_total_memberships(self, small_matrix):
        assert small_matrix.total_memberships == 5

    def test_dense_roundtrip(self, small_matrix):
        dense = small_matrix.to_dense()
        rebuilt = MembershipMatrix.from_dense(dense)
        assert np.array_equal(rebuilt.to_dense(), dense)

    def test_dense_shape_and_values(self, small_matrix):
        dense = small_matrix.to_dense()
        assert dense.shape == (3, 3)
        assert dense[0, 0] == 1 and dense[1, 0] == 0

    def test_iter_cells(self, small_matrix):
        cells = set(small_matrix.iter_cells())
        assert cells == {(0, 0), (0, 1), (1, 1), (2, 0), (2, 2)}

    def test_out_of_range_rejected(self, small_matrix):
        with pytest.raises(ModelError):
            small_matrix.set(3, 0)
        with pytest.raises(ModelError):
            small_matrix.get(0, 3)
        with pytest.raises(ModelError):
            small_matrix.providers_of(-1)

    def test_invalid_shape_rejected(self):
        with pytest.raises(ModelError):
            MembershipMatrix(0, 5)

    def test_from_dense_requires_2d(self):
        with pytest.raises(ModelError):
            MembershipMatrix.from_dense(np.zeros(3))

    def test_idempotent_set(self):
        m = MembershipMatrix(2, 2)
        m.set(0, 0)
        m.set(0, 0)
        assert m.total_memberships == 1


class TestInformationNetwork:
    def test_register_and_lookup(self):
        net = InformationNetwork(3)
        alice = net.register_owner("alice", 0.5)
        assert net.owner_by_name("alice") is alice
        assert alice.owner_id == 0

    def test_duplicate_name_rejected(self):
        net = InformationNetwork(3)
        net.register_owner("alice", 0.5)
        with pytest.raises(ModelError):
            net.register_owner("alice", 0.6)

    def test_unknown_name_rejected(self):
        with pytest.raises(ModelError):
            InformationNetwork(3).owner_by_name("nobody")

    def test_delegate_builds_matrix(self, hospital_network):
        matrix = hospital_network.membership_matrix()
        celebrity = hospital_network.owner_by_name("celebrity")
        frequent = hospital_network.owner_by_name("frequent-flyer")
        assert matrix.providers_of(celebrity.owner_id) == {2}
        assert matrix.frequency(frequent.owner_id) == 5

    def test_delegate_unknown_provider_rejected(self, hospital_network):
        owner = hospital_network.owner_by_name("celebrity")
        with pytest.raises(ModelError):
            hospital_network.delegate(owner, 99)

    def test_delegate_foreign_owner_rejected(self, hospital_network):
        stranger = Owner(owner_id=0, name="stranger", epsilon=0.5)
        with pytest.raises(ModelError):
            hospital_network.delegate(stranger, 0)

    def test_epsilons_vector(self, hospital_network):
        eps = hospital_network.epsilons()
        assert eps.tolist() == [0.9, 0.4, 0.6]

    def test_provider_names(self):
        net = InformationNetwork(2, provider_names=["a", "b"])
        assert [p.name for p in net.providers] == ["a", "b"]

    def test_name_count_mismatch_rejected(self):
        with pytest.raises(ModelError):
            InformationNetwork(2, provider_names=["a"])

    def test_records_stored_at_provider(self, hospital_network):
        celeb = hospital_network.owner_by_name("celebrity")
        records = hospital_network.providers[2].records[celeb.owner_id]
        assert records[0].payload == "oncology record"
