"""Tests for AuthSearch (phase 2 of the two-phase search)."""

import pytest

from repro.core.authsearch import AccessControl, Searcher, auth_search
from repro.core.errors import AccessDenied, ModelError


@pytest.fixture
def acls(hospital_network):
    """Doctor may read celebrity records at hospital 2 only; ER is trusted
    everywhere."""
    acls = {pid: AccessControl() for pid in range(5)}
    celeb = hospital_network.owner_by_name("celebrity")
    acls[2].grant("dr-jones", celeb.owner_id)
    for pid in range(5):
        acls[pid].trusted.add("er-team")
    return acls


class TestAccessControl:
    def test_grant_and_authorize(self):
        acl = AccessControl()
        acl.grant("s", 3)
        assert acl.authorize("s", 3)
        assert not acl.authorize("s", 4)
        assert not acl.authorize("other", 3)

    def test_trusted_reads_everything(self):
        acl = AccessControl(trusted={"er"})
        assert acl.authorize("er", 123)


class TestAuthSearch:
    def test_finds_records_where_authorized(self, hospital_network, acls):
        celeb = hospital_network.owner_by_name("celebrity")
        result = auth_search(
            hospital_network, acls, Searcher("dr-jones"), [0, 1, 2], celeb.owner_id
        )
        assert result.found
        assert result.positive_providers == [2]
        assert result.records[0].payload == "oncology record"

    def test_denied_providers_recorded(self, hospital_network, acls):
        celeb = hospital_network.owner_by_name("celebrity")
        result = auth_search(
            hospital_network, acls, Searcher("dr-jones"), [0, 1, 2], celeb.owner_id
        )
        assert set(result.denied_providers) == {0, 1}

    def test_noise_providers_recorded(self, hospital_network, acls):
        """Contacted-but-empty providers are the PPI's privacy noise."""
        celeb = hospital_network.owner_by_name("celebrity")
        result = auth_search(
            hospital_network, acls, Searcher("er-team"), [0, 1, 2, 3], celeb.owner_id
        )
        assert result.positive_providers == [2]
        assert set(result.noise_providers) == {0, 1, 3}
        assert result.contacted == 4

    def test_strict_mode_raises(self, hospital_network, acls):
        celeb = hospital_network.owner_by_name("celebrity")
        with pytest.raises(AccessDenied):
            auth_search(
                hospital_network,
                acls,
                Searcher("dr-jones"),
                [0],
                celeb.owner_id,
                strict=True,
            )

    def test_trusted_searcher_full_flow(self, hospital_network, acls):
        frequent = hospital_network.owner_by_name("frequent-flyer")
        result = auth_search(
            hospital_network, acls, Searcher("er-team"), list(range(5)),
            frequent.owner_id,
        )
        assert len(result.records) == 5
        assert result.positive_providers == list(range(5))

    def test_empty_provider_list(self, hospital_network, acls):
        result = auth_search(hospital_network, acls, Searcher("er-team"), [], 0)
        assert not result.found
        assert result.contacted == 0

    def test_unknown_owner_rejected(self, hospital_network, acls):
        with pytest.raises(ModelError):
            auth_search(hospital_network, acls, Searcher("er-team"), [0], 99)

    def test_unknown_provider_rejected(self, hospital_network, acls):
        with pytest.raises(ModelError):
            auth_search(hospital_network, acls, Searcher("er-team"), [42], 0)

    def test_missing_acl_denies_by_default(self, hospital_network):
        result = auth_search(hospital_network, {}, Searcher("nobody"), [0], 0)
        assert result.denied_providers == [0]
