"""Tests for privacy metrics and degree classification (Sec. II-C)."""

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.core.model import MembershipMatrix
from repro.core.privacy import (
    PrivacyDegree,
    attacker_confidences,
    classify_degree,
    evaluate_index,
    published_false_positive_rates,
    success_ratio,
)


def published_with_noise(matrix, extra_cells):
    published = matrix.to_dense().copy()
    for pid, oid in extra_cells:
        published[pid, oid] = 1
    return published


class TestFalsePositiveRates:
    def test_no_noise_zero_fp(self, small_matrix):
        fp = published_false_positive_rates(small_matrix, small_matrix.to_dense())
        assert np.all(fp == 0.0)

    def test_noise_counted(self, small_matrix):
        published = published_with_noise(small_matrix, [(1, 0)])
        fp = published_false_positive_rates(small_matrix, published)
        # owner 0: 2 true + 1 false -> fp = 1/3
        assert fp[0] == pytest.approx(1 / 3)

    def test_recall_violation_detected(self, small_matrix):
        published = small_matrix.to_dense().copy()
        published[0, 0] = 0  # drop a true positive
        with pytest.raises(ModelError):
            published_false_positive_rates(small_matrix, published)

    def test_empty_column_full_privacy(self):
        matrix = MembershipMatrix(2, 1)  # owner with no providers
        fp = published_false_positive_rates(matrix, np.zeros((2, 1), dtype=np.uint8))
        assert fp[0] == 1.0

    def test_shape_checked(self, small_matrix):
        with pytest.raises(ModelError):
            published_false_positive_rates(small_matrix, np.zeros((2, 2)))


class TestConfidenceAndSuccess:
    def test_confidence_complement(self):
        fp = np.array([0.0, 0.25, 1.0])
        assert attacker_confidences(fp).tolist() == [1.0, 0.75, 0.0]

    def test_success_ratio_counts_satisfied(self):
        fp = np.array([0.5, 0.8, 0.2])
        eps = np.array([0.5, 0.5, 0.5])
        assert success_ratio(fp, eps) == pytest.approx(2 / 3)

    def test_success_ratio_empty(self):
        assert success_ratio(np.zeros(0), np.zeros(0)) == 1.0

    def test_success_ratio_shape_checked(self):
        with pytest.raises(ModelError):
            success_ratio(np.zeros(2), np.zeros(3))


class TestEvaluateIndex:
    def test_report_fields(self, small_matrix, np_rng):
        published = published_with_noise(small_matrix, [(1, 0), (1, 2)])
        eps = np.array([0.3, 0.0, 0.4])
        report = evaluate_index(small_matrix, published, eps)
        assert report.n_owners == 3
        assert report.false_positive_rates[0] == pytest.approx(1 / 3)
        assert report.attacker_confidences[0] == pytest.approx(2 / 3)
        assert 0.0 <= report.success_ratio <= 1.0

    def test_violations_listed(self, small_matrix):
        published = small_matrix.to_dense()  # no noise at all
        eps = np.array([0.5, 0.0, 0.5])
        report = evaluate_index(small_matrix, published, eps)
        assert set(report.violations().tolist()) == {0, 2}


class TestClassifyDegree:
    def test_no_protect_when_all_certain(self):
        conf = np.ones(5)
        eps = np.full(5, 0.5)
        assert classify_degree(conf, eps) is PrivacyDegree.NO_PROTECT

    def test_eps_private_when_bounded(self):
        eps = np.array([0.3, 0.8])
        conf = np.array([0.65, 0.15])  # <= 1 - eps
        assert classify_degree(conf, eps) is PrivacyDegree.EPS_PRIVATE

    def test_no_guarantee_when_some_violate(self):
        eps = np.array([0.3, 0.8])
        conf = np.array([0.65, 0.5])  # second violates
        assert classify_degree(conf, eps) is PrivacyDegree.NO_GUARANTEE

    def test_required_fraction_relaxation(self):
        eps = np.full(10, 0.5)
        conf = np.concatenate([np.full(9, 0.4), [0.9]])
        assert classify_degree(conf, eps) is PrivacyDegree.NO_GUARANTEE
        assert (
            classify_degree(conf, eps, required_fraction=0.9)
            is PrivacyDegree.EPS_PRIVATE
        )

    def test_empty_is_unleaked(self):
        assert classify_degree(np.zeros(0), np.zeros(0)) is PrivacyDegree.UNLEAKED

    def test_tolerance_respected(self):
        eps = np.array([0.5])
        conf = np.array([0.515])
        assert classify_degree(conf, eps, tolerance=0.02) is PrivacyDegree.EPS_PRIVATE
        assert (
            classify_degree(conf, eps, tolerance=0.001)
            is PrivacyDegree.NO_GUARANTEE
        )

    def test_shape_checked(self):
        with pytest.raises(ModelError):
            classify_degree(np.zeros(2), np.zeros(3))

    def test_required_fraction_validated(self):
        with pytest.raises(ModelError):
            classify_degree(np.zeros(2), np.zeros(2), required_fraction=0.0)
