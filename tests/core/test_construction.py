"""Tests for the centralized reference construction (ConstructPPI)."""

import numpy as np
import pytest

from repro.core.construction import compute_betas, construct_epsilon_ppi
from repro.core.errors import ConstructionError
from repro.core.model import InformationNetwork
from repro.core.policies import BasicPolicy, ChernoffPolicy


class TestComputeBetas:
    def test_policy_betas_from_sigmas(self, small_matrix, np_rng):
        eps = np.array([0.5, 0.5, 0.5])
        policy = BasicPolicy()
        policy_betas, mixing = compute_betas(small_matrix, eps, policy, np_rng)
        for j in range(3):
            expected = policy.beta(small_matrix.sigma(j), 0.5, 3)
            assert policy_betas[j] == pytest.approx(expected)

    def test_epsilon_count_checked(self, small_matrix, np_rng):
        with pytest.raises(ConstructionError):
            compute_betas(small_matrix, np.array([0.5]), BasicPolicy(), np_rng)

    def test_mixing_disabled_flag(self, small_matrix, np_rng):
        eps = np.array([0.9, 0.9, 0.9])
        _, mixing = compute_betas(
            small_matrix, eps, BasicPolicy(), np_rng, mixing_enabled=False
        )
        assert len(mixing.decoy_ids) == 0


class TestConstructEpsilonPPI:
    def test_full_flow(self, hospital_network, np_rng):
        result = construct_epsilon_ppi(
            hospital_network, ChernoffPolicy(0.9), np_rng
        )
        assert result.index.n_providers == 5
        assert result.index.n_owners == 3
        assert result.report.n_owners == 3
        assert 0.0 <= result.report.success_ratio <= 1.0

    def test_recall_guarantee(self, hospital_network, np_rng):
        """QueryPPI must always include the true positives."""
        result = construct_epsilon_ppi(hospital_network, BasicPolicy(), np_rng)
        matrix = hospital_network.membership_matrix()
        for owner in hospital_network.owners:
            hits = set(result.index.query(owner.owner_id))
            assert matrix.providers_of(owner.owner_id) <= hits

    def test_common_owner_broadcast(self, hospital_network, np_rng):
        """frequent-flyer is at all 5 hospitals: it must publish everywhere."""
        result = construct_epsilon_ppi(hospital_network, BasicPolicy(), np_rng)
        frequent = hospital_network.owner_by_name("frequent-flyer")
        assert result.index.result_size(frequent.owner_id) == 5
        assert result.betas[frequent.owner_id] == 1.0

    def test_owner_names_resolvable(self, hospital_network, np_rng):
        result = construct_epsilon_ppi(hospital_network, BasicPolicy(), np_rng)
        assert result.index.query_by_name("celebrity") == result.index.query(0)

    def test_defaults_used(self, hospital_network):
        result = construct_epsilon_ppi(hospital_network)
        assert result.index.n_owners == 3

    def test_empty_network_rejected(self):
        net = InformationNetwork(3)
        with pytest.raises(ConstructionError):
            construct_epsilon_ppi(net)

    def test_policy_betas_preserved(self, hospital_network, np_rng):
        result = construct_epsilon_ppi(hospital_network, BasicPolicy(), np_rng)
        # mixing may raise some to 1, but never lowers.
        assert np.all(result.betas >= result.policy_betas - 1e-12)

    def test_deterministic_given_seed(self, hospital_network):
        a = construct_epsilon_ppi(
            hospital_network, BasicPolicy(), np.random.default_rng(5)
        )
        b = construct_epsilon_ppi(
            hospital_network, BasicPolicy(), np.random.default_rng(5)
        )
        assert np.array_equal(a.index.matrix, b.index.matrix)
