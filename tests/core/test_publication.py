"""Tests for randomized publication (Eq. 2) and its Binomial fast path."""

import numpy as np
import pytest

from repro.core.errors import ConstructionError
from repro.core.model import MembershipMatrix
from repro.core.publication import (
    false_positive_rates,
    publish_matrix,
    publish_provider_row,
    sample_false_positive_counts,
)


class TestProviderRow:
    def test_truthful_rule_ones_survive(self, np_rng):
        row = np.array([1, 1, 1, 1], dtype=np.uint8)
        out = publish_provider_row(row, [0.0, 0.5, 1.0, 0.3], np_rng)
        assert out.tolist() == [1, 1, 1, 1]

    def test_beta_zero_publishes_nothing_false(self, np_rng):
        row = np.zeros(100, dtype=np.uint8)
        out = publish_provider_row(row, np.zeros(100), np_rng)
        assert out.sum() == 0

    def test_beta_one_flips_everything(self, np_rng):
        row = np.zeros(100, dtype=np.uint8)
        out = publish_provider_row(row, np.ones(100), np_rng)
        assert out.sum() == 100

    def test_flip_rate_close_to_beta(self, np_rng):
        row = np.zeros(20000, dtype=np.uint8)
        out = publish_provider_row(row, np.full(20000, 0.3), np_rng)
        assert 0.27 < out.mean() < 0.33

    def test_shape_mismatch_rejected(self, np_rng):
        with pytest.raises(ConstructionError):
            publish_provider_row(np.zeros(3), [0.5, 0.5], np_rng)

    def test_beta_out_of_range_rejected(self, np_rng):
        with pytest.raises(ConstructionError):
            publish_provider_row(np.zeros(2), [0.5, 1.5], np_rng)


class TestPublishMatrix:
    def test_recall_invariant(self, small_matrix, np_rng):
        """Every true positive must survive (the 1 -> 1 rule)."""
        published = publish_matrix(small_matrix, [0.5, 0.5, 0.5], np_rng)
        dense = small_matrix.to_dense()
        assert np.all(published[dense == 1] == 1)

    def test_beta_per_owner_applied(self, small_matrix, np_rng):
        published = publish_matrix(small_matrix, [1.0, 0.0, 0.0], np_rng)
        # Owner 0 has beta 1: all providers publish it.
        assert published[:, 0].sum() == 3
        # Owner 1 beta 0: only true positives (p0, p1).
        assert published[:, 1].tolist() == [1, 1, 0]

    def test_wrong_beta_count_rejected(self, small_matrix, np_rng):
        with pytest.raises(ConstructionError):
            publish_matrix(small_matrix, [0.5, 0.5], np_rng)

    def test_output_dtype_and_shape(self, small_matrix, np_rng):
        published = publish_matrix(small_matrix, [0.2, 0.2, 0.2], np_rng)
        assert published.shape == (3, 3)
        assert set(np.unique(published)) <= {0, 1}

    def test_stream_identical_to_per_row_loop(self):
        """The whole-matrix draw must be bit-for-bit what the per-provider
        loop produces from the same seed: the generator fills ``(m, n)`` in
        C order, i.e. row by row, exactly as ``publish_provider_row`` would
        consume it.  This pins the vectorization as a pure refactor -- any
        seeded experiment reproduces unchanged."""
        m, n = 17, 29
        rng = np.random.default_rng(7)
        matrix = MembershipMatrix(m, n)
        for _ in range(80):
            matrix.set(int(rng.integers(m)), int(rng.integers(n)))
        betas = rng.random(n)
        dense = matrix.to_dense()
        whole = publish_matrix(matrix, betas, np.random.default_rng(1234))
        loop_rng = np.random.default_rng(1234)
        per_row = np.stack(
            [publish_provider_row(dense[i], betas, loop_rng) for i in range(m)]
        )
        assert np.array_equal(whole, per_row)

    def test_false_positive_marginals_are_binomial(self):
        """Per-owner false-positive counts from the vectorized draw must
        match the exact ``Binomial(m - f_j, beta_j)`` law in mean and
        spread (this is the distribution Eq. 2 specifies)."""
        m, f, beta, runs = 120, 30, 0.25, 400
        matrix = MembershipMatrix(m, 1)
        for i in range(f):
            matrix.set(i, 0)
        rng = np.random.default_rng(99)
        counts = np.array(
            [publish_matrix(matrix, [beta], rng)[:, 0].sum() - f
             for _ in range(runs)]
        )
        expected_mean = (m - f) * beta
        expected_std = np.sqrt((m - f) * beta * (1 - beta))
        assert abs(counts.mean() - expected_mean) < 4 * expected_std / np.sqrt(runs)
        assert abs(counts.std() - expected_std) < 1.0


class TestBinomialFastPath:
    def test_distribution_matches_exact_publication(self):
        """The Binomial shortcut must match per-cell flipping statistically:
        compare mean/std of false-positive counts over many runs."""
        m, f, beta = 200, 20, 0.3
        matrix = MembershipMatrix(m, 1)
        for i in range(f):
            matrix.set(i, 0)

        exact_counts = []
        rng = np.random.default_rng(42)
        for _ in range(300):
            published = publish_matrix(matrix, [beta], rng)
            exact_counts.append(published[:, 0].sum() - f)
        fast_counts = sample_false_positive_counts(
            np.full(300, f), np.full(300, beta), m, np.random.default_rng(43)
        )
        assert abs(np.mean(exact_counts) - np.mean(fast_counts)) < 3.0
        assert abs(np.std(exact_counts) - np.std(fast_counts)) < 2.0

    def test_expected_count(self, np_rng):
        counts = sample_false_positive_counts(
            np.full(5000, 10), np.full(5000, 0.5), 100, np_rng
        )
        assert abs(counts.mean() - 45.0) < 1.0  # (100-10) * 0.5

    def test_frequency_bounds_checked(self, np_rng):
        with pytest.raises(ConstructionError):
            sample_false_positive_counts(np.array([101]), np.array([0.5]), 100, np_rng)

    def test_shape_mismatch_rejected(self, np_rng):
        with pytest.raises(ConstructionError):
            sample_false_positive_counts(np.array([1, 2]), np.array([0.5]), 100, np_rng)


class TestFalsePositiveRates:
    def test_formula(self):
        fp = false_positive_rates(np.array([10.0]), np.array([30.0]))
        assert fp[0] == pytest.approx(0.75)

    def test_no_false_positives(self):
        fp = false_positive_rates(np.array([10.0]), np.array([0.0]))
        assert fp[0] == 0.0

    def test_empty_list_means_full_privacy(self):
        fp = false_positive_rates(np.array([0.0]), np.array([0.0]))
        assert fp[0] == 1.0

    def test_vectorized(self):
        fp = false_positive_rates(
            np.array([10.0, 0.0, 5.0]), np.array([10.0, 0.0, 0.0])
        )
        assert fp.tolist() == [0.5, 1.0, 0.0]
