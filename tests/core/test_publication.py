"""Tests for randomized publication (Eq. 2) and its Binomial fast path."""

import numpy as np
import pytest

from repro.core.errors import ConstructionError
from repro.core.model import MembershipMatrix
from repro.core.publication import (
    false_positive_rates,
    publish_matrix,
    publish_provider_row,
    sample_false_positive_counts,
)


class TestProviderRow:
    def test_truthful_rule_ones_survive(self, np_rng):
        row = np.array([1, 1, 1, 1], dtype=np.uint8)
        out = publish_provider_row(row, [0.0, 0.5, 1.0, 0.3], np_rng)
        assert out.tolist() == [1, 1, 1, 1]

    def test_beta_zero_publishes_nothing_false(self, np_rng):
        row = np.zeros(100, dtype=np.uint8)
        out = publish_provider_row(row, np.zeros(100), np_rng)
        assert out.sum() == 0

    def test_beta_one_flips_everything(self, np_rng):
        row = np.zeros(100, dtype=np.uint8)
        out = publish_provider_row(row, np.ones(100), np_rng)
        assert out.sum() == 100

    def test_flip_rate_close_to_beta(self, np_rng):
        row = np.zeros(20000, dtype=np.uint8)
        out = publish_provider_row(row, np.full(20000, 0.3), np_rng)
        assert 0.27 < out.mean() < 0.33

    def test_shape_mismatch_rejected(self, np_rng):
        with pytest.raises(ConstructionError):
            publish_provider_row(np.zeros(3), [0.5, 0.5], np_rng)

    def test_beta_out_of_range_rejected(self, np_rng):
        with pytest.raises(ConstructionError):
            publish_provider_row(np.zeros(2), [0.5, 1.5], np_rng)


class TestPublishMatrix:
    def test_recall_invariant(self, small_matrix, np_rng):
        """Every true positive must survive (the 1 -> 1 rule)."""
        published = publish_matrix(small_matrix, [0.5, 0.5, 0.5], np_rng)
        dense = small_matrix.to_dense()
        assert np.all(published[dense == 1] == 1)

    def test_beta_per_owner_applied(self, small_matrix, np_rng):
        published = publish_matrix(small_matrix, [1.0, 0.0, 0.0], np_rng)
        # Owner 0 has beta 1: all providers publish it.
        assert published[:, 0].sum() == 3
        # Owner 1 beta 0: only true positives (p0, p1).
        assert published[:, 1].tolist() == [1, 1, 0]

    def test_wrong_beta_count_rejected(self, small_matrix, np_rng):
        with pytest.raises(ConstructionError):
            publish_matrix(small_matrix, [0.5, 0.5], np_rng)

    def test_output_dtype_and_shape(self, small_matrix, np_rng):
        published = publish_matrix(small_matrix, [0.2, 0.2, 0.2], np_rng)
        assert published.shape == (3, 3)
        assert set(np.unique(published)) <= {0, 1}


class TestBinomialFastPath:
    def test_distribution_matches_exact_publication(self):
        """The Binomial shortcut must match per-cell flipping statistically:
        compare mean/std of false-positive counts over many runs."""
        m, f, beta = 200, 20, 0.3
        matrix = MembershipMatrix(m, 1)
        for i in range(f):
            matrix.set(i, 0)

        exact_counts = []
        rng = np.random.default_rng(42)
        for _ in range(300):
            published = publish_matrix(matrix, [beta], rng)
            exact_counts.append(published[:, 0].sum() - f)
        fast_counts = sample_false_positive_counts(
            np.full(300, f), np.full(300, beta), m, np.random.default_rng(43)
        )
        assert abs(np.mean(exact_counts) - np.mean(fast_counts)) < 3.0
        assert abs(np.std(exact_counts) - np.std(fast_counts)) < 2.0

    def test_expected_count(self, np_rng):
        counts = sample_false_positive_counts(
            np.full(5000, 10), np.full(5000, 0.5), 100, np_rng
        )
        assert abs(counts.mean() - 45.0) < 1.0  # (100-10) * 0.5

    def test_frequency_bounds_checked(self, np_rng):
        with pytest.raises(ConstructionError):
            sample_false_positive_counts(np.array([101]), np.array([0.5]), 100, np_rng)

    def test_shape_mismatch_rejected(self, np_rng):
        with pytest.raises(ConstructionError):
            sample_false_positive_counts(np.array([1, 2]), np.array([0.5]), 100, np_rng)


class TestFalsePositiveRates:
    def test_formula(self):
        fp = false_positive_rates(np.array([10.0]), np.array([30.0]))
        assert fp[0] == pytest.approx(0.75)

    def test_no_false_positives(self):
        fp = false_positive_rates(np.array([10.0]), np.array([0.0]))
        assert fp[0] == 0.0

    def test_empty_list_means_full_privacy(self):
        fp = false_positive_rates(np.array([0.0]), np.array([0.0]))
        assert fp[0] == 1.0

    def test_vectorized(self):
        fp = false_positive_rates(
            np.array([10.0, 0.0, 5.0]), np.array([10.0, 0.0, 0.0])
        )
        assert fp.tolist() == [0.5, 1.0, 0.0]
