"""Tests for incremental index maintenance."""

import numpy as np
import pytest

from repro.attacks.intersection import intersection_attack
from repro.core.incremental import IncrementalIndexManager
from repro.core.model import InformationNetwork
from repro.core.policies import BasicPolicy, ChernoffPolicy


def make_manager(m=30, seed=5):
    net = InformationNetwork(m)
    keys = [bytes([pid % 256, 7]) * 8 for pid in range(m)]
    rng = np.random.default_rng(seed)
    manager = IncrementalIndexManager(net, keys, ChernoffPolicy(0.9), rng)
    return net, manager


class TestBasics:
    def test_empty_network_starts_empty(self):
        _, manager = make_manager()
        index = manager.index()
        assert index.n_owners == 0

    def test_add_owner_creates_column(self):
        _, manager = make_manager()
        owner = manager.add_owner("alice", 0.5)
        index = manager.index()
        assert index.n_owners == 1
        # Absent owner: beta 0, nothing published.
        assert index.result_size(owner.owner_id) == 0

    def test_delegate_publishes_truth_plus_noise(self):
        _, manager = make_manager()
        owner = manager.add_owner("alice", 0.6)
        result = manager.delegate(owner, 7)
        assert result.column_changed
        candidates = manager.index().query(owner.owner_id)
        assert 7 in candidates
        assert manager.verify_recall()

    def test_beta_updates_with_frequency(self):
        _, manager = make_manager()
        owner = manager.add_owner("alice", 0.5)
        r1 = manager.delegate(owner, 0)
        r2 = manager.delegate(owner, 1)
        assert r2.new_beta >= r1.new_beta  # more providers -> higher sigma

    def test_recall_invariant_over_update_stream(self):
        net, manager = make_manager()
        rng = np.random.default_rng(9)
        owners = [manager.add_owner(f"o{i}", float(rng.uniform(0.2, 0.8)))
                  for i in range(10)]
        for _ in range(40):
            owner = owners[int(rng.integers(len(owners)))]
            pid = int(rng.integers(net.n_providers))
            if not net.membership_matrix().get(pid, owner.owner_id):
                manager.delegate(owner, pid)
        assert manager.verify_recall()


class TestStickyBehaviour:
    def test_unchanged_identity_column_stable(self):
        """Updating owner A must not change owner B's published column."""
        _, manager = make_manager()
        a = manager.add_owner("a", 0.5)
        b = manager.add_owner("b", 0.5)
        manager.delegate(b, 3)
        col_before = manager.index().matrix[:, b.owner_id].copy()
        manager.delegate(a, 10)
        col_after = manager.index().matrix[:, b.owner_id]
        assert np.array_equal(col_before, col_after)

    def test_columns_monotone_under_updates(self):
        """Published cells are never retracted (the sticky guarantee that
        defeats intersection across versions)."""
        net, manager = make_manager()
        owner = manager.add_owner("a", 0.7)
        versions = []
        for pid in (0, 5, 9, 14):
            manager.delegate(owner, pid)
            versions.append(manager.index().matrix[:, owner.owner_id].copy())
        for before, after in zip(versions, versions[1:]):
            assert np.all(after[before == 1] == 1)

    def test_intersection_attack_gains_nothing(self):
        """Snapshots across an update stream intersect to (at worst) the
        final truthful state plus the first version's noise."""
        net, manager = make_manager(m=50)
        rng = np.random.default_rng(3)
        owners = [manager.add_owner(f"o{i}", 0.6) for i in range(8)]
        snapshots = []
        for step in range(12):
            owner = owners[step % len(owners)]
            pid = int(rng.integers(net.n_providers))
            if not net.membership_matrix().get(pid, owner.owner_id):
                manager.delegate(owner, pid)
            snapshots.append(np.asarray(manager.index().matrix).copy())
        matrix = net.membership_matrix()
        result = intersection_attack(matrix, snapshots)
        # Monotone columns: the intersection equals the FIRST snapshot,
        # whose noise is still present -- per-owner confidence stays below
        # certainty wherever the first snapshot already had noise.
        assert np.array_equal(result.intersection, snapshots[0])


class TestValidation:
    def test_key_count_checked(self):
        net = InformationNetwork(3)
        with pytest.raises(Exception):
            IncrementalIndexManager(net, [b"k"], BasicPolicy())

    def test_unknown_owner_delegate_rejected(self):
        net, manager = make_manager()
        from repro.core.model import Owner

        with pytest.raises(Exception):
            manager.delegate(Owner(owner_id=5, name="x", epsilon=0.5), 0)


class TestEpsilonUpdates:
    def test_raising_epsilon_adds_noise(self):
        _, manager = make_manager(m=60)
        owner = manager.add_owner("a", 0.2)
        manager.delegate(owner, 5)
        before = manager.index().result_size(owner.owner_id)
        result = manager.update_epsilon(owner.owner_id, 0.9)
        after = manager.index().result_size(owner.owner_id)
        assert result.new_beta > result.old_beta
        assert after > before

    def test_lowering_epsilon_never_retracts(self):
        _, manager = make_manager(m=60)
        owner = manager.add_owner("a", 0.9)
        manager.delegate(owner, 5)
        col_before = manager.index().matrix[:, owner.owner_id].copy()
        manager.update_epsilon(owner.owner_id, 0.1)
        col_after = manager.index().matrix[:, owner.owner_id]
        assert np.all(col_after[col_before == 1] == 1)

    def test_network_reflects_new_epsilon(self):
        net, manager = make_manager()
        owner = manager.add_owner("a", 0.3)
        manager.update_epsilon(owner.owner_id, 0.7)
        assert net.owners[owner.owner_id].epsilon == 0.7

    def test_invalid_epsilon_rejected(self):
        net, manager = make_manager()
        owner = manager.add_owner("a", 0.3)
        with pytest.raises(Exception):
            manager.update_epsilon(owner.owner_id, 1.5)


class TestEpochRotation:
    def test_forget_then_rotate_removes_stale_positive(self):
        net, manager = make_manager(m=40)
        owner = manager.add_owner("a", 0.4)
        manager.delegate(owner, 3)
        manager.delegate(owner, 9)
        manager.forget_delegation(owner, 9)
        # Within the epoch the stale positive persists (monotone columns).
        assert manager.index().matrix[9, owner.owner_id] == 1
        changed = manager.rotate_epoch([bytes([p + 1, 99]) * 8 for p in range(40)])
        assert changed > 0
        # After rotation the forgotten provider may (and with beta<1,
        # usually does for a fresh coin) drop; ground truth still recalled.
        assert manager.verify_recall()
        matrix = net.membership_matrix()
        assert 9 not in matrix.providers_of(owner.owner_id)

    def test_rotation_changes_noise_pattern(self):
        _, manager = make_manager(m=60)
        owner = manager.add_owner("a", 0.7)
        manager.delegate(owner, 5)
        col_before = manager.index().matrix[:, owner.owner_id].copy()
        manager.rotate_epoch([bytes([p + 2, 7]) * 8 for p in range(60)])
        col_after = manager.index().matrix[:, owner.owner_id]
        assert not np.array_equal(col_before, col_after)
        assert col_after[5] == 1  # truth survives

    def test_rotation_key_count_checked(self):
        _, manager = make_manager(m=5)
        with pytest.raises(Exception):
            manager.rotate_epoch([b"k"])

    def test_cross_epoch_intersection_erodes(self):
        """The documented price of rotation: snapshots from two epochs
        intersect like fresh noise."""
        net, manager = make_manager(m=80)
        owner = manager.add_owner("a", 0.8)
        manager.delegate(owner, 5)
        snap1 = np.asarray(manager.index().matrix).copy()
        manager.rotate_epoch([bytes([p + 3, 11]) * 8 for p in range(80)])
        snap2 = np.asarray(manager.index().matrix).copy()
        result = intersection_attack(net.membership_matrix(), [snap1, snap2])
        one = intersection_attack(net.membership_matrix(), [snap1])
        assert result.mean_confidence >= one.mean_confidence
