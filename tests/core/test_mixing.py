"""Tests for identity mixing (Eq. 6/7, common-identity defence)."""

import numpy as np
import pytest

from repro.core.errors import ConstructionError
from repro.core.mixing import compute_lambda, mix_betas


class TestComputeLambda:
    def test_equation7_formula(self):
        # lambda >= xi/(1-xi) * C/(n-C)
        xi, c, n = 0.5, 10, 1000
        assert compute_lambda(c, n, xi) == pytest.approx(
            (xi / (1 - xi)) * (c / (n - c))
        )

    def test_no_commons_no_mixing(self):
        assert compute_lambda(0, 100, 0.8) == 0.0

    def test_zero_xi_no_mixing(self):
        assert compute_lambda(10, 100, 0.0) == 0.0

    def test_clamped_to_one(self):
        assert compute_lambda(90, 100, 0.9) == 1.0

    def test_all_common_forces_one(self):
        assert compute_lambda(100, 100, 0.5) == 1.0

    def test_higher_xi_higher_lambda(self):
        lams = [compute_lambda(5, 1000, xi) for xi in (0.2, 0.5, 0.8)]
        assert lams == sorted(lams)
        assert lams[0] < lams[-1]

    def test_xi_one_forces_full_mixing(self):
        assert compute_lambda(1, 10, 1.0) == 1.0

    def test_invalid_xi_rejected(self):
        with pytest.raises(ConstructionError):
            compute_lambda(1, 10, 1.1)
        with pytest.raises(ConstructionError):
            compute_lambda(1, 10, -0.1)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ConstructionError):
            compute_lambda(11, 10, 0.5)


class TestMixBetas:
    def test_commons_forced_to_one(self, np_rng):
        betas = np.array([1.0, 0.3, 0.2])
        eps = np.array([0.8, 0.5, 0.4])
        result = mix_betas(betas, eps, np_rng)
        assert result.betas[0] == 1.0
        assert result.common_ids.tolist() == [0]

    def test_xi_is_max_common_epsilon(self, np_rng):
        betas = np.array([1.0, 1.0, 0.2])
        eps = np.array([0.6, 0.9, 0.99])
        result = mix_betas(betas, eps, np_rng)
        assert result.xi == pytest.approx(0.9)

    def test_no_commons_no_decoys(self, np_rng):
        betas = np.array([0.5, 0.3])
        result = mix_betas(betas, np.array([0.5, 0.5]), np_rng)
        assert result.lambda_ == 0.0
        assert len(result.decoy_ids) == 0
        assert np.array_equal(result.betas, betas)

    def test_decoy_rate_close_to_lambda(self):
        rng = np.random.default_rng(7)
        n = 5000
        betas = np.concatenate([[1.0] * 50, np.full(n - 50, 0.1)])
        eps = np.full(n, 0.5)
        result = mix_betas(betas, eps, rng)
        expected_lambda = compute_lambda(50, n, 0.5)
        rate = len(result.decoy_ids) / (n - 50)
        assert rate == pytest.approx(expected_lambda, rel=0.3)

    def test_decoys_get_beta_one(self, np_rng):
        betas = np.concatenate([[1.0] * 20, np.full(200, 0.1)])
        eps = np.full(220, 0.8)
        result = mix_betas(betas, eps, np_rng)
        assert np.all(result.betas[result.decoy_ids] == 1.0)

    def test_disabled_mixing_keeps_betas(self, np_rng):
        betas = np.concatenate([[1.0] * 20, np.full(200, 0.1)])
        eps = np.full(220, 0.8)
        result = mix_betas(betas, eps, np_rng, enabled=False)
        assert len(result.decoy_ids) == 0
        assert np.all(result.betas[20:] == 0.1)
        # lambda still reported for diagnostics.
        assert result.lambda_ > 0

    def test_achieved_decoy_fraction(self, np_rng):
        rng = np.random.default_rng(3)
        betas = np.concatenate([[1.0] * 10, np.full(2000, 0.1)])
        eps = np.full(2010, 0.7)
        result = mix_betas(betas, eps, rng)
        # Enough non-commons: achieved fraction should approach xi=0.7.
        assert result.achieved_decoy_fraction == pytest.approx(0.7, abs=0.15)

    def test_mixed_ids_union(self, np_rng):
        betas = np.concatenate([[1.0] * 5, np.full(100, 0.2)])
        eps = np.full(105, 0.9)
        result = mix_betas(betas, eps, np_rng)
        assert set(result.mixed_ids) == set(result.common_ids) | set(result.decoy_ids)

    def test_shape_mismatch_rejected(self, np_rng):
        with pytest.raises(ConstructionError):
            mix_betas(np.zeros(3), np.zeros(4), np_rng)

    def test_empty_vector(self, np_rng):
        result = mix_betas(np.zeros(0), np.zeros(0), np_rng)
        assert result.lambda_ == 0.0
        assert result.achieved_decoy_fraction == 1.0
