"""Tests for the published PPI index and QueryPPI."""

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.core.index import PPIIndex


@pytest.fixture
def index():
    published = np.array(
        [
            [1, 0, 1],
            [1, 1, 0],
            [0, 0, 0],
            [1, 0, 1],
        ],
        dtype=np.uint8,
    )
    return PPIIndex(published, owner_names=["alice", "bob", "carol"])


class TestQuery:
    def test_query_returns_positive_providers(self, index):
        assert index.query(0) == [0, 1, 3]
        assert index.query(1) == [1]
        assert index.query(2) == [0, 3]

    def test_query_by_name(self, index):
        assert index.query_by_name("bob") == [1]

    def test_unknown_name_rejected(self, index):
        with pytest.raises(ModelError):
            index.query_by_name("dave")

    def test_unknown_owner_rejected(self, index):
        with pytest.raises(ModelError):
            index.query(5)

    def test_result_size(self, index):
        assert index.result_size(0) == 3
        assert index.result_size(1) == 1

    def test_repeated_queries_identical(self, index):
        """The index is static: repeated attacks/queries see the same list
        (Sec. III-C repeated-attack resistance)."""
        assert index.query(0) == index.query(0)


class TestPublicViews:
    def test_matrix_readonly(self, index):
        with pytest.raises(ValueError):
            index.matrix[0, 0] = 0

    def test_published_frequency(self, index):
        assert index.published_frequency(0) == pytest.approx(3 / 4)

    def test_stats(self, index):
        stats = index.stats()
        assert stats.n_providers == 4
        assert stats.n_owners == 3
        assert stats.published_positives == 6
        assert stats.avg_result_size == pytest.approx(2.0)
        assert stats.broadcast_owners == 0

    def test_broadcast_owner_counted(self):
        published = np.ones((3, 1), dtype=np.uint8)
        assert PPIIndex(published).stats().broadcast_owners == 1


class TestConstruction:
    def test_requires_2d(self):
        with pytest.raises(ModelError):
            PPIIndex(np.zeros(3, dtype=np.uint8))

    def test_requires_boolean(self):
        with pytest.raises(ModelError):
            PPIIndex(np.full((2, 2), 2, dtype=np.uint8))

    def test_owner_names_length_checked(self):
        with pytest.raises(ModelError):
            PPIIndex(np.zeros((2, 2), dtype=np.uint8), owner_names=["a"])


class TestSerialization:
    def test_json_roundtrip(self, index):
        loaded = PPIIndex.from_json(index.to_json())
        assert np.array_equal(loaded.matrix, index.matrix)
        assert loaded.query_by_name("alice") == index.query_by_name("alice")

    def test_json_without_names(self):
        idx = PPIIndex(np.eye(3, dtype=np.uint8))
        loaded = PPIIndex.from_json(idx.to_json())
        assert np.array_equal(loaded.matrix, idx.matrix)
