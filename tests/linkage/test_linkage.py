"""Tests for the privacy-preserving record-linkage module."""

import pytest

from repro.linkage.bloom import BloomEncoder, bigrams, dice_coefficient
from repro.linkage.matcher import (
    FieldWeights,
    MatchDecision,
    RecordMatcher,
    link_records,
)


class TestBigrams:
    def test_basic_extraction(self):
        assert bigrams("ab") == {"_a", "ab", "b_"}

    def test_normalization(self):
        assert bigrams("José") == bigrams("jose")
        assert bigrams("O'Brien") == bigrams("obrien")
        assert bigrams("  SMITH ") == bigrams("smith")

    def test_empty(self):
        assert bigrams("") == set()
        assert bigrams("!!!") == set()

    def test_similar_strings_share_grams(self):
        a, b = bigrams("jonathan"), bigrams("johnathan")
        assert len(a & b) >= len(a) - 2


class TestBloomEncoder:
    def test_deterministic(self):
        enc = BloomEncoder(key=b"k")
        assert enc.encode("smith") == enc.encode("smith")

    def test_different_keys_incomparable(self):
        a = BloomEncoder(key=b"k1").encode("smith")
        b = BloomEncoder(key=b"k2").encode("smith")
        assert dice_coefficient(a, b) < 0.5  # keys decorrelate the filters

    def test_similarity_tracks_string_similarity(self):
        enc = BloomEncoder(key=b"k")
        same = dice_coefficient(enc.encode("katherine"), enc.encode("catherine"))
        diff = dice_coefficient(enc.encode("katherine"), enc.encode("zbigniew"))
        assert same > 0.6
        assert diff < 0.4
        assert same > diff

    def test_encode_record(self):
        enc = BloomEncoder(key=b"k")
        rec = enc.encode_record({"first_name": "anna", "city": "atlanta"})
        assert set(rec) == {"first_name", "city"}

    def test_size_mismatch_rejected(self):
        a = BloomEncoder(size=256, key=b"k").encode("x")
        b = BloomEncoder(size=512, key=b"k").encode("x")
        with pytest.raises(ValueError):
            dice_coefficient(a, b)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BloomEncoder(size=4)
        with pytest.raises(ValueError):
            BloomEncoder(hashes=0)

    def test_empty_filters_similar(self):
        enc = BloomEncoder(key=b"k")
        assert dice_coefficient(enc.encode(""), enc.encode("")) == 1.0


class TestRecordMatcher:
    @pytest.fixture
    def encoder(self):
        return BloomEncoder(key=b"linkage-key")

    @pytest.fixture
    def matcher(self):
        return RecordMatcher()

    def test_identical_records_match(self, encoder, matcher):
        rec = encoder.encode_record(
            {"first_name": "maria", "last_name": "garcia",
             "date_of_birth": "1980-02-14", "city": "atlanta"}
        )
        result = matcher.compare(rec, rec)
        assert result.decision is MatchDecision.MATCH
        assert result.score == pytest.approx(1.0)

    def test_typo_still_matches(self, encoder, matcher):
        a = encoder.encode_record(
            {"first_name": "maria", "last_name": "garcia",
             "date_of_birth": "1980-02-14", "city": "atlanta"}
        )
        b = encoder.encode_record(
            {"first_name": "mariah", "last_name": "garcia",
             "date_of_birth": "1980-02-14", "city": "atlanta"}
        )
        assert matcher.compare(a, b).decision is MatchDecision.MATCH

    def test_different_patients_non_match(self, encoder, matcher):
        a = encoder.encode_record(
            {"first_name": "maria", "last_name": "garcia",
             "date_of_birth": "1980-02-14", "city": "atlanta"}
        )
        b = encoder.encode_record(
            {"first_name": "wei", "last_name": "zhang",
             "date_of_birth": "1993-11-02", "city": "seattle"}
        )
        assert matcher.compare(a, b).decision is MatchDecision.NON_MATCH

    def test_missing_field_neutral(self, encoder, matcher):
        a = encoder.encode_record(
            {"first_name": "maria", "last_name": "garcia",
             "date_of_birth": "1980-02-14"}
        )
        b = encoder.encode_record(
            {"first_name": "maria", "last_name": "garcia",
             "date_of_birth": "1980-02-14", "city": "atlanta"}
        )
        result = matcher.compare(a, b)
        assert result.per_field["city"] == 0.5
        assert result.decision is not MatchDecision.NON_MATCH

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            RecordMatcher(match_threshold=0.5, possible_threshold=0.8)

    def test_weights_validation(self):
        with pytest.raises(ValueError):
            FieldWeights(weights=(("a", 0.0),)).normalized()


class TestLinkRecords:
    def test_clusters_same_patient_across_hospitals(self):
        enc = BloomEncoder(key=b"hie-key")
        records = [
            # patient A at two hospitals, slightly different spellings
            {"first_name": "katherine", "last_name": "oconnor",
             "date_of_birth": "1975-06-01", "city": "boston"},
            {"first_name": "catherine", "last_name": "o'connor",
             "date_of_birth": "1975-06-01", "city": "boston"},
            # patient B
            {"first_name": "james", "last_name": "lee",
             "date_of_birth": "1990-01-20", "city": "denver"},
        ]
        encoded = [enc.encode_record(r) for r in records]
        clusters = link_records(encoded, RecordMatcher())
        assert [0, 1] in clusters
        assert [2] in clusters

    def test_transitive_linking(self):
        enc = BloomEncoder(key=b"k")
        base = {"first_name": "alexander", "last_name": "petrov",
                "date_of_birth": "1982-09-09", "city": "chicago"}
        variant1 = dict(base, first_name="alexandr")
        variant2 = dict(base, first_name="aleksander")
        encoded = [enc.encode_record(r) for r in (base, variant1, variant2)]
        clusters = link_records(encoded, RecordMatcher())
        assert len(clusters) == 1

    def test_empty_input(self):
        assert link_records([], RecordMatcher()) == []
