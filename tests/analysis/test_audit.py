"""Tests for the owner-facing privacy audit."""

import numpy as np
import pytest

from repro.analysis.audit import audit_index
from repro.core.errors import ModelError
from repro.core.model import MembershipMatrix


@pytest.fixture
def matrix():
    m = MembershipMatrix(10, 3)
    m.set(0, 0)
    m.set(1, 0)  # owner 0: freq 2
    m.set(4, 1)  # owner 1: freq 1
    for pid in range(10):
        m.set(pid, 2)  # owner 2: broadcast by truth
    return m


def published_from(matrix, noise):
    published = matrix.to_dense().copy()
    for pid, oid in noise:
        published[pid, oid] = 1
    return published


class TestAudit:
    def test_per_owner_numbers(self, matrix):
        published = published_from(matrix, [(2, 0), (3, 0)])  # 2 noise for o0
        eps = np.array([0.5, 0.0, 0.6])
        audit = audit_index(matrix, published, eps, owner_names=["a", "b", "c"])
        o0 = audit.owners[0]
        assert o0.name == "a"
        assert o0.true_frequency == 2
        assert o0.published_size == 4
        assert o0.false_positive_rate == pytest.approx(0.5)
        assert o0.attacker_confidence == pytest.approx(0.5)
        assert o0.satisfied  # fp 0.5 >= eps 0.5

    def test_violation_detected(self, matrix):
        published = published_from(matrix, [])  # no noise at all
        eps = np.array([0.5, 0.3, 0.0])
        audit = audit_index(matrix, published, eps)
        violators = audit.violators()
        assert {v.owner_id for v in violators} == {0, 1}
        assert audit.worst_violation == pytest.approx(0.5)

    def test_broadcast_flagged(self, matrix):
        published = published_from(matrix, [])
        eps = np.zeros(3)
        audit = audit_index(matrix, published, eps)
        assert audit.owners[2].broadcast
        assert audit.broadcast_count == 1

    def test_success_ratio_matches_privacy_module(self, matrix, np_rng):
        from repro.core.privacy import evaluate_index

        published = published_from(matrix, [(5, 0), (6, 1), (7, 1)])
        eps = np.array([0.2, 0.6, 0.1])
        audit = audit_index(matrix, published, eps)
        report = evaluate_index(matrix, published, eps)
        assert audit.success_ratio == pytest.approx(report.success_ratio)

    def test_epsilon_count_checked(self, matrix):
        with pytest.raises(ModelError):
            audit_index(matrix, matrix.to_dense(), np.zeros(2))

    def test_name_count_checked(self, matrix):
        with pytest.raises(ModelError):
            audit_index(matrix, matrix.to_dense(), np.zeros(3), owner_names=["x"])

    def test_cli_audit_command(self, tmp_path, capsys):
        from repro.cli import main

        ds = tmp_path / "d.json"
        idx = tmp_path / "i.json"
        assert main([
            "generate", "--kind", "zipf", "--providers", "30", "--owners", "40",
            "--output", str(ds),
        ]) == 0
        assert main([
            "construct", "--dataset", str(ds), "--output", str(idx),
        ]) == 0
        capsys.readouterr()
        assert main(["audit", "--dataset", str(ds), "--index", str(idx)]) == 0
        out = capsys.readouterr().out
        assert "success ratio" in out
        assert "violators" in out
