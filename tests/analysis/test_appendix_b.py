"""Tests for the executable Appendix-B analysis."""

import numpy as np
import pytest

from repro.analysis.appendix_b import common_term_exposure, grouping_fp_spread
from repro.datasets.synthetic import exact_frequency_matrix


class TestGroupingSpread:
    def test_fp_rate_is_assignment_dependent(self, np_rng):
        """NO GUARANTEE, executably: the same term's realized fp rate swings
        across random group assignments."""
        # Group size 2 with f comparable to the group count: the number of
        # collision-free groups (and hence the list size) varies run to run.
        matrix = exact_frequency_matrix(40, [10], np_rng)
        spread = grouping_fp_spread(matrix, term=0, n_groups=20, rng=np_rng)
        assert spread.unstable
        assert spread.fp_rates.min() < spread.fp_rates.max()

    def test_single_group_perfectly_stable(self, np_rng):
        """Degenerate case: one group = broadcast, fp identical every run."""
        matrix = exact_frequency_matrix(100, [5], np_rng)
        spread = grouping_fp_spread(matrix, term=0, n_groups=1, rng=np_rng)
        assert spread.spread == pytest.approx(0.0)
        assert not spread.unstable

    def test_absent_term_zero_rates(self, np_rng):
        matrix = exact_frequency_matrix(50, [0], np_rng)
        spread = grouping_fp_spread(matrix, term=0, n_groups=5, rng=np_rng)
        assert np.all(spread.fp_rates == 0.0)


class TestCommonTermExposure:
    @pytest.mark.parametrize("n_groups", [2, 5, 20])
    def test_extreme_case_always_identifies_common(self, n_groups, np_rng):
        """Appendix B: 'as long as there are more than two groups, the rare
        terms can only show up in one group ... the attacker [identifies]
        the true common terms ... with 100% confidence'."""
        exposure = common_term_exposure(
            m=100, n_rare=50, n_groups=n_groups, rng=np_rng
        )
        assert exposure.groups_lit_by_common == n_groups
        assert exposure.max_groups_lit_by_rare == 1
        assert exposure.identifiable_with_certainty

    def test_needs_two_groups(self, np_rng):
        with pytest.raises(ValueError):
            common_term_exposure(m=10, n_rare=5, n_groups=1, rng=np_rng)

    def test_epsilon_ppi_counterpoint(self, np_rng):
        """The same extreme case under ǫ-PPI: mixing publishes decoys at
        100 % apparent frequency, so the common term is no longer unique."""
        from repro.attacks.adversary import AdversaryKnowledge
        from repro.attacks.common_identity import common_identity_attack
        from repro.core.mixing import mix_betas
        from repro.core.policies import ChernoffPolicy
        from repro.core.publication import publish_matrix
        from repro.core.model import MembershipMatrix

        m, n_rare = 100, 200
        matrix = MembershipMatrix(m, n_rare + 1)
        for pid in range(m):
            matrix.set(pid, 0)
        rng = np.random.default_rng(8)
        for j in range(1, n_rare + 1):
            matrix.set(int(rng.integers(m)), j)
        eps = np.full(n_rare + 1, 0.8)
        sigmas = np.array([matrix.sigma(j) for j in range(n_rare + 1)])
        betas = ChernoffPolicy(0.9).beta_vector(sigmas, eps, m)
        mixing = mix_betas(betas, eps, rng, sigmas=sigmas)
        published = publish_matrix(matrix, mixing.betas, rng)
        attack = common_identity_attack(
            matrix, AdversaryKnowledge(published=published), rng
        )
        assert attack.identification_confidence <= 0.2 + 0.15
