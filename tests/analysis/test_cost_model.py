"""Tests for the closed-form per-phase construction cost model.

The model's claims are checked against *measured* subsystem output: the
offline estimates against a real factory's metered stats, the online
estimates against the batch engine's accounting, and the triple-word
demand against what a factory-fed construction actually consumed.
"""

import random

import pytest

from repro.analysis.cost_model import ConstructionCostModel
from repro.core.policies import BasicPolicy
from repro.mpc.betacalc import secure_beta_calculation, secure_beta_update
from repro.mpc.countbelow import COIN_BITS
from repro.mpc.offline.factory import TripleFactory

M = 16
N_IDS = 48
C = 3


@pytest.fixture(scope="module")
def factory_run():
    """One factory-fed construction, returning (result, model, lambda)."""
    rng = random.Random(99)
    bits = [[rng.randint(0, 1) for _ in range(N_IDS)] for _ in range(M)]
    eps = [rng.random() for _ in range(N_IDS)]
    result = secure_beta_calculation(
        bits,
        eps,
        BasicPolicy(),
        c=C,
        rng=random.Random(0),
        engine="batch",
        triple_source="factory",
        offline_producers=2,
    )
    model = ConstructionCostModel(M, N_IDS, C, producers=2)
    lam = round(result.lambda_ * (1 << COIN_BITS))
    return result, model, lam


class TestWordDemand:
    def test_total_words_matches_consumption(self, factory_run):
        result, model, lam = factory_run
        assert result.phases.triple_words_consumed == model.total_words(lam, "batch")

    def test_count_plus_selection_is_total(self, factory_run):
        _, model, lam = factory_run
        assert model.total_words(lam, "batch") == model.count_phase_words(
            "batch"
        ) + model.selection_phase_words(lam, "batch")

    def test_scalar_demand_at_least_triples_over_64(self, factory_run):
        _, model, lam = factory_run
        # Batch pads every stage chunk to whole words per AND; the scalar
        # engine packs lanes densely, so it can never need more words.
        assert model.total_words(lam, "scalar") <= model.total_words(lam, "batch")


class TestOfflineEstimates:
    def test_setup_matches_factory_metering(self, factory_run):
        result, model, _ = factory_run
        est = model.setup(producers=2)
        assert result.phases.setup.bits_sent == est.bits_sent
        assert result.phases.setup.messages == est.messages

    def test_offline_bits_and_messages_exact(self, factory_run):
        result, model, _ = factory_run
        produced = result.phases.triple_words_produced
        est = model.offline(produced)
        assert result.phases.offline.bits_sent == est.bits_sent
        assert result.phases.offline.messages == est.messages

    def test_offline_rounds_are_balanced_pool_lower_bound(self, factory_run):
        result, model, _ = factory_run
        produced = result.phases.triple_words_produced
        est = model.offline(produced)
        # The model assumes a perfectly balanced pool; work-queue skew can
        # only make the slowest producer run *more* sequential blocks.
        assert result.phases.offline.rounds >= est.rounds

    def test_offline_matches_prefilled_factory(self):
        words = 300
        model = ConstructionCostModel(M, N_IDS, C, producers=2)
        factory = TripleFactory(
            parties=C,
            seed=5,
            target_words=words,
            producers=2,
            capacity_words=words,
            link_bandwidth_bps=None,
        ).start()
        try:
            factory.join_producers(timeout=60)
            est = model.offline(words)
            assert factory.offline_stats.bits_sent == est.bits_sent
            assert factory.offline_stats.messages == est.messages
            assert factory.offline_stats.rounds >= est.rounds
            setup_est = model.setup(producers=2)
            assert factory.setup_stats.bits_sent == setup_est.bits_sent
        finally:
            factory.close()


class TestOnlineEstimates:
    def test_online_matches_measured_engine_stats(self, factory_run):
        result, model, lam = factory_run
        count = model.online_count_stats()
        sel = model.online_selection_stats(lam)
        assert result.count_result.stats.bits_sent == count.bits_sent
        assert result.count_result.stats.rounds == count.rounds
        assert result.count_result.stats.and_gates == count.and_gates
        assert result.selection_result.stats.bits_sent == sel.bits_sent
        assert result.selection_result.stats.rounds == sel.rounds

    def test_online_estimate_aggregates_stages(self, factory_run):
        result, model, lam = factory_run
        est = model.online(lam)
        measured = (
            result.count_result.stats.bits_sent
            + result.selection_result.stats.bits_sent
        )
        assert est.bits_sent == measured
        assert result.phases.online.bits_sent == measured


class TestIncrementalEstimates:
    """The closed form prices a real ``secure_beta_update`` pass exactly."""

    @pytest.fixture(scope="class")
    def update_run(self):
        rng = random.Random(5)
        bits = [[rng.randint(0, 1) for _ in range(N_IDS)] for _ in range(M)]
        eps = [rng.random() for _ in range(N_IDS)]
        held = secure_beta_calculation(
            bits,
            eps,
            BasicPolicy(),
            c=C,
            rng=random.Random(1),
            engine="batch",
            keep_state=True,
        )
        dirty = [3, 7, 20, 41]
        for j in dirty:
            bits[0][j] ^= 1
        result = secure_beta_update(
            held.state,
            bits,
            dirty,
            random.Random(2),
            triple_source="factory",
            offline_producers=2,
        )
        model = ConstructionCostModel(M, N_IDS, C, producers=2)
        lam = round(result.lambda_ * (1 << COIN_BITS))
        return result, model, lam

    def test_count_stats_exact(self, update_run):
        result, model, _ = update_run
        predicted = model.incremental_count_stats(result.incremental.dirty)
        measured = result.count_result.stats
        for field in ("and_gates", "bits_sent", "messages", "rounds"):
            assert getattr(predicted, field) == getattr(measured, field), field

    def test_selection_stats_exact(self, update_run):
        result, model, lam = update_run
        predicted = model.incremental_selection_stats(
            len(result.incremental.closure), lam
        )
        measured = result.selection_result.stats
        for field in ("and_gates", "bits_sent", "rounds"):
            assert getattr(predicted, field) == getattr(measured, field), field

    def test_incremental_online_aggregates(self, update_run):
        result, model, lam = update_run
        est = model.incremental_online(
            result.incremental.dirty, len(result.incremental.closure), lam
        )
        assert est.bits_sent == (
            result.count_result.stats.bits_sent
            + result.selection_result.stats.bits_sent
        )
        assert "closure" in est.formula

    def test_words_match_factory_consumption(self, update_run):
        result, model, lam = update_run
        words = model.incremental_total_words(
            result.incremental.dirty,
            len(result.incremental.closure),
            lam,
            "batch",
        )
        assert result.phases.triple_words_consumed == words
        assert result.incremental.triple_words_provisioned >= 1

    def test_incremental_never_exceeds_the_full_run(self, update_run):
        result, model, lam = update_run
        inc = model.incremental_online(
            result.incremental.dirty, len(result.incremental.closure), lam
        )
        full = model.online(lam)
        assert inc.bits_sent < full.bits_sent

    def test_empty_dirty_set_prices_to_zero(self):
        model = ConstructionCostModel(M, N_IDS, C)
        assert model.incremental_count_stats([]).and_gates == 0
        assert model.incremental_count_words([], "batch") == 0
        assert model.incremental_selection_words(0, 100, "batch") == 0


class TestModelSurface:
    def test_formulas_are_human_readable(self):
        model = ConstructionCostModel(M, N_IDS, C)
        assert "kappa" in model.setup().formula
        assert "words" in model.offline(100).formula
        assert "AND layers" in model.online(1).formula

    def test_describe_smoke(self):
        text = ConstructionCostModel(M, N_IDS, C).describe(lambda_scaled=7)
        assert "triple demand" in text
        assert "offline" in text
        assert str(N_IDS) in text

    def test_bytes_property(self):
        est = ConstructionCostModel(M, N_IDS, C).setup()
        assert est.bytes_sent == est.bits_sent / 8

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstructionCostModel(0, 10, 3)
        with pytest.raises(ValueError):
            ConstructionCostModel(4, 10, 1)
        with pytest.raises(ValueError):
            ConstructionCostModel(4, 10, 3, lanes=65)
