"""Tests for the experiment harness and reporting."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    grouping_success_ratio,
    policy_success_ratio,
    search_cost_grouping,
    search_cost_nongrouping,
    table2_experiment,
)
from repro.analysis.reporting import format_series, format_table
from repro.core.policies import BasicPolicy, ChernoffPolicy
from repro.core.privacy import PrivacyDegree
from repro.datasets.synthetic import exact_frequency_matrix


class TestPolicySuccessRatio:
    def test_chernoff_near_one(self, np_rng):
        pp = policy_success_ratio(
            5000, 50, 0.5, ChernoffPolicy(0.9), np_rng, samples=300
        )
        assert pp >= 0.9

    def test_basic_near_half(self, np_rng):
        pp = policy_success_ratio(5000, 50, 0.5, BasicPolicy(), np_rng, samples=500)
        assert 0.3 < pp < 0.7

    def test_zero_frequency_trivially_succeeds(self, np_rng):
        pp = policy_success_ratio(100, 0, 0.5, BasicPolicy(), np_rng)
        assert pp == 1.0

    def test_frequency_validation(self, np_rng):
        with pytest.raises(ValueError):
            policy_success_ratio(10, 11, 0.5, BasicPolicy(), np_rng)


class TestGroupingSuccessRatio:
    def test_large_groups_high_fp(self, np_rng):
        """Few groups => huge lists => high fp => success at moderate eps."""
        pp = grouping_success_ratio(1000, 10, 0.5, 10, np_rng, samples=50)
        assert pp == 1.0

    def test_small_groups_fail_high_eps(self, np_rng):
        """Many groups => small lists => fp too low for strict eps."""
        pp = grouping_success_ratio(1000, 100, 0.95, 500, np_rng, samples=50)
        assert pp < 0.5

    def test_zero_frequency(self, np_rng):
        assert grouping_success_ratio(100, 0, 0.5, 10, np_rng) == 1.0


class TestSearchCost:
    def test_nongrouping_cost_scales_with_epsilon(self, np_rng):
        low = search_cost_nongrouping(1000, 10, 0.2, BasicPolicy(), np_rng)
        high = search_cost_nongrouping(1000, 10, 0.9, BasicPolicy(), np_rng)
        assert high > low

    def test_nongrouping_cost_at_least_frequency(self, np_rng):
        cost = search_cost_nongrouping(1000, 50, 0.5, BasicPolicy(), np_rng)
        assert cost >= 50

    def test_grouping_cost_multiple_of_group_size(self, np_rng):
        cost = search_cost_grouping(1000, 1, 100, np_rng)
        assert cost == pytest.approx(10.0)  # single positive group of size 10

    def test_grouping_zero_frequency(self, np_rng):
        assert search_cost_grouping(100, 0, 10, np_rng) == 0.0


class TestTable2:
    def test_degrees_match_paper(self):
        """Table II: grouping NO-GUARANTEE/NO-GUARANTEE, SS-PPI
        NO-GUARANTEE/NO-PROTECT, ǫ-PPI ǫ-PRIVATE/ǫ-PRIVATE."""
        rng = np.random.default_rng(5)
        m = 500
        freqs = list(np.random.default_rng(1).integers(1, 50, size=395)) + [
            480, 490, 495, 500, 485,
        ]
        matrix = exact_frequency_matrix(m, [int(f) for f in freqs], rng)
        eps = np.random.default_rng(2).uniform(0.55, 0.95, size=400)
        rows = table2_experiment(
            matrix, eps, ChernoffPolicy(0.9), n_groups=100, rng=rng
        )
        by_system = {r.system: r for r in rows}
        assert by_system["grouping-ppi"].primary_degree is PrivacyDegree.NO_GUARANTEE
        assert by_system["grouping-ppi"].common_degree is PrivacyDegree.NO_GUARANTEE
        assert by_system["ss-ppi"].common_degree is PrivacyDegree.NO_PROTECT
        assert by_system["eps-ppi"].primary_degree is PrivacyDegree.EPS_PRIVATE
        assert by_system["eps-ppi"].common_degree is PrivacyDegree.EPS_PRIVATE

    def test_confidence_ordering(self):
        """ǫ-PPI's attacker confidence must be far below the baselines'."""
        rng = np.random.default_rng(7)
        m = 300
        freqs = list(np.random.default_rng(3).integers(1, 30, size=195)) + [
            290, 295, 300, 285, 298,
        ]
        matrix = exact_frequency_matrix(m, [int(f) for f in freqs], rng)
        eps = np.random.default_rng(4).uniform(0.6, 0.9, size=200)
        rows = table2_experiment(
            matrix, eps, ChernoffPolicy(0.9), n_groups=60, rng=rng
        )
        by_system = {r.system: r for r in rows}
        assert (
            by_system["eps-ppi"].primary_mean_confidence
            < by_system["grouping-ppi"].primary_mean_confidence
        )
        assert (
            by_system["eps-ppi"].common_identification_confidence
            < by_system["ss-ppi"].common_identification_confidence
        )


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.34567], [10, 3]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert lines[0].startswith("a")
        assert "2.346" in text

    def test_format_series(self):
        text = format_series("x", [1, 2], {"s1": [0.1, 0.2], "s2": [0.3, 0.4]})
        assert "s1" in text and "s2" in text
        assert len(text.splitlines()) == 4
