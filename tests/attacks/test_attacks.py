"""Tests for the primary and common-identity attacks."""

import numpy as np
import pytest

from repro.attacks.adversary import AdversaryKnowledge
from repro.attacks.common_identity import common_identity_attack
from repro.attacks.primary import primary_attack, primary_attack_confidences
from repro.core.model import MembershipMatrix


@pytest.fixture
def matrix():
    m = MembershipMatrix(10, 3)
    for pid in (0, 1):
        m.set(pid, 0)  # owner 0: frequency 2
    for pid in range(10):
        m.set(pid, 1)  # owner 1: common
    m.set(5, 2)  # owner 2: rare
    return m


class TestAdversaryKnowledge:
    def test_apparent_frequencies(self, matrix):
        knowledge = AdversaryKnowledge(published=matrix.to_dense())
        assert knowledge.apparent_frequencies().tolist() == [2, 10, 1]

    def test_leak_preferred_when_present(self, matrix):
        noisy = np.ones((10, 3), dtype=np.uint8)
        knowledge = AdversaryKnowledge(
            published=noisy, leaked_frequencies=np.array([2, 10, 1])
        )
        assert knowledge.best_frequency_estimate().tolist() == [2, 10, 1]

    def test_candidates(self, matrix):
        knowledge = AdversaryKnowledge(published=matrix.to_dense())
        assert knowledge.candidate_providers(0).tolist() == [0, 1]

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            AdversaryKnowledge(published=np.zeros(3))


class TestPrimaryAttack:
    def test_exact_confidence_no_noise(self, matrix):
        """Truthful index: every claim succeeds (confidence 1)."""
        knowledge = AdversaryKnowledge(published=matrix.to_dense())
        conf = primary_attack_confidences(matrix, knowledge)
        assert conf.tolist() == [1.0, 1.0, 1.0]

    def test_exact_confidence_with_noise(self, matrix):
        published = matrix.to_dense().copy()
        published[2, 0] = 1  # one false positive for owner 0
        published[3, 0] = 1  # another
        knowledge = AdversaryKnowledge(published=published)
        conf = primary_attack_confidences(matrix, knowledge)
        assert conf[0] == pytest.approx(0.5)  # 2 true / 4 published

    def test_unattackable_owner_zero_confidence(self):
        matrix = MembershipMatrix(4, 1)
        knowledge = AdversaryKnowledge(published=np.zeros((4, 1), dtype=np.uint8))
        conf = primary_attack_confidences(matrix, knowledge)
        assert conf[0] == 0.0

    def test_monte_carlo_matches_exact(self, matrix, np_rng):
        published = matrix.to_dense().copy()
        published[2, 0] = 1
        published[3, 0] = 1
        knowledge = AdversaryKnowledge(published=published)
        result = primary_attack(
            matrix, knowledge, np.array([0]), np_rng, trials=3000
        )
        assert result.confidences[0] == pytest.approx(0.5, abs=0.05)

    def test_mean_confidence(self, matrix, np_rng):
        knowledge = AdversaryKnowledge(published=matrix.to_dense())
        result = primary_attack(matrix, knowledge, np.array([0, 1]), np_rng)
        assert result.mean_confidence == 1.0


class TestCommonIdentityAttack:
    def test_identifies_common_without_protection(self, matrix, np_rng):
        knowledge = AdversaryKnowledge(published=matrix.to_dense())
        result = common_identity_attack(matrix, knowledge, np_rng)
        assert result.claimed_common.tolist() == [1]
        assert result.identification_confidence == 1.0
        assert result.membership_confidence == 1.0

    def test_decoys_reduce_identification(self, matrix, np_rng):
        """Mixing defence: publish a decoy at full frequency; identification
        confidence drops to 1/2."""
        published = matrix.to_dense().copy()
        published[:, 0] = 1  # owner 0 mixed in as decoy
        knowledge = AdversaryKnowledge(published=published)
        result = common_identity_attack(matrix, knowledge, np_rng)
        assert set(result.claimed_common.tolist()) == {0, 1}
        assert result.identification_confidence == pytest.approx(0.5)
        # Membership claims against the decoy mostly fail.
        assert result.membership_confidence < 1.0

    def test_leak_overrides_mixing(self, matrix, np_rng):
        """If the construction leaks true frequencies, mixing is useless
        (the SS-PPI failure)."""
        published = matrix.to_dense().copy()
        published[:, 0] = 1  # decoy published
        knowledge = AdversaryKnowledge(
            published=published,
            leaked_frequencies=np.array([2, 10, 1]),
        )
        result = common_identity_attack(matrix, knowledge, np_rng)
        assert result.claimed_common.tolist() == [1]
        assert result.identification_confidence == 1.0

    def test_no_commons_no_attack(self, np_rng):
        matrix = MembershipMatrix(10, 2)
        matrix.set(0, 0)
        matrix.set(1, 1)
        knowledge = AdversaryKnowledge(published=matrix.to_dense())
        result = common_identity_attack(matrix, knowledge, np_rng)
        assert not result.attacked
        assert result.identification_confidence == 0.0

    def test_threshold_configurable(self, matrix, np_rng):
        knowledge = AdversaryKnowledge(published=matrix.to_dense())
        result = common_identity_attack(
            matrix, knowledge, np_rng, commonness_threshold=0.15
        )
        # owner 0 (freq 0.2) now also counts as common.
        assert 0 in result.claimed_common.tolist()
