"""Static attacks through the sealed-segment / overlay query surface.

The attacks in :mod:`repro.attacks` grade a dense published matrix.  The
serving stack, however, answers from a base snapshot overlaid with sealed
delta segments.  These tests rebuild the adversary's view *through* that
query surface -- :meth:`OverlayIndex.query` per owner -- and assert every
attack scores identically to the direct dense path, so nothing about the
overlay machinery (per-owner overrides, newest-segment-wins, id gaps)
changes what an adversary can learn.
"""

import numpy as np
import pytest

from repro.attacks.adversary import AdversaryKnowledge
from repro.attacks.common_identity import common_identity_attack
from repro.attacks.intersection import intersection_attack
from repro.attacks.primary import primary_attack_confidences
from repro.core.model import MembershipMatrix
from repro.core.postings import PostingsIndex
from repro.updates import DeltaLog, OverlayIndex, load_segment, seal_segment

NOISE_KEY = b"\x11" * 16


@pytest.fixture
def matrix():
    m = MembershipMatrix(10, 6)
    for pid in (0, 1):
        m.set(pid, 0)  # frequency 2
    for pid in range(10):
        m.set(pid, 1)  # common identity
    m.set(5, 2)  # rare
    m.set(2, 3)
    m.set(3, 3)
    m.set(7, 4)
    m.set(8, 5)
    m.set(9, 5)
    return m


def published_with_noise(matrix):
    published = matrix.to_dense().copy()
    published[2, 0] = 1  # false positives for owner 0
    published[3, 0] = 1
    published[6, 2] = 1  # and one for owner 2
    return published


def overlay_view(published, overlay_owners, tmp_path, tag="seg"):
    """Serve ``published`` with ``overlay_owners`` answered by a sealed
    segment instead of the base snapshot, then rebuild the dense matrix
    owner by owner through the overlay's query surface."""
    base_dense = published.copy()
    base_dense[:, list(overlay_owners)] = 0  # those rows live in the segment
    base = PostingsIndex.from_dense(base_dense)

    log_path = tmp_path / f"{tag}.log"
    with DeltaLog.create(
        str(log_path), published.shape[0], noise_key=NOISE_KEY
    ) as log:
        for owner in overlay_owners:
            row = np.nonzero(published[:, owner])[0].tolist()
            # beta 0: the segment stores exactly the published row, so the
            # overlay surface -- not fresh noise -- is what's under test
            log.upsert(owner, row, beta=0.0)
        seg_path = tmp_path / f"{tag}.seg.npz"
        seal_segment(log, str(seg_path), base_epoch=0)

    overlay = OverlayIndex(base, [load_segment(str(seg_path))])
    rebuilt = np.zeros_like(published)
    for owner in range(published.shape[1]):
        rebuilt[np.asarray(overlay.query(owner), dtype=int), owner] = 1
    return rebuilt


class TestOverlayViewIsExact:
    def test_rebuilt_matrix_matches_published(self, matrix, tmp_path):
        published = published_with_noise(matrix)
        rebuilt = overlay_view(published, {1, 3, 5}, tmp_path)
        assert np.array_equal(rebuilt, published)


class TestAttacksThroughOverlay:
    def test_primary_attack_identical(self, matrix, tmp_path):
        published = published_with_noise(matrix)
        rebuilt = overlay_view(published, {0, 2, 4}, tmp_path)
        direct = primary_attack_confidences(
            matrix, AdversaryKnowledge(published=published)
        )
        via_overlay = primary_attack_confidences(
            matrix, AdversaryKnowledge(published=rebuilt)
        )
        assert via_overlay.tolist() == direct.tolist()

    def test_common_identity_attack_identical(self, matrix, tmp_path):
        published = published_with_noise(matrix)
        rebuilt = overlay_view(published, {1, 2}, tmp_path)
        direct = common_identity_attack(
            matrix,
            AdversaryKnowledge(published=published),
            np.random.default_rng(0),
        )
        via_overlay = common_identity_attack(
            matrix,
            AdversaryKnowledge(published=rebuilt),
            np.random.default_rng(0),
        )
        assert (
            via_overlay.claimed_common.tolist()
            == direct.claimed_common.tolist()
        )
        assert (
            via_overlay.identification_confidence
            == direct.identification_confidence
        )
        assert (
            via_overlay.membership_confidence == direct.membership_confidence
        )

    def test_intersection_attack_identical(self, matrix, tmp_path):
        v1 = published_with_noise(matrix)
        v2 = matrix.to_dense().copy()
        v2[4, 0] = 1  # a different noise draw for the second version
        v2[6, 2] = 1
        direct = intersection_attack(matrix, [v1, v2])
        via_overlay = intersection_attack(
            matrix,
            [
                overlay_view(v1, {0, 3}, tmp_path, tag="v1"),
                overlay_view(v2, {1, 5}, tmp_path, tag="v2"),
            ],
        )
        assert np.array_equal(via_overlay.intersection, direct.intersection)
        assert via_overlay.confidences.tolist() == direct.confidences.tolist()
        assert (
            via_overlay.survivors_per_owner.tolist()
            == direct.survivors_per_owner.tolist()
        )
