"""Tests for the multi-version intersection attack and sticky noise."""

import numpy as np
import pytest

from repro.attacks.intersection import intersection_attack
from repro.core.model import MembershipMatrix
from repro.core.publication import publish_matrix
from repro.core.sticky import StickyPublisher, sticky_publish_matrix


@pytest.fixture
def matrix():
    m = MembershipMatrix(60, 5)
    rng = np.random.default_rng(1)
    for j in range(5):
        for pid in rng.choice(60, size=4, replace=False):
            m.set(int(pid), j)
    return m


BETAS = np.full(5, 0.5)


class TestIntersectionAttack:
    def test_single_version_equals_published(self, matrix, np_rng):
        published = publish_matrix(matrix, BETAS, np_rng)
        result = intersection_attack(matrix, [published])
        assert np.array_equal(result.intersection, published)

    def test_fresh_noise_erodes_under_intersection(self, matrix):
        """Independent republication: noise survives k versions with
        probability beta^k, so attacker confidence climbs toward 1."""
        rng = np.random.default_rng(3)
        versions = [publish_matrix(matrix, BETAS, rng) for _ in range(10)]
        one = intersection_attack(matrix, versions[:1])
        many = intersection_attack(matrix, versions)
        assert many.mean_confidence > one.mean_confidence
        assert many.mean_confidence > 0.9

    def test_true_positives_always_survive(self, matrix):
        rng = np.random.default_rng(4)
        versions = [publish_matrix(matrix, BETAS, rng) for _ in range(5)]
        result = intersection_attack(matrix, versions)
        dense = matrix.to_dense()
        assert np.all(result.intersection[dense == 1] == 1)

    def test_sticky_noise_defeats_intersection(self, matrix):
        """Sticky republication: every version is identical, so the
        intersection is exactly one version and confidence stays put."""
        keys = [bytes([pid]) * 16 for pid in range(matrix.n_providers)]
        versions = [
            sticky_publish_matrix(matrix, BETAS, keys) for _ in range(6)
        ]
        one = intersection_attack(matrix, versions[:1])
        many = intersection_attack(matrix, versions)
        assert np.array_equal(many.intersection, versions[0])
        assert many.mean_confidence == pytest.approx(one.mean_confidence)

    def test_shape_mismatch_rejected(self, matrix):
        with pytest.raises(ValueError):
            intersection_attack(matrix, [np.zeros((2, 2), dtype=np.uint8)])

    def test_empty_versions_rejected(self, matrix):
        with pytest.raises(ValueError):
            intersection_attack(matrix, [])


class TestStickyPublisher:
    def test_coins_deterministic(self):
        p = StickyPublisher(3, b"key")
        assert p.coin(7) == p.coin(7)

    def test_coins_differ_across_owners_and_providers(self):
        a, b = StickyPublisher(3, b"key"), StickyPublisher(4, b"key")
        coins_a = {a.coin(j) for j in range(50)}
        assert len(coins_a) == 50  # no collisions in practice
        assert a.coin(0) != b.coin(0)

    def test_coins_uniformish(self):
        p = StickyPublisher(0, b"seed")
        coins = [p.coin(j) for j in range(2000)]
        assert 0.45 < float(np.mean(coins)) < 0.55

    def test_monotone_in_beta(self):
        """Raising beta only ever adds published cells (never removes)."""
        p = StickyPublisher(1, b"key")
        row = np.zeros(200, dtype=np.uint8)
        low = p.publish_row(row, np.full(200, 0.3))
        high = p.publish_row(row, np.full(200, 0.7))
        assert np.all(high[low == 1] == 1)

    def test_recall_preserved(self):
        p = StickyPublisher(1, b"key")
        row = np.ones(20, dtype=np.uint8)
        out = p.publish_row(row, np.zeros(20))
        assert np.all(out == 1)

    def test_flip_rate_close_to_beta(self):
        p = StickyPublisher(2, b"key")
        row = np.zeros(5000, dtype=np.uint8)
        out = p.publish_row(row, np.full(5000, 0.3))
        assert 0.27 < out.mean() < 0.33

    def test_empty_key_rejected(self):
        with pytest.raises(Exception):
            StickyPublisher(0, b"")

    def test_matrix_requires_key_per_provider(self, matrix):
        with pytest.raises(Exception):
            sticky_publish_matrix(matrix, BETAS, [b"only-one"])
