"""Tests for colluding-provider attacks (index-side and construction-side)."""

import random

import numpy as np
import pytest

from repro.attacks.adversary import AdversaryKnowledge
from repro.attacks.collusion import (
    colluding_primary_attack,
    secsum_collusion_leakage,
)
from repro.core.model import MembershipMatrix
from repro.mpc.field import Zq, default_modulus_for_sum
from repro.mpc.secsum import SecSumShare


@pytest.fixture
def matrix():
    m = MembershipMatrix(10, 2)
    for pid in (0, 1, 2, 3):
        m.set(pid, 0)  # owner 0 at 4 providers
    m.set(5, 1)
    return m


class TestColludingPrimaryAttack:
    def test_outside_confidence_with_noise(self, matrix):
        published = matrix.to_dense().copy()
        published[6, 0] = 1  # noise
        published[7, 0] = 1  # noise
        knowledge = AdversaryKnowledge(published=published)
        result = colluding_primary_attack(
            matrix, knowledge, coalition={0, 1}, owner_ids=np.array([0])
        )
        # Candidates outside the coalition: {2, 3, 6, 7}; true: {2, 3}.
        assert result.confidences[0] == pytest.approx(0.5)
        # Claims against coalition members resolved exactly: both true.
        assert result.resolved_exactly[0] == 2

    def test_collusion_never_decreases_knowledge(self, matrix, np_rng):
        """With more colluders the unresolved candidate set shrinks; the
        resolved count grows monotonically."""
        published = matrix.to_dense().copy()
        published[6, 0] = 1
        knowledge = AdversaryKnowledge(published=published)
        resolved = []
        for k in (0, 2, 4):
            result = colluding_primary_attack(
                matrix, knowledge, coalition=set(range(k)), owner_ids=np.array([0])
            )
            resolved.append(int(result.resolved_exactly[0]))
        assert resolved == sorted(resolved)

    def test_all_candidates_colluding(self, matrix):
        knowledge = AdversaryKnowledge(published=matrix.to_dense())
        result = colluding_primary_attack(
            matrix, knowledge, coalition={0, 1, 2, 3}, owner_ids=np.array([0])
        )
        assert result.confidences[0] == 0.0  # nothing left to guess
        assert result.resolved_exactly[0] == 4

    def test_unknown_colluder_rejected(self, matrix):
        knowledge = AdversaryKnowledge(published=matrix.to_dense())
        with pytest.raises(ValueError):
            colluding_primary_attack(
                matrix, knowledge, coalition={99}, owner_ids=np.array([0])
            )


class TestSecSumCollusion:
    def run_secsum(self, m=8, c=3):
        inputs = [[1 if i < 5 else 0] for i in range(m)]
        ring = Zq(default_modulus_for_sum(m))
        result = SecSumShare(m, c, ring, random.Random(11)).run(inputs)
        return result, ring

    def test_below_c_coordinators_learn_nothing(self):
        result, ring = self.run_secsum()
        leak = secsum_collusion_leakage(
            result, coalition={0, 1, 5, 6, 7}, c=3, ring=ring, n_identities=1
        )
        assert not leak.breached
        assert leak.frequencies_recovered == {}
        assert leak.coordinator_members == {0, 1}

    def test_all_coordinators_breach(self):
        result, ring = self.run_secsum()
        leak = secsum_collusion_leakage(
            result, coalition={0, 1, 2}, c=3, ring=ring, n_identities=1
        )
        assert leak.breached
        assert leak.frequencies_recovered == {0: 5}

    def test_many_regular_providers_insufficient(self):
        """Even m-1 colluders cannot open the sum if one coordinator is
        honest (the (c, c) output sharing)."""
        result, ring = self.run_secsum(m=8, c=3)
        coalition = set(range(8)) - {2}  # coordinator 2 honest
        leak = secsum_collusion_leakage(
            result, coalition=coalition, c=3, ring=ring, n_identities=1
        )
        assert not leak.breached
