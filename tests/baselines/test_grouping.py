"""Tests for the grouping PPI and SS-PPI baselines."""

import numpy as np
import pytest

from repro.baselines.grouping import GroupingPPI
from repro.baselines.no_privacy import PlainIndex
from repro.baselines.ss_ppi import SSPPI
from repro.core.errors import ConstructionError
from repro.core.model import MembershipMatrix


@pytest.fixture
def matrix():
    m = MembershipMatrix(8, 3)
    # owner 0 at providers 0, 4; owner 1 at 1; owner 2 everywhere (common).
    m.set(0, 0)
    m.set(4, 0)
    m.set(1, 1)
    for pid in range(8):
        m.set(pid, 2)
    return m


class TestGroupingPPI:
    def test_groups_partition_providers(self, matrix, np_rng):
        result = GroupingPPI(4).construct(matrix, np_rng)
        assert len(result.group_of) == 8
        assert set(result.group_of) == set(range(4))
        # Balanced deal: group sizes all equal for 8 providers / 4 groups.
        sizes = np.bincount(result.group_of)
        assert sizes.tolist() == [2, 2, 2, 2]

    def test_group_reports_or_of_members(self, matrix, np_rng):
        result = GroupingPPI(4).construct(matrix, np_rng)
        dense = matrix.to_dense()
        for g in range(4):
            members = result.group_of == g
            expected = dense[members].max(axis=0)
            assert np.array_equal(result.group_reports[g], expected)

    def test_published_expands_group_reports(self, matrix, np_rng):
        result = GroupingPPI(4).construct(matrix, np_rng)
        for pid in range(8):
            assert np.array_equal(
                result.published[pid], result.group_reports[result.group_of[pid]]
            )

    def test_recall_preserved(self, matrix, np_rng):
        """Group reporting never loses a true positive."""
        result = GroupingPPI(4).construct(matrix, np_rng)
        dense = matrix.to_dense()
        assert np.all(result.published[dense == 1] == 1)

    def test_common_identity_visible_in_every_group(self, matrix, np_rng):
        """The Appendix-B weakness: a 100% identity is positive in all
        groups, so grouping hides nothing about it."""
        result = GroupingPPI(4).construct(matrix, np_rng)
        assert np.all(result.group_reports[:, 2] == 1)
        assert result.published[:, 2].sum() == 8

    def test_single_group_is_broadcast(self, matrix, np_rng):
        result = GroupingPPI(1).construct(matrix, np_rng)
        # One group: every owner with any provider is published everywhere.
        assert np.all(result.published[:, 0] == 1)

    def test_more_groups_than_providers_rejected(self, matrix, np_rng):
        with pytest.raises(ConstructionError):
            GroupingPPI(9).construct(matrix, np_rng)

    def test_zero_groups_rejected(self):
        with pytest.raises(ConstructionError):
            GroupingPPI(0)

    def test_randomized_assignment_varies(self, matrix):
        a = GroupingPPI(4).construct(matrix, np.random.default_rng(1))
        b = GroupingPPI(4).construct(matrix, np.random.default_rng(2))
        assert not np.array_equal(a.group_of, b.group_of)


class TestSSPPI:
    def test_leaks_exact_frequencies(self, matrix, np_rng):
        result = SSPPI(4).construct(matrix, np_rng)
        assert result.leaked_frequencies.tolist() == [2, 1, 8]

    def test_published_is_grouping_index(self, matrix, np_rng):
        result = SSPPI(4).construct(matrix, np_rng)
        assert result.published.shape == (8, 3)
        dense = matrix.to_dense()
        assert np.all(result.published[dense == 1] == 1)


class TestPlainIndex:
    def test_publishes_truth(self, matrix):
        published = PlainIndex().construct(matrix)
        assert np.array_equal(published, matrix.to_dense())
