"""Tests for the searchable-encryption index baseline."""

import random

import pytest

from repro.baselines.sse import build_sse_index
from repro.core.model import MembershipMatrix


@pytest.fixture
def setup():
    matrix = MembershipMatrix(6, 4)
    matrix.set(0, 0)
    matrix.set(2, 0)
    matrix.set(1, 1)
    matrix.set(3, 2)
    matrix.set(4, 2)
    matrix.set(5, 2)
    keys = {pid: bytes([pid + 1]) * 16 for pid in range(6)}
    index = build_sse_index(matrix, keys, random.Random(3))
    return matrix, keys, index


class TestSearch:
    def test_full_keys_find_all_providers(self, setup):
        matrix, keys, index = setup
        for owner in range(4):
            matches, _ = index.search(owner, keys)
            assert set(matches) == matrix.providers_of(owner)

    def test_missing_key_hides_provider(self, setup):
        """The architectural coupling: without provider 2's key, owner 0's
        records there are invisible -- the searcher had to already know."""
        matrix, keys, index = setup
        partial = {pid: k for pid, k in keys.items() if pid != 2}
        matches, _ = index.search(0, partial)
        assert matches == [0]

    def test_wrong_key_finds_nothing(self, setup):
        _, keys, index = setup
        bad = {pid: b"wrong-key-000000" for pid in keys}
        matches, _ = index.search(0, bad)
        assert matches == []

    def test_absent_owner(self, setup):
        matrix, keys, index = setup
        matches, _ = index.search(3, keys)
        assert matches == []


class TestLeakageShape:
    def test_entries_unlinkable_across_providers(self, setup):
        """Same owner at two providers yields unrelated digests (per-provider
        keys + per-entry salts)."""
        matrix, keys, index = setup
        digests = [d for pid in (0, 2) for _, d in index._entries[pid]]
        assert len(set(digests)) == len(digests)

    def test_entry_count_matches_memberships(self, setup):
        matrix, _, index = setup
        assert index.total_entries == matrix.total_memberships


class TestCostModel:
    def test_scan_cost_grows_with_keys_held(self, setup):
        _, keys, index = setup
        _, few = index.search(0, {0: keys[0]})
        _, many = index.search(0, keys)
        assert many.entries_scanned > few.entries_scanned
        assert many.trapdoors_derived == 6

    def test_prf_work_counted(self, setup):
        _, keys, index = setup
        _, stats = index.search(2, keys)
        # one PRF per trapdoor plus one per scanned entry.
        assert stats.prf_evaluations == stats.trapdoors_derived + stats.entries_scanned


class TestValidation:
    def test_key_per_provider_required(self):
        matrix = MembershipMatrix(3, 1)
        with pytest.raises(ValueError):
            build_sse_index(matrix, {0: b"k"}, random.Random(1))
