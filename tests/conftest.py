"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.model import InformationNetwork, MembershipMatrix


@pytest.fixture
def rng() -> random.Random:
    """Seeded stdlib RNG for protocol code."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def np_rng() -> np.random.Generator:
    """Seeded numpy RNG for vectorized code."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def small_matrix() -> MembershipMatrix:
    """The 3-provider / 3-owner matrix of paper Fig. 2.

    p0 holds {t0, t1}, p1 holds {t1}, p2 holds {t0, t2} (plus p2 extended
    so every owner has at least one provider).
    """
    matrix = MembershipMatrix(3, 3)
    matrix.set(0, 0)
    matrix.set(0, 1)
    matrix.set(1, 1)
    matrix.set(2, 0)
    matrix.set(2, 2)
    return matrix


@pytest.fixture
def hospital_network() -> InformationNetwork:
    """A small HIE-flavoured network with delegations in place."""
    net = InformationNetwork(
        5, provider_names=[f"hospital-{i}" for i in range(5)]
    )
    celebrity = net.register_owner("celebrity", epsilon=0.9)
    average = net.register_owner("average-patient", epsilon=0.4)
    frequent = net.register_owner("frequent-flyer", epsilon=0.6)
    net.delegate(celebrity, 2, payload="oncology record")
    net.delegate(average, 0, payload="checkup")
    net.delegate(average, 1, payload="x-ray")
    for pid in range(5):
        net.delegate(frequent, pid, payload=f"visit-{pid}")
    return net
