"""Tests for the mix-chain searcher-anonymity layer."""

import random

import numpy as np
import pytest

from repro.core import ChernoffPolicy, construct_epsilon_ppi
from repro.net.simulator import Simulator
from repro.service.anonymity import (
    AnonymousQueryClient,
    AnonymityAwarePPIServer,
    RelayNode,
    predecessor_attack_probability,
)


def deploy(hospital_network, np_rng, n_relays=3, queries=None, compromised=()):
    result = construct_epsilon_ppi(hospital_network, ChernoffPolicy(0.9), np_rng)
    sim = Simulator()
    relays = [
        sim.add_node(RelayNode(100 + i, compromised=(i in compromised)))
        for i in range(n_relays)
    ]
    server = sim.add_node(AnonymityAwarePPIServer(200, result.index))
    client = sim.add_node(
        AnonymousQueryClient(
            300,
            relay_chain=[r.node_id for r in relays],
            server_id=200,
            queries=queries or [0],
            rng=random.Random(1),
        )
    )
    sim.run()
    return result, relays, server, client


class TestAnonymousQueries:
    def test_reply_reaches_client_with_correct_result(
        self, hospital_network, np_rng
    ):
        result, _, _, client = deploy(hospital_network, np_rng)
        assert len(client.replies) == 1
        owner_id, providers = client.replies[0]
        assert owner_id == 0
        assert providers == result.index.query(0)

    def test_server_never_sees_client_address(self, hospital_network, np_rng):
        _, relays, server, client = deploy(hospital_network, np_rng, queries=[0, 1, 2])
        assert len(server.apparent_senders) == 3
        exit_relay = relays[-1].node_id
        assert all(s == exit_relay for s in server.apparent_senders)
        assert client.node_id not in server.apparent_senders

    def test_every_relay_forwards(self, hospital_network, np_rng):
        _, relays, _, _ = deploy(hospital_network, np_rng, queries=[0, 1])
        assert all(r.forwarded == 2 for r in relays)

    def test_single_relay_chain(self, hospital_network, np_rng):
        _, _, server, client = deploy(hospital_network, np_rng, n_relays=1)
        assert len(client.replies) == 1
        assert server.apparent_senders == [100]

    def test_honest_relays_record_nothing(self, hospital_network, np_rng):
        _, relays, _, _ = deploy(hospital_network, np_rng)
        assert all(r.observations == [] for r in relays)

    def test_compromised_first_relay_sees_initiator(
        self, hospital_network, np_rng
    ):
        _, relays, _, client = deploy(
            hospital_network, np_rng, queries=[0], compromised={0}
        )
        assert relays[0].observations
        prev_hops = {obs[0] for obs in relays[0].observations}
        assert client.node_id in prev_hops

    def test_empty_chain_rejected(self, hospital_network, np_rng):
        with pytest.raises(ValueError):
            AnonymousQueryClient(1, [], 2, [0], random.Random(1))

    def test_anonymity_costs_latency(self, hospital_network, np_rng):
        """Each relay hop adds transit + batching delay."""
        times = {}
        for n_relays in (1, 4):
            result = construct_epsilon_ppi(
                hospital_network, ChernoffPolicy(0.9), np.random.default_rng(2)
            )
            sim = Simulator()
            for i in range(n_relays):
                sim.add_node(RelayNode(100 + i))
            sim.add_node(AnonymityAwarePPIServer(200, result.index))
            sim.add_node(
                AnonymousQueryClient(
                    300, [100 + i for i in range(n_relays)], 200, [0],
                    random.Random(1),
                )
            )
            metrics = sim.run()
            times[n_relays] = metrics.finish_time_s
        assert times[4] > times[1]


class TestPredecessorAttack:
    def test_zero_compromise_never_deanonymizes(self):
        assert predecessor_attack_probability(0.0, 1000) == 0.0

    def test_full_compromise_immediate(self):
        assert predecessor_attack_probability(1.0, 1) == 1.0

    def test_degrades_with_rounds(self):
        """The [20] result: anonymity degrades as chains are reformed."""
        probs = [predecessor_attack_probability(0.2, r) for r in (1, 10, 100)]
        assert probs == sorted(probs)
        assert probs[0] == pytest.approx(0.04)
        assert probs[2] > 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            predecessor_attack_probability(1.5, 1)
        with pytest.raises(ValueError):
            predecessor_attack_probability(0.5, -1)
