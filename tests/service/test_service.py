"""Tests for the live locator-service deployment (Fig. 1 actors)."""

import numpy as np
import pytest

from repro.core import (
    AccessControl,
    ChernoffPolicy,
    construct_epsilon_ppi,
)
from repro.core.index import PPIIndex
from repro.service import run_locator_service


@pytest.fixture
def deployed(hospital_network, np_rng):
    result = construct_epsilon_ppi(hospital_network, ChernoffPolicy(0.9), np_rng)
    return hospital_network, result.index


class TestTwoPhaseService:
    def test_searcher_finds_all_records(self, deployed):
        network, index = deployed
        celeb = network.owner_by_name("celebrity")
        run = run_locator_service(network, index, queries=[celeb.owner_id])
        assert len(run.outcomes) == 1
        outcome = run.outcomes[0]
        assert outcome.positive_providers == [2]
        assert outcome.records[0].payload == "oncology record"
        assert run.recall == 1.0

    def test_noise_providers_contacted(self, deployed):
        network, index = deployed
        celeb = network.owner_by_name("celebrity")
        run = run_locator_service(network, index, queries=[celeb.owner_id])
        outcome = run.outcomes[0]
        expected_candidates = set(index.query(celeb.owner_id))
        assert set(outcome.noise_providers) == expected_candidates - {2}
        assert outcome.contacted == len(expected_candidates)

    def test_query_sequence_processed_in_order(self, deployed):
        network, index = deployed
        ids = [o.owner_id for o in network.owners]
        run = run_locator_service(network, index, queries=ids)
        assert [o.owner_id for o in run.outcomes] == ids
        assert run.queries_served == len(ids)

    def test_latency_positive_and_bounded(self, deployed):
        network, index = deployed
        run = run_locator_service(network, index, queries=[0])
        assert run.outcomes[0].latency_s > 0
        assert run.mean_latency_s == pytest.approx(run.outcomes[0].latency_s)

    def test_acl_denials_recorded(self, deployed):
        network, index = deployed
        celeb = network.owner_by_name("celebrity")
        # Searcher authorized nowhere.
        acls = {pid: AccessControl() for pid in range(network.n_providers)}
        run = run_locator_service(
            network, index, queries=[celeb.owner_id], acls=acls
        )
        outcome = run.outcomes[0]
        assert not outcome.records
        assert len(outcome.denied_providers) == outcome.contacted

    def test_partial_authorization(self, deployed):
        network, index = deployed
        celeb = network.owner_by_name("celebrity")
        acls = {pid: AccessControl() for pid in range(network.n_providers)}
        acls[2].grant("searcher", celeb.owner_id)
        run = run_locator_service(
            network, index, queries=[celeb.owner_id], acls=acls
        )
        outcome = run.outcomes[0]
        assert outcome.positive_providers == [2]
        assert run.recall == 1.0  # denied providers excluded from the check

    def test_empty_candidate_list_terminates(self, hospital_network):
        # An index that lists nobody for owner 0.
        empty = PPIIndex(
            np.zeros((hospital_network.n_providers, hospital_network.n_owners),
                     dtype=np.uint8)
        )
        run = run_locator_service(hospital_network, empty, queries=[0])
        assert run.outcomes[0].contacted == 0

    def test_broadcast_owner_contacts_everyone(self, deployed):
        network, index = deployed
        frequent = network.owner_by_name("frequent-flyer")
        run = run_locator_service(network, index, queries=[frequent.owner_id])
        assert run.outcomes[0].contacted == network.n_providers
        assert len(run.outcomes[0].records) == 5

    def test_message_accounting(self, deployed):
        network, index = deployed
        run = run_locator_service(network, index, queries=[0])
        kinds = run.metrics.per_kind_messages
        assert kinds["service/query"] == 1
        assert kinds["service/query-reply"] == 1
        assert kinds["service/search"] == run.outcomes[0].contacted


class TestCostScaling:
    def test_higher_epsilon_costs_more_latency(self):
        """The personalized trade-off, end to end: a high-ǫ owner's searches
        contact more providers and therefore take longer."""
        from repro.core.model import InformationNetwork

        rng = np.random.default_rng(5)
        latencies = {}
        for eps in (0.1, 0.9):
            net = InformationNetwork(80)
            owner = net.register_owner("o", eps)
            for pid in (3, 11, 40):
                net.delegate(owner, pid)
            result = construct_epsilon_ppi(net, ChernoffPolicy(0.9), rng)
            run = run_locator_service(net, result.index, queries=[owner.owner_id])
            latencies[eps] = (run.mean_contacted, run.mean_latency_s)
        assert latencies[0.9][0] > latencies[0.1][0]


class TestConcurrentSearchers:
    def test_all_queries_answered(self, deployed):
        from repro.service import run_concurrent_searchers

        network, index = deployed
        query_lists = [[0, 1], [2], [0]]
        run = run_concurrent_searchers(network, index, query_lists)
        assert run.total_queries == 4
        assert len(run.per_searcher) == 3
        assert [len(r.outcomes) for r in run.per_searcher] == [2, 1, 1]

    def test_concurrency_raises_throughput(self, deployed):
        from repro.service import run_concurrent_searchers

        network, index = deployed
        single = run_concurrent_searchers(network, index, [[0, 1, 2]])
        multi = run_concurrent_searchers(network, index, [[0], [1], [2]])
        assert multi.throughput_qps > single.throughput_qps

    def test_results_match_sequential(self, deployed):
        from repro.service import run_concurrent_searchers, run_locator_service

        network, index = deployed
        concurrent = run_concurrent_searchers(network, index, [[0], [1]])
        for run in concurrent.per_searcher:
            owner = run.outcomes[0].owner_id
            seq = run_locator_service(network, index, queries=[owner])
            assert (
                sorted(run.outcomes[0].positive_providers)
                == sorted(seq.outcomes[0].positive_providers)
            )

    def test_empty_lists(self, deployed):
        from repro.service import run_concurrent_searchers

        network, index = deployed
        run = run_concurrent_searchers(network, index, [[]])
        assert run.total_queries == 0
        assert run.throughput_qps == 0.0
