"""Failure-injection tests: the service under message loss."""

import numpy as np
import pytest

from repro.core import ChernoffPolicy, construct_epsilon_ppi
from repro.service import run_locator_service


@pytest.fixture
def deployed(hospital_network, np_rng):
    result = construct_epsilon_ppi(hospital_network, ChernoffPolicy(0.9), np_rng)
    return hospital_network, result.index


class TestMessageLoss:
    def test_moderate_loss_recovered_by_retries(self, deployed):
        """10 % loss: retransmission recovers every record."""
        network, index = deployed
        ids = [o.owner_id for o in network.owners]
        run = run_locator_service(
            network, index, queries=ids, loss_probability=0.10, loss_seed=7
        )
        assert len(run.outcomes) == len(ids)
        assert run.recall == 1.0
        # Retries actually happened (the loss was not a no-op).
        total_retries = sum(o.retransmissions for o in run.outcomes)
        assert total_retries >= 0  # may be zero if only replies survived
        assert run.metrics.messages > 0

    def test_heavy_loss_still_terminates(self, deployed):
        """50 % loss: every query still terminates (failed providers are
        recorded instead of hanging)."""
        network, index = deployed
        ids = [o.owner_id for o in network.owners]
        run = run_locator_service(
            network, index, queries=ids,
            loss_probability=0.5, loss_seed=3, max_retries=2,
        )
        assert len(run.outcomes) == len(ids)
        for o in run.outcomes:
            assert o.finished_at >= o.started_at

    def test_loss_increases_latency(self, deployed):
        network, index = deployed
        ids = [o.owner_id for o in network.owners]
        clean = run_locator_service(network, index, queries=ids)
        lossy = run_locator_service(
            network, index, queries=ids, loss_probability=0.25, loss_seed=11
        )
        if any(o.retransmissions for o in lossy.outcomes):
            assert lossy.mean_latency_s > clean.mean_latency_s

    def test_deterministic_given_loss_seed(self, deployed):
        network, index = deployed
        ids = [o.owner_id for o in network.owners]
        a = run_locator_service(
            network, index, queries=ids, loss_probability=0.3, loss_seed=9
        )
        b = run_locator_service(
            network, index, queries=ids, loss_probability=0.3, loss_seed=9
        )
        assert a.metrics.messages == b.metrics.messages
        assert a.mean_latency_s == b.mean_latency_s
        assert [o.retransmissions for o in a.outcomes] == [
            o.retransmissions for o in b.outcomes
        ]

    def test_failed_providers_tracked_at_total_loss_to_one_node(self, deployed):
        """If retries are exhausted the provider lands in failed_providers
        and the query completes without it."""
        network, index = deployed
        ids = [o.owner_id for o in network.owners]
        run = run_locator_service(
            network, index, queries=ids,
            loss_probability=0.7, loss_seed=21, max_retries=1, timeout_s=0.01,
        )
        assert len(run.outcomes) == len(ids)
        # Under 70 % loss with one retry, some contacts must have failed.
        assert any(o.failed_providers or o.retransmissions for o in run.outcomes)


class TestTimers:
    def test_timer_fires_and_cancels(self):
        from repro.net.simulator import Node, Simulator

        fired = []

        class T(Node):
            def on_start(self):
                self.set_timer(0.5, lambda: fired.append("a"))
                tid = self.set_timer(0.2, lambda: fired.append("b"))
                self.cancel_timer(tid)

        sim = Simulator()
        sim.add_node(T(0))
        metrics = sim.run()
        assert fired == ["a"]
        assert metrics.finish_time_s >= 0.5

    def test_negative_delay_rejected(self):
        from repro.net.simulator import Node, Simulator

        class T(Node):
            def on_start(self):
                self.set_timer(-1, lambda: None)

        sim = Simulator()
        sim.add_node(T(0))
        with pytest.raises(ValueError):
            sim.run()

    def test_invalid_loss_probability_rejected(self):
        from repro.net.simulator import Simulator

        with pytest.raises(ValueError):
            Simulator(loss_probability=1.0)
