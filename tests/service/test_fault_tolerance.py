"""Failure-injection tests: the service under message loss."""

import pytest

from repro.core import ChernoffPolicy, construct_epsilon_ppi
from repro.service import run_locator_service
from repro.service.nodes import (
    QUERY_REPLY,
    SEARCH_REPLY,
    PPIServerNode,
    ProviderServiceNode,
    SearcherNode,
)


@pytest.fixture
def deployed(hospital_network, np_rng):
    result = construct_epsilon_ppi(hospital_network, ChernoffPolicy(0.9), np_rng)
    return hospital_network, result.index


class TestMessageLoss:
    def test_moderate_loss_recovered_by_retries(self, deployed):
        """10 % loss: retransmission recovers every record."""
        network, index = deployed
        ids = [o.owner_id for o in network.owners]
        run = run_locator_service(
            network, index, queries=ids, loss_probability=0.10, loss_seed=7
        )
        assert len(run.outcomes) == len(ids)
        assert run.recall == 1.0
        # Retries actually happened (the loss was not a no-op).
        total_retries = sum(o.retransmissions for o in run.outcomes)
        assert total_retries >= 0  # may be zero if only replies survived
        assert run.metrics.messages > 0

    def test_heavy_loss_still_terminates(self, deployed):
        """50 % loss: every query still terminates (failed providers are
        recorded instead of hanging)."""
        network, index = deployed
        ids = [o.owner_id for o in network.owners]
        run = run_locator_service(
            network, index, queries=ids,
            loss_probability=0.5, loss_seed=3, max_retries=2,
        )
        assert len(run.outcomes) == len(ids)
        for o in run.outcomes:
            assert o.finished_at >= o.started_at

    def test_loss_increases_latency(self, deployed):
        network, index = deployed
        ids = [o.owner_id for o in network.owners]
        clean = run_locator_service(network, index, queries=ids)
        lossy = run_locator_service(
            network, index, queries=ids, loss_probability=0.25, loss_seed=11
        )
        if any(o.retransmissions for o in lossy.outcomes):
            assert lossy.mean_latency_s > clean.mean_latency_s

    def test_deterministic_given_loss_seed(self, deployed):
        network, index = deployed
        ids = [o.owner_id for o in network.owners]
        a = run_locator_service(
            network, index, queries=ids, loss_probability=0.3, loss_seed=9
        )
        b = run_locator_service(
            network, index, queries=ids, loss_probability=0.3, loss_seed=9
        )
        assert a.metrics.messages == b.metrics.messages
        assert a.mean_latency_s == b.mean_latency_s
        assert [o.retransmissions for o in a.outcomes] == [
            o.retransmissions for o in b.outcomes
        ]

    def test_failed_providers_tracked_at_total_loss_to_one_node(self, deployed):
        """If retries are exhausted the provider lands in failed_providers
        and the query completes without it."""
        network, index = deployed
        ids = [o.owner_id for o in network.owners]
        run = run_locator_service(
            network, index, queries=ids,
            loss_probability=0.7, loss_seed=21, max_retries=1, timeout_s=0.01,
        )
        assert len(run.outcomes) == len(ids)
        # Under 70 % loss with one retry, some contacts must have failed.
        assert any(o.failed_providers or o.retransmissions for o in run.outcomes)


class _DuplicatingServer(PPIServerNode):
    """Answers every query twice (models a retransmitted reply)."""

    def on_message(self, message):
        super().on_message(message)
        owner_id = message.payload
        self.send(
            message.sender,
            QUERY_REPLY,
            (owner_id, self.index.query(owner_id)),
            payload_bits=32,
        )


class _DuplicatingProvider(ProviderServiceNode):
    """Sends every search reply twice."""

    def on_message(self, message):
        searcher_name, owner_id = message.payload
        super().on_message(message)
        records = self.provider.records.get(owner_id, [])
        self.send(
            message.sender,
            SEARCH_REPLY,
            ("ok", records),
            payload_bits=16,
        )


def _deploy(network, index, server_cls, provider_cls, **searcher_kwargs):
    """Hand-wired deployment so tests can swap in misbehaving actors."""
    from repro.core.authsearch import AccessControl
    from repro.net.simulator import Simulator

    sim = Simulator()
    m = network.n_providers
    for pid in range(m):
        sim.add_node(
            provider_cls(
                pid, network.providers[pid], AccessControl(trusted={"searcher"})
            )
        )
    sim.add_node(server_cls(m, index))
    searcher = sim.add_node(
        SearcherNode(
            m + 1,
            "searcher",
            server_id=m,
            provider_node_ids={pid: pid for pid in range(m)},
            queries=[o.owner_id for o in network.owners],
            **searcher_kwargs,
        )
    )
    sim.run()
    return searcher


class TestSearcherRetryMachinery:
    """The SearcherNode's timers and dedup under sustained adversity."""

    def test_sustained_loss_exhausts_retries_without_hanging(self, deployed):
        """Loss heavy enough that some providers exhaust max_retries: the
        searcher must record them as failed and still finish every query."""
        network, index = deployed
        # Repeat the workload so the loss process gets enough draws; 50 %
        # loss with a single retry reliably strands some provider contacts
        # while still letting most QueryPPI round trips through.
        ids = [o.owner_id for o in network.owners] * 5
        run = run_locator_service(
            network, index, queries=ids,
            loss_probability=0.5, loss_seed=0, max_retries=1, timeout_s=0.01,
        )
        # Every query terminated (nothing hung)...
        assert len(run.outcomes) == len(ids)
        assert all(o.finished_at >= o.started_at for o in run.outcomes)
        # ...retries really ran out somewhere...
        assert any(o.failed_providers for o in run.outcomes)
        # ...and failures are bookkept, never double-counted as successes.
        for o in run.outcomes:
            assert not (set(o.failed_providers) & set(o.positive_providers))
            assert not (set(o.failed_providers) & set(o.noise_providers))

    def test_failed_providers_lower_recall_not_liveness(self, deployed):
        network, index = deployed
        ids = [o.owner_id for o in network.owners]
        run = run_locator_service(
            network, index, queries=ids,
            loss_probability=0.9, loss_seed=5, max_retries=0, timeout_s=0.01,
        )
        assert len(run.outcomes) == len(ids)
        assert 0.0 <= run.recall <= 1.0

    def test_duplicate_query_replies_are_idempotent(self, deployed):
        """A duplicated QueryPPI reply must not restart the fan-out."""
        network, index = deployed
        searcher = _deploy(
            network, index, _DuplicatingServer, ProviderServiceNode
        )
        matrix = network.membership_matrix()
        assert len(searcher.outcomes) == network.n_owners
        for o in searcher.outcomes:
            assert sorted(set(o.positive_providers)) == sorted(o.positive_providers)
            assert set(o.positive_providers) == set(matrix.providers_of(o.owner_id))

    def test_duplicate_search_replies_are_idempotent(self, deployed):
        """Doubled AuthSearch replies must not double providers or records."""
        network, index = deployed
        searcher = _deploy(
            network, index, PPIServerNode, _DuplicatingProvider
        )
        matrix = network.membership_matrix()
        assert len(searcher.outcomes) == network.n_owners
        for o in searcher.outcomes:
            true_set = matrix.providers_of(o.owner_id)
            assert set(o.positive_providers) == set(true_set)
            assert len(o.positive_providers) == len(true_set)
            # Records arrive exactly once per true provider.
            per_provider = [r.owner_id for r in o.records]
            assert len(per_provider) == sum(
                len(network.providers[pid].records[o.owner_id])
                for pid in true_set
            )

    def test_stale_serial_timers_are_inert(self, deployed):
        """Timers armed for query k still fire after query k+1 started; the
        serial guard must make them no-ops (no spurious retransmissions)."""
        network, index = deployed
        ids = [o.owner_id for o in network.owners]
        # Lossless run with a timeout much longer than per-query latency:
        # every timer outlives its query and fires stale.
        run = run_locator_service(
            network, index, queries=ids, timeout_s=10.0, max_retries=3
        )
        assert len(run.outcomes) == len(ids)
        assert all(o.retransmissions == 0 for o in run.outcomes)
        assert all(not o.failed_providers for o in run.outcomes)
        assert run.recall == 1.0


class TestTimers:
    def test_timer_fires_and_cancels(self):
        from repro.net.simulator import Node, Simulator

        fired = []

        class T(Node):
            def on_start(self):
                self.set_timer(0.5, lambda: fired.append("a"))
                tid = self.set_timer(0.2, lambda: fired.append("b"))
                self.cancel_timer(tid)

        sim = Simulator()
        sim.add_node(T(0))
        metrics = sim.run()
        assert fired == ["a"]
        assert metrics.finish_time_s >= 0.5

    def test_negative_delay_rejected(self):
        from repro.net.simulator import Node, Simulator

        class T(Node):
            def on_start(self):
                self.set_timer(-1, lambda: None)

        sim = Simulator()
        sim.add_node(T(0))
        with pytest.raises(ValueError):
            sim.run()

    def test_invalid_loss_probability_rejected(self):
        from repro.net.simulator import Simulator

        with pytest.raises(ValueError):
            Simulator(loss_probability=1.0)
