"""Tests for the SecSumShare simulator actors against the computational
reference implementation."""

import random

import pytest

from repro.mpc.field import Zq, default_modulus_for_sum
from repro.mpc.secsum import SecSumShare
from repro.net.simulator import Simulator
from repro.protocol.secsum_nodes import SecSumNode


def run_simulated(inputs, c=3, seed=1):
    m = len(inputs)
    ring = Zq(default_modulus_for_sum(m))
    collected = {}
    sim = Simulator()
    master = random.Random(seed)
    for i in range(m):
        sim.add_node(
            SecSumNode(
                i, m, c, ring, inputs[i], random.Random(master.getrandbits(64)),
                on_complete=lambda k, shares: collected.__setitem__(k, shares),
            )
        )
    metrics = sim.run()
    return collected, ring, metrics


class TestCorrectness:
    @pytest.mark.parametrize("m,c", [(3, 2), (5, 3), (9, 3), (8, 4)])
    def test_sums_match_inputs(self, m, c):
        rng = random.Random(m + c)
        n = 6
        inputs = [[rng.randint(0, 1) for _ in range(n)] for _ in range(m)]
        collected, ring, _ = run_simulated(inputs, c=c, seed=m)
        assert set(collected) == set(range(c))
        for j in range(n):
            total = ring.sum(collected[k][j] for k in range(c))
            assert total == sum(row[j] for row in inputs)

    def test_matches_computational_protocol_distribution(self):
        """Simulated actors and the direct implementation reconstruct the
        same sums (shares differ: independent randomness)."""
        inputs = [[1, 0], [0, 1], [1, 1], [0, 0], [1, 0]]
        collected, ring, _ = run_simulated(inputs, c=3)
        reference = SecSumShare(5, 3, ring, random.Random(9)).run(inputs)
        for j in range(2):
            sim_total = ring.sum(collected[k][j] for k in range(3))
            assert sim_total == reference.reconstruct(ring, j)


class TestCommunicationComplexity:
    def test_messages_linear_in_m(self):
        """Each provider sends c-1 share messages + 1 super-share report
        (coordinators report to themselves through the same path): total
        m*c messages, i.e. linear in m for fixed c."""
        for m in (6, 12):
            inputs = [[1]] * m
            _, _, metrics = run_simulated(inputs, c=3)
            assert metrics.messages == m * 3

    def test_share_message_count_exact(self):
        m, c = 10, 4
        inputs = [[1, 0]] * m
        _, _, metrics = run_simulated(inputs, c=c)
        share_msgs = metrics.per_kind_messages["secsum/share"]
        super_msgs = metrics.per_kind_messages["secsum/super-share"]
        assert share_msgs == m * (c - 1)
        assert super_msgs == m

    def test_finish_time_positive(self):
        _, _, metrics = run_simulated([[1]] * 5, c=3)
        assert metrics.finish_time_s > 0


class TestValidation:
    def test_node_id_range_checked(self):
        ring = Zq(8)
        with pytest.raises(ValueError):
            SecSumNode(5, 5, 3, ring, [1], random.Random(1))
