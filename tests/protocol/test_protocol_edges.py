"""Edge-case tests for the distributed construction protocol."""

import random

import pytest

from repro.core.policies import BasicPolicy
from repro.mpc.betacalc import secure_beta_calculation
from repro.protocol import run_distributed_construction, run_pure_mpc_simulation
from repro.net.latency import WAN


def random_bits(m, n, seed):
    rng = random.Random(seed)
    return [[rng.randint(0, 1) for _ in range(n)] for _ in range(m)]


class TestDegenerateTopologies:
    def test_m_equals_c(self):
        """Every provider is a coordinator: the protocol still terminates
        and produces a full beta vector."""
        bits = random_bits(3, 2, 1)
        res = run_distributed_construction(
            bits, [0.5, 0.5], BasicPolicy(), c=3, rng=random.Random(2)
        )
        assert len(res.betas) == 2
        assert res.execution_time_s > 0

    def test_c_two_minimum(self):
        bits = random_bits(5, 2, 3)
        res = run_distributed_construction(
            bits, [0.4, 0.6], BasicPolicy(), c=2, rng=random.Random(4)
        )
        assert len(res.betas) == 2

    def test_single_identity(self):
        bits = random_bits(6, 1, 5)
        res = run_distributed_construction(
            bits, [0.5], BasicPolicy(), c=3, rng=random.Random(6)
        )
        assert len(res.betas) == 1

    def test_all_zero_inputs(self):
        """No owner anywhere: every beta is 0 and nothing broadcasts."""
        bits = [[0, 0] for _ in range(5)]
        res = run_distributed_construction(
            bits, [0.5, 0.9], BasicPolicy(), c=3, rng=random.Random(7)
        )
        assert list(res.betas) == [0.0, 0.0]

    def test_all_one_inputs(self):
        """Every owner everywhere: all common, all broadcast."""
        bits = [[1, 1] for _ in range(5)]
        res = run_distributed_construction(
            bits, [0.5, 0.9], BasicPolicy(), c=3, rng=random.Random(8)
        )
        assert list(res.betas) == [1.0, 1.0]


class TestLatencyProfiles:
    def test_wan_profile_slower(self):
        bits = random_bits(6, 2, 9)
        lan = run_distributed_construction(
            bits, [0.5, 0.5], BasicPolicy(), c=3, rng=random.Random(10)
        )
        wan = run_distributed_construction(
            bits, [0.5, 0.5], BasicPolicy(), c=3, rng=random.Random(10),
            latency=WAN,
        )
        assert wan.execution_time_s > lan.execution_time_s


class TestResultConsistency:
    def test_betas_match_computational_pipeline_distribution(self):
        """The sim wraps secure_beta_calculation: identical (bits, policy,
        seed) must yield the identical beta vector."""
        bits = random_bits(8, 3, 11)
        eps = [0.3, 0.5, 0.7]
        sim_res = run_distributed_construction(
            bits, eps, BasicPolicy(), c=3, rng=random.Random(12)
        )
        comp_res = secure_beta_calculation(
            bits, eps, BasicPolicy(), c=3, rng=random.Random(12)
        )
        assert list(sim_res.betas) == list(comp_res.betas)

    def test_metrics_observe_all_traffic(self):
        bits = random_bits(8, 2, 13)
        res = run_distributed_construction(
            bits, [0.5, 0.5], BasicPolicy(), c=3, rng=random.Random(14)
        )
        total_by_kind = sum(res.metrics.per_kind_messages.values())
        assert total_by_kind == res.metrics.messages
        assert res.metrics.bits_sent > 0

    def test_pure_simulation_rejects_single_provider(self):
        with pytest.raises(ValueError):
            run_pure_mpc_simulation(
                [[1]], [0.5], BasicPolicy(), rng=random.Random(1)
            )
