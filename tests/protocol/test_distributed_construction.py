"""Tests for the end-to-end distributed construction and pure-MPC simulation."""

import random


from repro.core.policies import BasicPolicy, ChernoffPolicy
from repro.protocol import (
    run_distributed_construction,
    run_pure_mpc_simulation,
)


def random_bits(m, n, seed):
    rng = random.Random(seed)
    return [[rng.randint(0, 1) for _ in range(n)] for _ in range(m)]


class TestDistributedConstruction:
    def test_produces_betas_for_all_identities(self):
        bits = random_bits(9, 5, 1)
        res = run_distributed_construction(
            bits, [0.4] * 5, ChernoffPolicy(0.9), c=3, rng=random.Random(2)
        )
        assert len(res.betas) == 5
        assert all(0.0 <= b <= 1.0 for b in res.betas)

    def test_execution_time_positive(self):
        bits = random_bits(6, 3, 3)
        res = run_distributed_construction(
            bits, [0.5] * 3, BasicPolicy(), c=3, rng=random.Random(4)
        )
        assert res.execution_time_s > 0

    def test_all_message_kinds_present(self):
        bits = random_bits(9, 3, 5)
        res = run_distributed_construction(
            bits, [0.5] * 3, BasicPolicy(), c=3, rng=random.Random(6)
        )
        kinds = res.metrics.per_kind_messages
        assert "secsum/share" in kinds
        assert "secsum/super-share" in kinds
        assert "mpc/round" in kinds
        assert "beta/broadcast" in kinds

    def test_beta_broadcast_reaches_all_providers(self):
        m = 8
        bits = random_bits(m, 2, 7)
        res = run_distributed_construction(
            bits, [0.5, 0.5], BasicPolicy(), c=3, rng=random.Random(8)
        )
        assert res.metrics.per_kind_messages["beta/broadcast"] == m - 1

    def test_scales_slowly_with_m(self):
        """Fig. 6a shape: execution time grows slowly with m for the
        MPC-reduced protocol (the MPC part is pinned to c parties)."""
        times = {}
        for m in (5, 20):
            bits = random_bits(m, 2, 9)
            res = run_distributed_construction(
                bits, [0.5, 0.5], BasicPolicy(), c=3, rng=random.Random(10)
            )
            times[m] = res.execution_time_s
        assert times[20] < times[5] * 3  # sub-linear-ish growth


class TestPureMPCSimulation:
    def test_produces_betas(self):
        bits = random_bits(5, 3, 11)
        res = run_pure_mpc_simulation(
            bits, [0.4] * 3, BasicPolicy(), rng=random.Random(12)
        )
        assert len(res.betas) == 3

    def test_superlinear_growth_in_m(self):
        """Fig. 6a shape: pure MPC time grows super-linearly with m (every
        AND opening is an all-to-all among m parties), while the reduced
        protocol's generic-MPC stage is pinned to c parties."""
        pure_times, reduced_times = [], []
        for m in (3, 6, 12):
            bits = random_bits(m, 2, 13)
            pure = run_pure_mpc_simulation(
                bits, [0.5, 0.5], BasicPolicy(), rng=random.Random(14)
            )
            reduced = run_distributed_construction(
                bits, [0.5, 0.5], BasicPolicy(), c=3, rng=random.Random(15)
            )
            pure_times.append(pure.execution_time_s)
            reduced_times.append(reduced.execution_time_s)
        # More-than-linear: quadrupling m grows time by far more than 4x.
        assert pure_times[2] > 4.5 * pure_times[0]
        # The gap to the reduced protocol widens with network size.
        gaps = [p / r for p, r in zip(pure_times, reduced_times)]
        assert gaps[2] > gaps[0]

    def test_pure_slower_than_reduced_at_scale(self):
        m = 12
        bits = random_bits(m, 3, 15)
        pure = run_pure_mpc_simulation(
            bits, [0.5] * 3, BasicPolicy(), rng=random.Random(16)
        )
        reduced = run_distributed_construction(
            bits, [0.5] * 3, BasicPolicy(), c=3, rng=random.Random(17)
        )
        assert pure.execution_time_s > reduced.execution_time_s

    def test_scales_with_identities(self):
        """Fig. 6c shape: both grow with n, but pure MPC pays a far larger
        per-identity cost (the in-circuit β* arithmetic), so the absolute
        separation widens with the identity count."""
        pure_times, reduced_times = [], []
        for n in (2, 8):
            bits = random_bits(4, n, 18)
            pure = run_pure_mpc_simulation(
                bits, [0.5] * n, BasicPolicy(), rng=random.Random(19)
            )
            reduced = run_distributed_construction(
                bits, [0.5] * n, BasicPolicy(), c=3, rng=random.Random(20)
            )
            pure_times.append(pure.execution_time_s)
            reduced_times.append(reduced.execution_time_s)
        assert pure_times[1] > pure_times[0]
        assert pure_times[1] > reduced_times[1]
        gap_small = pure_times[0] - reduced_times[0]
        gap_large = pure_times[1] - reduced_times[1]
        assert gap_large > gap_small
