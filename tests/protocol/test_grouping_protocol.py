"""Tests for the grouping-baseline construction protocol and its leak."""

import random

import numpy as np
import pytest

from repro.protocol.grouping_protocol import run_grouping_construction


def random_bits(m, n, seed):
    rng = random.Random(seed)
    return [[rng.randint(0, 1) for _ in range(n)] for _ in range(m)]


class TestConstruction:
    def test_group_reports_are_or_of_members(self):
        bits = random_bits(9, 4, 1)
        result = run_grouping_construction(bits, n_groups=3, rng=random.Random(2))
        for pid in range(9):
            g = result.group_of[pid]
            member_ids = [q for q in range(9) if result.group_of[q] == g]
            expected = np.zeros(4, dtype=np.uint8)
            for q in member_ids:
                expected |= np.array(bits[q], dtype=np.uint8)
            assert np.array_equal(result.published[pid], expected)

    def test_recall_preserved(self):
        bits = random_bits(8, 3, 3)
        result = run_grouping_construction(bits, n_groups=4, rng=random.Random(4))
        truth = np.array(bits, dtype=np.uint8)
        assert np.all(result.published[truth == 1] == 1)

    def test_single_group_is_broadcast(self):
        bits = random_bits(5, 2, 5)
        result = run_grouping_construction(bits, n_groups=1, rng=random.Random(6))
        union = np.array(bits, dtype=np.uint8).max(axis=0)
        for pid in range(5):
            assert np.array_equal(result.published[pid], union)

    def test_group_count_validated(self):
        bits = random_bits(3, 1, 7)
        with pytest.raises(ValueError):
            run_grouping_construction(bits, n_groups=4, rng=random.Random(8))


class TestDisclosureLeak:
    def test_every_private_vector_disclosed(self):
        """The paper's criticism, observable: each provider's raw vector
        lands in some leader's transcript."""
        bits = random_bits(10, 3, 9)
        result = run_grouping_construction(bits, n_groups=3, rng=random.Random(10))
        assert result.disclosed_vectors() == 10
        seen = {}
        for transcript in result.leader_transcripts.values():
            seen.update(transcript)
        for pid in range(10):
            assert seen[pid] == bits[pid]

    def test_contrast_with_secsumshare(self):
        """ǫ-PPI's construction never moves a plaintext vector: the same
        inputs through SecSumShare leave every non-owner view uniform."""
        from repro.mpc.field import Zq, default_modulus_for_sum
        from repro.mpc.secsum import SecSumShare

        bits = random_bits(10, 3, 11)
        ring = Zq(default_modulus_for_sum(10))
        result = SecSumShare(10, 3, ring, random.Random(12)).run(bits)
        # No view contains any provider's raw vector.
        for view in result.provider_views:
            for pid in range(10):
                if pid == view.provider:
                    continue
                # received_shares are individual ring elements, never a
                # recognizable 0/1 vector of another provider.
                assert view.received_shares != bits[pid]

    def test_metrics_show_vector_shipment(self):
        bits = random_bits(6, 8, 13)
        result = run_grouping_construction(bits, n_groups=2, rng=random.Random(14))
        assert result.metrics.per_kind_messages["grouping/local-vector"] == 4
        assert result.metrics.per_kind_messages["grouping/group-report"] == 2
