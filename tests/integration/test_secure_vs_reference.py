"""The secure distributed pipeline must compute the same function as the
trusted centralized reference (DESIGN.md invariant set)."""

import random

import pytest

from repro.core.model import MembershipMatrix
from repro.core.policies import (
    BasicPolicy,
    ChernoffPolicy,
    frequency_threshold,
)
from repro.mpc.betacalc import secure_beta_calculation


def bits_and_matrix(frequencies, m, seed):
    rng = random.Random(seed)
    matrix = MembershipMatrix(m, len(frequencies))
    bits = [[0] * len(frequencies) for _ in range(m)]
    for j, f in enumerate(frequencies):
        for i in rng.sample(range(m), f):
            bits[i][j] = 1
            matrix.set(i, j)
    return bits, matrix


class TestSecureMatchesReference:
    @pytest.mark.parametrize("policy", [BasicPolicy(), ChernoffPolicy(0.9)])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_common_classification_identical(self, policy, seed):
        m = 16
        freqs = [1, 4, 8, 16, 15, 2]
        eps = [0.3, 0.5, 0.7, 0.9, 0.8, 0.2]
        bits, matrix = bits_and_matrix(freqs, m, seed)
        res = secure_beta_calculation(bits, eps, policy, c=3, rng=random.Random(seed))
        for j, f in enumerate(freqs):
            t = frequency_threshold(policy, eps[j], m)
            is_common = f >= t
            if is_common:
                assert res.publish_as_one[j] == 1, (j, f, t)

    def test_non_common_non_decoy_betas_equal_reference(self):
        m = 16
        freqs = [1, 4, 8, 2, 3]
        eps = [0.3, 0.5, 0.4, 0.9, 0.2]
        policy = ChernoffPolicy(0.9)
        bits, matrix = bits_and_matrix(freqs, m, 7)
        res = secure_beta_calculation(bits, eps, policy, c=3, rng=random.Random(7))
        for j in range(len(freqs)):
            if not res.publish_as_one[j]:
                ref = policy.beta(matrix.sigma(j), eps[j], m)
                assert res.betas[j] == pytest.approx(ref)

    def test_lambda_close_to_reference(self):
        """With many identities, the secure λ (from quantized ξ) must be
        within quantization error of the plaintext λ."""
        from repro.core.mixing import compute_lambda

        m = 12
        n = 40
        rng = random.Random(13)
        freqs = [12 if j < 3 else rng.randint(1, 3) for j in range(n)]
        eps = [round(rng.uniform(0.2, 0.9), 3) for _ in range(n)]
        policy = BasicPolicy()
        bits, _ = bits_and_matrix(freqs, m, 13)
        res = secure_beta_calculation(bits, eps, policy, c=3, rng=random.Random(14))
        import math

        high = math.ceil(0.5 * m)
        broadcast = [
            j for j in range(n)
            if freqs[j] >= frequency_threshold(policy, eps[j], m)
        ]
        commons = [j for j in broadcast if freqs[j] >= high]
        naturals = [j for j in broadcast if freqs[j] < high]
        xi_ref = max(eps[j] for j in commons)
        lam_ref = compute_lambda(
            len(commons), n, xi_ref, n_natural_decoys=len(naturals)
        )
        assert res.n_common == len(commons)
        assert res.n_natural_decoys == len(naturals)
        assert res.lambda_ == pytest.approx(lam_ref, abs=0.02)

    @pytest.mark.parametrize("c", [2, 3, 5])
    def test_collusion_parameter_does_not_change_result(self, c):
        """The output function is independent of c (c only affects cost and
        collusion tolerance)."""
        m = 10
        freqs = [1, 5, 10]
        eps = [0.4, 0.6, 0.8]
        bits, _ = bits_and_matrix(freqs, m, 21)
        res = secure_beta_calculation(
            bits, eps, BasicPolicy(), c=c, rng=random.Random(22)
        )
        expected_common = sum(
            1
            for j, f in enumerate(freqs)
            if f >= frequency_threshold(BasicPolicy(), eps[j], m)
        )
        assert res.n_common == expected_common
        assert res.publish_as_one[2] == 1  # the frequency-10 identity
        # identity 0 and 1, if not decoys, get the reference beta.
        for j in (0, 1):
            if not res.publish_as_one[j]:
                assert res.betas[j] == pytest.approx(
                    BasicPolicy().beta(freqs[j] / m, eps[j], m)
                )


class TestSecurePipelinePrivacy:
    def test_only_unselected_frequencies_opened(self):
        m = 12
        freqs = [12, 1, 2, 3, 1]
        eps = [0.8, 0.3, 0.4, 0.5, 0.6]
        bits, _ = bits_and_matrix(freqs, m, 31)
        res = secure_beta_calculation(
            bits, eps, BasicPolicy(), c=3, rng=random.Random(32)
        )
        opened = set(res.opened_frequencies)
        selected = {j for j, b in enumerate(res.publish_as_one) if b}
        assert opened.isdisjoint(selected)
        assert opened | selected == set(range(len(freqs)))

    def test_count_stats_bounded_by_circuit(self):
        m = 8
        bits, _ = bits_and_matrix([2, 4], m, 41)
        res = secure_beta_calculation(
            bits, [0.5, 0.5], BasicPolicy(), c=3, rng=random.Random(42)
        )
        assert (
            res.count_result.stats.and_gates
            == res.count_result.circuit.stats().multiplicative_size
        )
        assert (
            res.selection_result.stats.and_gates
            == res.selection_result.circuit.stats().multiplicative_size
        )
