"""Grand end-to-end: every subsystem in one flow.

TREC-like network → *secure distributed* construction (SecSumShare +
CountBelow under GMW, timed on the simulator) → randomized publication from
the securely computed β → deployed locator service (server + providers +
fault-tolerant searcher) → attacks → per-owner audit.
"""

import random

import numpy as np
import pytest

from repro.analysis.audit import audit_index
from repro.attacks.adversary import AdversaryKnowledge
from repro.attacks.common_identity import common_identity_attack
from repro.attacks.primary import primary_attack_confidences
from repro.core.index import PPIIndex
from repro.core.policies import ChernoffPolicy
from repro.core.publication import publish_matrix
from repro.datasets.trec_like import TrecLikeConfig, build_trec_like_network
from repro.protocol import run_distributed_construction
from repro.service import run_locator_service


@pytest.fixture(scope="module")
def full_system():
    """Build once: the flow is deterministic given the seeds."""
    net = build_trec_like_network(
        TrecLikeConfig(
            n_providers=30, n_owners=60, mean_collection_size=5.0,
            attachment=0.4,
        ),
        seed=42,
    )
    matrix = net.membership_matrix()
    policy = ChernoffPolicy(0.9)

    # Phase 1, securely and distributed: providers' private rows in, betas out.
    provider_bits = [
        [1 if matrix.get(pid, j) else 0 for j in range(net.n_owners)]
        for pid in range(net.n_providers)
    ]
    epsilons = [float(o.epsilon) for o in net.owners]
    construction = run_distributed_construction(
        provider_bits, epsilons, policy, c=3, rng=random.Random(7)
    )

    # Phase 2: providers publish with the securely computed betas.
    rng = np.random.default_rng(8)
    published = publish_matrix(matrix, construction.betas, rng)
    index = PPIIndex(published, owner_names=[o.name for o in net.owners])
    return net, matrix, construction, index


class TestFullSystem:
    def test_secure_construction_produced_valid_betas(self, full_system):
        _, _, construction, _ = full_system
        assert len(construction.betas) == 60
        assert all(0.0 <= b <= 1.0 for b in construction.betas)
        assert construction.execution_time_s > 0
        assert construction.metrics.per_kind_messages["secsum/share"] > 0
        assert construction.metrics.per_kind_messages["mpc/round"] > 0

    def test_service_serves_every_owner_with_full_recall(self, full_system):
        net, _, _, index = full_system
        run = run_locator_service(
            net, index, queries=[o.owner_id for o in net.owners]
        )
        assert run.recall == 1.0
        assert run.queries_served == 60

    def test_service_survives_message_loss(self, full_system):
        net, _, _, index = full_system
        run = run_locator_service(
            net, index, queries=[o.owner_id for o in net.owners],
            loss_probability=0.15, loss_seed=5, max_retries=8,
        )
        assert run.recall == 1.0  # enough retries recover everything

    def test_primary_attack_bounded_for_protected_owners(self, full_system):
        net, matrix, _, index = full_system
        conf = primary_attack_confidences(
            matrix, AdversaryKnowledge(published=np.asarray(index.matrix))
        )
        eps = net.epsilons()
        # Statistical guarantee: >= ~gamma of non-broadcast owners bounded.
        sizes = np.asarray(index.matrix).sum(axis=0)
        protected = sizes < net.n_providers
        assert protected.sum() > 0  # the network is not degenerate
        satisfied = np.mean(conf[protected] <= (1 - eps[protected]) + 0.02)
        assert satisfied >= 0.7  # small-n slack around gamma=0.9

    def test_common_identity_attack_blunted(self, full_system):
        net, matrix, _, index = full_system
        attack = common_identity_attack(
            matrix,
            AdversaryKnowledge(published=np.asarray(index.matrix)),
            np.random.default_rng(3),
        )
        if attack.attacked and len(attack.truly_common):
            assert attack.identification_confidence < 1.0

    def test_audit_agrees_with_attack_surface(self, full_system):
        net, matrix, _, index = full_system
        audit = audit_index(
            matrix,
            np.asarray(index.matrix),
            net.epsilons(),
            owner_names=[o.name for o in net.owners],
        )
        conf = primary_attack_confidences(
            matrix, AdversaryKnowledge(published=np.asarray(index.matrix))
        )
        for owner_audit in audit.owners:
            if owner_audit.published_size > 0:
                assert owner_audit.attacker_confidence == pytest.approx(
                    conf[owner_audit.owner_id]
                )
