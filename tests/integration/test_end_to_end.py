"""End-to-end integration: Delegate -> ConstructPPI -> QueryPPI -> AuthSearch."""

import numpy as np

from repro.core import (
    AccessControl,
    ChernoffPolicy,
    Searcher,
    auth_search,
    construct_epsilon_ppi,
)
from repro.datasets import TrecLikeConfig, build_trec_like_network


class TestTwoPhaseSearch:
    def test_full_hie_flow(self, hospital_network, np_rng):
        """The Fig. 1 scenario: search for an owner through PPI + AuthSearch."""
        result = construct_epsilon_ppi(hospital_network, ChernoffPolicy(0.9), np_rng)
        celeb = hospital_network.owner_by_name("celebrity")

        # Phase 1: QueryPPI gives an obscured candidate list.
        candidates = result.index.query(celeb.owner_id)
        assert 2 in candidates  # true positive guaranteed

        # Phase 2: AuthSearch with a trusted searcher.
        acls = {pid: AccessControl(trusted={"er"}) for pid in range(5)}
        search = auth_search(
            hospital_network, acls, Searcher("er"), candidates, celeb.owner_id
        )
        assert search.found
        assert search.positive_providers == [2]
        assert search.records[0].payload == "oncology record"
        # Noise contacts are exactly candidates minus true positives.
        assert set(search.noise_providers) == set(candidates) - {2}

    def test_search_misses_nothing_over_many_owners(self, np_rng):
        net = build_trec_like_network(
            TrecLikeConfig(n_providers=30, n_owners=80), seed=3
        )
        result = construct_epsilon_ppi(net, ChernoffPolicy(0.9), np_rng)
        matrix = net.membership_matrix()
        acls = {pid: AccessControl(trusted={"s"}) for pid in range(30)}
        for owner in net.owners[:20]:
            candidates = result.index.query(owner.owner_id)
            search = auth_search(net, acls, Searcher("s"), candidates, owner.owner_id)
            true_providers = matrix.providers_of(owner.owner_id)
            assert set(search.positive_providers) == true_providers

    def test_index_serialization_preserves_queries(self, hospital_network, np_rng):
        from repro.core import PPIIndex

        result = construct_epsilon_ppi(hospital_network, ChernoffPolicy(0.9), np_rng)
        loaded = PPIIndex.from_json(result.index.to_json())
        for owner in hospital_network.owners:
            assert loaded.query(owner.owner_id) == result.index.query(owner.owner_id)


class TestPersonalization:
    def test_higher_epsilon_more_noise(self):
        """The privacy knob works: at equal frequency, a higher-ǫ owner gets
        a (statistically) larger published list."""
        from repro.core import InformationNetwork

        rng = np.random.default_rng(11)
        sizes = {0.2: [], 0.9: []}
        for trial in range(30):
            net = InformationNetwork(100)
            low = net.register_owner("low", 0.2)
            high = net.register_owner("high", 0.9)
            for pid in (3, 17, 42):
                net.delegate(low, pid)
                net.delegate(high, pid)
            result = construct_epsilon_ppi(net, ChernoffPolicy(0.9), rng)
            sizes[0.2].append(result.index.result_size(low.owner_id))
            sizes[0.9].append(result.index.result_size(high.owner_id))
        assert np.mean(sizes[0.9]) > np.mean(sizes[0.2]) * 2

    def test_epsilon_zero_truthful_list(self, np_rng):
        from repro.core import InformationNetwork

        net = InformationNetwork(50)
        owner = net.register_owner("nobody-special", 0.0)
        net.delegate(owner, 5)
        result = construct_epsilon_ppi(net, ChernoffPolicy(0.9), np_rng)
        assert result.index.query(owner.owner_id) == [5]

    def test_epsilon_one_broadcast(self, np_rng):
        from repro.core import InformationNetwork

        net = InformationNetwork(50)
        owner = net.register_owner("vip", 1.0)
        net.delegate(owner, 5)
        result = construct_epsilon_ppi(net, ChernoffPolicy(0.9), np_rng)
        assert result.index.result_size(owner.owner_id) == 50
