"""Scaled-down assertions of the paper's headline experimental claims.

Each test mirrors one figure's qualitative shape at test-suite scale; the
full-scale regeneration lives in ``benchmarks/``.
"""

import random

import numpy as np
import pytest

from repro.analysis.experiments import (
    grouping_success_ratio,
    policy_success_ratio,
    search_cost_grouping,
    search_cost_nongrouping,
)
from repro.attacks.adversary import AdversaryKnowledge
from repro.attacks.common_identity import common_identity_attack
from repro.core.mixing import mix_betas
from repro.core.policies import (
    BasicPolicy,
    ChernoffPolicy,
    IncrementedExpectationPolicy,
)
from repro.core.publication import publish_matrix
from repro.datasets.synthetic import exact_frequency_matrix
from repro.protocol import run_distributed_construction, run_pure_mpc_simulation


class TestFigure4Claims:
    """Non-grouping ǫ-PPI stable near 1.0; grouping unstable / collapsing."""

    def test_chernoff_stable_across_frequencies(self, np_rng):
        for freq in (30, 100, 250, 450):
            pp = policy_success_ratio(
                10_000, freq, 0.8, ChernoffPolicy(0.9), np_rng, samples=100
            )
            assert pp >= 0.85, freq

    def test_grouping_collapses_at_high_epsilon(self, np_rng):
        """Fig. 4b: grouping success ratio degrades to ~0 for strict ǫ."""
        pp_low = grouping_success_ratio(10_000, 100, 0.3, 2000, np_rng, samples=40)
        pp_high = grouping_success_ratio(10_000, 100, 0.95, 2000, np_rng, samples=40)
        assert pp_high < 0.3
        assert pp_low > pp_high

    def test_nongrouping_beats_grouping_at_strict_epsilon(self, np_rng):
        eps = 0.9
        pp_eppi = policy_success_ratio(
            10_000, 100, eps, ChernoffPolicy(0.9), np_rng, samples=100
        )
        pp_grouping = grouping_success_ratio(
            10_000, 100, eps, 2000, np_rng, samples=40
        )
        assert pp_eppi > pp_grouping + 0.3


class TestFigure5Claims:
    """Policy comparison: Chernoff ~1.0, basic ~0.5, inc-exp in between/unstable."""

    def test_policy_ordering_mid_frequency(self, np_rng):
        m, freq, eps = 10_000, 200, 0.5
        pp_basic = policy_success_ratio(m, freq, eps, BasicPolicy(), np_rng, 300)
        pp_chernoff = policy_success_ratio(
            m, freq, eps, ChernoffPolicy(0.9), np_rng, 300
        )
        assert pp_chernoff > 0.85
        assert 0.3 < pp_basic < 0.7
        assert pp_chernoff > pp_basic

    def test_incexp_degrades_at_high_frequency(self, np_rng):
        """Fig. 5a: inc-exp falls off for frequent identities while Chernoff
        holds (Δ bump becomes negligible relative to the needed margin)."""
        m, eps = 10_000, 0.5
        incexp = IncrementedExpectationPolicy(0.002)
        pp_low = policy_success_ratio(m, 50, eps, incexp, np_rng, 300)
        pp_high = policy_success_ratio(m, 2000, eps, incexp, np_rng, 300)
        pp_chernoff_high = policy_success_ratio(
            m, 2000, eps, ChernoffPolicy(0.9), np_rng, 300
        )
        assert pp_high < pp_low
        assert pp_chernoff_high > pp_high

    def test_incexp_degrades_with_few_providers(self, np_rng):
        """Fig. 5b: inc-exp suffers at small m (noisy small-sample sums)."""
        incexp = IncrementedExpectationPolicy(0.02)
        pp_small = policy_success_ratio(32, 3, 0.5, incexp, np_rng, 400)
        pp_large = policy_success_ratio(8192, 819, 0.5, incexp, np_rng, 400)
        assert pp_small < pp_large

    def test_chernoff_holds_at_small_m(self, np_rng):
        pp = policy_success_ratio(32, 3, 0.5, ChernoffPolicy(0.9), np_rng, 400)
        assert pp >= 0.85


class TestFigure6Claims:
    """MPC-reduced construction vs pure MPC: scaling separation."""

    def test_execution_time_separation_grows_with_m(self):
        ratios = []
        for m in (5, 10):
            bits = [
                [random.Random(m * 100 + i).randint(0, 1) for _ in range(2)]
                for i in range(m)
            ]
            eppi = run_distributed_construction(
                bits, [0.5, 0.5], BasicPolicy(), c=3, rng=random.Random(1)
            )
            pure = run_pure_mpc_simulation(
                bits, [0.5, 0.5], BasicPolicy(), rng=random.Random(2)
            )
            ratios.append(pure.execution_time_s / eppi.execution_time_s)
        assert ratios[1] > ratios[0]
        assert ratios[1] > 1.0

    def test_circuit_size_flat_vs_growing(self):
        """Fig. 6b: ǫ-PPI circuit size ~flat in m, pure-MPC grows."""
        from repro.mpc.betacalc import secure_beta_calculation
        from repro.mpc.pure import run_pure_beta_calculation

        eppi_sizes, pure_sizes = [], []
        for m in (4, 8, 16):
            rng = random.Random(m)
            bits = [[rng.randint(0, 1) for _ in range(2)] for _ in range(m)]
            eppi = secure_beta_calculation(
                bits, [0.5, 0.5], BasicPolicy(), c=3, rng=random.Random(3)
            )
            pure = run_pure_beta_calculation(
                bits, [0.5, 0.5], BasicPolicy(), random.Random(4)
            )
            eppi_sizes.append(eppi.total_circuit_size)
            pure_sizes.append(pure.total_circuit_size)
        # pure grows strictly; eppi varies only via the log(m) share width.
        assert pure_sizes[0] < pure_sizes[1] < pure_sizes[2]
        assert eppi_sizes[2] < eppi_sizes[0] * 2
        assert pure_sizes[2] / eppi_sizes[2] > pure_sizes[0] / eppi_sizes[0]


class TestCommonIdentityDefence:
    """The ablation claim: mixing is what defeats the common-identity attack."""

    @pytest.fixture
    def setup(self):
        m, n = 400, 300
        rng = np.random.default_rng(9)
        freqs = [400, 395, 398] + list(rng.integers(1, 40, size=n - 3))
        matrix = exact_frequency_matrix(m, [int(f) for f in freqs], rng)
        eps = np.full(n, 0.8)
        sigmas = np.array([matrix.sigma(j) for j in range(n)])
        betas = ChernoffPolicy(0.9).beta_vector(sigmas, eps, m)
        return matrix, eps, betas, rng

    def test_attack_succeeds_without_mixing(self, setup):
        matrix, eps, betas, rng = setup
        mixing = mix_betas(betas, eps, rng, enabled=False)
        published = publish_matrix(matrix, mixing.betas, rng)
        result = common_identity_attack(
            matrix, AdversaryKnowledge(published=published), rng
        )
        assert result.identification_confidence > 0.6

    def test_attack_bounded_with_mixing(self, setup):
        matrix, eps, betas, rng = setup
        mixing = mix_betas(betas, eps, rng, enabled=True)
        published = publish_matrix(matrix, mixing.betas, rng)
        result = common_identity_attack(
            matrix, AdversaryKnowledge(published=published), rng
        )
        # epsilon = 0.8 -> confidence must be bounded near 1 - 0.8 = 0.2.
        assert result.identification_confidence <= 0.35


class TestSearchOverhead:
    def test_cost_grows_with_epsilon_but_below_broadcast(self, np_rng):
        m, freq = 2000, 20
        costs = [
            search_cost_nongrouping(m, freq, e, ChernoffPolicy(0.9), np_rng)
            for e in (0.2, 0.5, 0.8)
        ]
        assert costs == sorted(costs)
        assert costs[-1] < m  # still cheaper than broadcast

    def test_grouping_broadcasts_for_scattered_identities(self, np_rng):
        """Grouping's weakness: an identity in many groups drags whole
        groups into the result."""
        m, n_groups = 2000, 40
        cost = search_cost_grouping(m, 60, n_groups, np_rng)
        # 60 positives over 40 groups: nearly every group positive ->
        # near-broadcast.
        assert cost > 0.7 * m
