"""Integration: the full CLI pipeline on one dataset, all commands chained."""

import json

import pytest

from repro.cli import load_dataset, main


@pytest.fixture
def workspace(tmp_path):
    ds = tmp_path / "network.json"
    idx = tmp_path / "index.json"
    assert main([
        "generate", "--kind", "zipf", "--providers", "60", "--owners", "150",
        "--seed", "11", "--output", str(ds),
    ]) == 0
    assert main([
        "construct", "--dataset", str(ds), "--output", str(idx),
        "--policy", "chernoff", "--gamma", "0.9", "--seed", "12",
    ]) == 0
    return ds, idx


class TestPipeline:
    def test_construct_then_audit_consistent(self, workspace, capsys):
        ds, idx = workspace
        capsys.readouterr()
        assert main(["audit", "--dataset", str(ds), "--index", str(idx)]) == 0
        out = capsys.readouterr().out
        ratio = float(out.split("success ratio:")[1].split()[0])
        assert ratio >= 0.8  # Chernoff 0.9 on a healthy dataset

    def test_attack_classifies_eps_private(self, workspace, capsys):
        ds, idx = workspace
        capsys.readouterr()
        assert main(["attack", "--dataset", str(ds), "--index", str(idx)]) == 0
        out = capsys.readouterr().out
        assert "degree: eps-private" in out

    def test_query_recall_against_ground_truth(self, workspace, capsys):
        ds, idx = workspace
        network = load_dataset(str(ds))
        matrix = network.membership_matrix()
        for owner in network.owners[:10]:
            capsys.readouterr()
            assert main([
                "query", "--index", str(idx), "--owner", owner.name,
            ]) == 0
            out = capsys.readouterr().out
            listed = set()
            lines = out.strip().splitlines()
            if len(lines) > 1 and lines[1].strip():
                listed = {int(tok) for tok in lines[1].split()}
            assert matrix.providers_of(owner.owner_id) <= listed

    def test_reconstruct_same_seed_same_index(self, workspace, tmp_path):
        ds, idx = workspace
        idx2 = tmp_path / "index2.json"
        assert main([
            "construct", "--dataset", str(ds), "--output", str(idx2),
            "--policy", "chernoff", "--gamma", "0.9", "--seed", "12",
        ]) == 0
        assert json.loads(idx.read_text()) == json.loads(idx2.read_text())

    def test_different_seed_different_noise(self, workspace, tmp_path):
        ds, idx = workspace
        idx2 = tmp_path / "index2.json"
        assert main([
            "construct", "--dataset", str(ds), "--output", str(idx2),
            "--seed", "99",
        ]) == 0
        assert json.loads(idx.read_text()) != json.loads(idx2.read_text())

    def test_inc_exp_policy_flag(self, workspace, tmp_path, capsys):
        ds, _ = workspace
        out_path = tmp_path / "incexp.json"
        assert main([
            "construct", "--dataset", str(ds), "--output", str(out_path),
            "--policy", "inc-exp", "--delta", "0.05",
        ]) == 0
        assert "inc-exp" in capsys.readouterr().out
