"""Property-based tests for the core ǫ-PPI invariants (DESIGN.md list)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mixing import compute_lambda, mix_betas
from repro.core.model import MembershipMatrix
from repro.core.policies import (
    BasicPolicy,
    ChernoffPolicy,
    IncrementedExpectationPolicy,
    basic_beta,
    chernoff_beta,
)
from repro.core.publication import publish_matrix


@given(
    sigma=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    epsilon=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
@settings(max_examples=300)
def test_basic_beta_always_in_unit_interval(sigma, epsilon):
    assert 0.0 <= basic_beta(sigma, epsilon) <= 1.0


@given(
    sigma=st.floats(min_value=0.0, max_value=0.999, allow_nan=False),
    epsilon=st.floats(min_value=0.001, max_value=0.999, allow_nan=False),
    gamma=st.floats(min_value=0.51, max_value=0.99, allow_nan=False),
    m=st.integers(min_value=1, max_value=100000),
)
@settings(max_examples=300)
def test_chernoff_dominates_basic(sigma, epsilon, gamma, m):
    """DESIGN.md invariant 5: β_c >= β_b everywhere, both clamped to [0,1]."""
    b = basic_beta(sigma, epsilon)
    c = chernoff_beta(sigma, epsilon, gamma, m)
    assert 0.0 <= c <= 1.0
    assert c >= b - 1e-12


@given(
    sigmas=st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=30
    ),
    epsilon=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    m=st.integers(min_value=2, max_value=5000),
)
@settings(max_examples=100)
def test_policies_monotone_in_sigma(sigmas, epsilon, m):
    for policy in (BasicPolicy(), IncrementedExpectationPolicy(0.02), ChernoffPolicy(0.9)):
        betas = [policy.beta(s, epsilon, m) for s in sorted(sigmas)]
        assert all(b2 >= b1 - 1e-12 for b1, b2 in zip(betas, betas[1:]))


@given(
    cells=st.sets(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=5),
        ),
        max_size=30,
    ),
    betas=st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=6,
        max_size=6,
    ),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=150)
def test_publication_recall_invariant(cells, betas, seed):
    """DESIGN.md invariant 1: every true positive survives publication."""
    matrix = MembershipMatrix(8, 6)
    for pid, oid in cells:
        matrix.set(pid, oid)
    published = publish_matrix(matrix, betas, np.random.default_rng(seed))
    dense = matrix.to_dense()
    assert np.all(published[dense == 1] == 1)


@given(
    n_common=st.integers(min_value=0, max_value=100),
    extra=st.integers(min_value=0, max_value=1000),
    xi=st.floats(min_value=0.0, max_value=0.99, allow_nan=False),
)
@settings(max_examples=200)
def test_lambda_in_unit_interval(n_common, extra, xi):
    lam = compute_lambda(n_common, n_common + extra, xi)
    assert 0.0 <= lam <= 1.0


@given(
    n_rare=st.integers(min_value=50, max_value=300),
    n_common=st.integers(min_value=1, max_value=10),
    xi=st.floats(min_value=0.1, max_value=0.9, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=100)
def test_mixing_never_lowers_betas(n_rare, n_common, xi, seed):
    betas = np.concatenate([np.full(n_common, 1.0), np.full(n_rare, 0.1)])
    eps = np.full(n_common + n_rare, xi)
    result = mix_betas(betas, eps, np.random.default_rng(seed))
    assert np.all(result.betas >= betas - 1e-12)
    assert np.all((result.betas == 1.0) | (result.betas == betas))
