"""Property-based tests: circuits vs Python-int semantics, GMW vs plaintext."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc.circuits import (
    CircuitBuilder,
    add_many,
    bits_to_int,
    evaluate,
    int_to_bits,
    less_than,
    popcount,
    ripple_add,
    ripple_add_mod2k,
)
from repro.mpc.gmw import GMWProtocol


@given(
    width=st.integers(min_value=1, max_value=12),
    x=st.integers(min_value=0),
    y=st.integers(min_value=0),
)
@settings(max_examples=150)
def test_ripple_add_matches_int_addition(width, x, y):
    x %= 1 << width
    y %= 1 << width
    b = CircuitBuilder()
    xs, ys = b.input_bits(width), b.input_bits(width)
    b.output_bits(ripple_add(b, xs, ys))
    out = evaluate(b.build(), int_to_bits(x, width) + int_to_bits(y, width))
    assert bits_to_int(out) == x + y


@given(
    width=st.integers(min_value=1, max_value=10),
    x=st.integers(min_value=0),
    y=st.integers(min_value=0),
)
@settings(max_examples=150)
def test_modular_add_matches_int_mod(width, x, y):
    x %= 1 << width
    y %= 1 << width
    b = CircuitBuilder()
    xs, ys = b.input_bits(width), b.input_bits(width)
    b.output_bits(ripple_add_mod2k(b, xs, ys))
    out = evaluate(b.build(), int_to_bits(x, width) + int_to_bits(y, width))
    assert bits_to_int(out) == (x + y) % (1 << width)


@given(
    width=st.integers(min_value=1, max_value=10),
    x=st.integers(min_value=0),
    y=st.integers(min_value=0),
)
@settings(max_examples=150)
def test_less_than_matches_int_comparison(width, x, y):
    x %= 1 << width
    y %= 1 << width
    b = CircuitBuilder()
    xs, ys = b.input_bits(width), b.input_bits(width)
    b.output(less_than(b, xs, ys))
    out = evaluate(b.build(), int_to_bits(x, width) + int_to_bits(y, width))
    assert out == [1 if x < y else 0]


@given(bits=st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=24))
@settings(max_examples=100)
def test_popcount_matches_sum(bits):
    b = CircuitBuilder()
    ins = b.input_bits(len(bits))
    b.output_bits(popcount(b, ins))
    assert bits_to_int(evaluate(b.build(), bits)) == sum(bits)


@given(
    values=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=8)
)
@settings(max_examples=100)
def test_add_many_matches_sum(values):
    b = CircuitBuilder()
    numbers = [b.input_bits(4) for _ in values]
    b.output_bits(add_many(b, numbers))
    inputs = [bit for v in values for bit in int_to_bits(v, 4)]
    assert bits_to_int(evaluate(b.build(), inputs)) == sum(values)


@given(
    x=st.integers(min_value=0, max_value=255),
    y=st.integers(min_value=0, max_value=255),
    parties=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_gmw_equals_plaintext_on_adder_comparator(x, y, parties, seed):
    """DESIGN.md invariant 6: GMW over shares == plaintext evaluation."""
    b = CircuitBuilder()
    xs, ys = b.input_bits(8), b.input_bits(8)
    b.output_bits(ripple_add(b, xs, ys))
    b.output(less_than(b, xs, ys))
    circuit = b.build()
    inputs = int_to_bits(x, 8) + int_to_bits(y, 8)
    expected = evaluate(circuit, inputs)
    secure = GMWProtocol(circuit, parties, random.Random(seed)).run(inputs)
    assert secure.outputs == expected
