"""Property tests: bitsliced batch GMW == scalar GMW == plaintext evaluate.

Random circuits x random lane-packed input batches, including ragged final
chunks (n_instances % 64 != 0) and the per-instance stats contract: the
batch engine must report exactly the communication a scalar run of the same
circuit reports, per instance and in aggregate.
"""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc.circuits import evaluate, evaluate_batch
from repro.mpc.gmw import BatchGMWEngine, GMWEngine, expected_stats

from tests.property.test_property_gmw import random_circuit


def _random_inputs(n_instances: int, n_inputs: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).integers(
        0, 2, size=(n_instances, n_inputs), dtype=np.uint8
    )


@given(
    n_inputs=st.integers(min_value=1, max_value=8),
    n_gates=st.integers(min_value=1, max_value=40),
    circuit_seed=st.integers(min_value=0, max_value=10**6),
    input_seed=st.integers(min_value=0, max_value=10**6),
    n_instances=st.integers(min_value=1, max_value=70),
    parties=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_batch_matches_scalar_and_plaintext(
    n_inputs, n_gates, circuit_seed, input_seed, n_instances, parties
):
    """Three independent evaluations of the same batch must agree bit-for-bit.

    ``n_instances`` ranges past 64 so the final lane chunk is ragged for a
    fair share of examples.
    """
    circuit = random_circuit(n_inputs, n_gates, circuit_seed)
    inputs = _random_inputs(n_instances, n_inputs, input_seed)

    plain = evaluate_batch(circuit, inputs)
    batch = BatchGMWEngine(circuit, parties, random.Random(input_seed + 1)).run(inputs)
    scalar_engine = GMWEngine(circuit, parties, random.Random(input_seed + 2))

    assert batch.outputs.shape == plain.shape
    np.testing.assert_array_equal(batch.outputs, plain)
    for i in range(n_instances):
        row = [int(v) for v in inputs[i]]
        assert list(batch.outputs[i]) == evaluate(circuit, row)
        scalar = scalar_engine.run(row)
        assert list(batch.outputs[i]) == scalar.outputs
        # Per-instance stats contract: batched accounting == scalar reality.
        assert batch.per_instance == scalar.stats


@given(
    n_inputs=st.integers(min_value=1, max_value=6),
    n_gates=st.integers(min_value=1, max_value=30),
    circuit_seed=st.integers(min_value=0, max_value=10**6),
    n_instances=st.integers(min_value=1, max_value=130),
    parties=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_batch_aggregate_stats_scale_linearly(
    n_inputs, n_gates, circuit_seed, n_instances, parties
):
    """Aggregate stats are exactly n_instances x the per-instance record --
    the paper's cost model, under which lanes never share rounds."""
    circuit = random_circuit(n_inputs, n_gates, circuit_seed)
    inputs = _random_inputs(n_instances, n_inputs, seed=circuit_seed + 1)
    batch = BatchGMWEngine(circuit, parties, random.Random(3)).run(inputs)
    per = batch.per_instance
    assert per == expected_stats(circuit, parties)
    assert batch.stats.rounds == per.rounds * n_instances
    assert batch.stats.messages == per.messages * n_instances
    assert batch.stats.bits_sent == per.bits_sent * n_instances
    assert batch.stats.and_gates == per.and_gates * n_instances
    assert batch.stats.triples_consumed == per.triples_consumed * n_instances
    # Physical rounds are what the bitsliced run actually needed: at most
    # ceil(n/64) times the per-instance count.
    chunks = -(-n_instances // 64)
    assert batch.physical_rounds <= per.rounds * chunks


@given(
    n_inputs=st.integers(min_value=1, max_value=6),
    n_gates=st.integers(min_value=1, max_value=25),
    circuit_seed=st.integers(min_value=0, max_value=10**6),
    n_instances=st.integers(min_value=1, max_value=70),
)
@settings(max_examples=30, deadline=None)
def test_unopened_output_shares_reconstruct(
    n_inputs, n_gates, circuit_seed, n_instances
):
    """open_outputs=False keeps outputs shared; XOR over parties opens them."""
    parties = 3
    circuit = random_circuit(n_inputs, n_gates, circuit_seed)
    inputs = _random_inputs(n_instances, n_inputs, seed=circuit_seed + 7)
    batch = BatchGMWEngine(circuit, parties, random.Random(5)).run(
        inputs, open_outputs=False
    )
    assert batch.outputs is None
    assert batch.output_shares.shape == (parties, n_instances, len(circuit.outputs))
    reconstructed = np.bitwise_xor.reduce(batch.output_shares, axis=0)
    np.testing.assert_array_equal(reconstructed, evaluate_batch(circuit, inputs))
    # No opening round is charged when outputs stay shared.
    opened = expected_stats(circuit, parties, open_outputs=True)
    assert batch.per_instance == expected_stats(circuit, parties, open_outputs=False)
    assert batch.per_instance.rounds == opened.rounds - (1 if circuit.outputs else 0)
