"""Property suite: the CSR postings engine is observationally identical to
the dense index on every query surface.

:class:`~repro.core.postings.PostingsIndex` replaces
:class:`~repro.core.index.PPIIndex` on the serving read path, so the two
must agree byte-for-byte on ``query`` / ``query_many`` / ``result_size`` /
``published_frequency`` / ``stats`` / error behavior, over arbitrary
published matrices -- including all-zero owners (empty result lists),
broadcast owners (every provider), and unnamed indexes.  The snapshot
round trip (save v2 -> mmap load) must preserve the same equivalence.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ModelError
from repro.core.index import PPIIndex
from repro.core.postings import PostingsIndex
from repro.serving.snapshot import load_postings, save_snapshot


@st.composite
def published_matrices(draw):
    """Random M' with deliberately adversarial columns mixed in."""
    m = draw(st.integers(min_value=1, max_value=12))
    n = draw(st.integers(min_value=0, max_value=20))
    bits = draw(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=1), min_size=n, max_size=n),
            min_size=m,
            max_size=m,
        )
    )
    matrix = np.array(bits, dtype=np.uint8).reshape(m, n)
    if n:
        # Force the edge columns the serving path actually hits.
        empty = draw(st.integers(min_value=0, max_value=n - 1))
        matrix[:, empty] = 0
        broadcast = draw(st.integers(min_value=0, max_value=n - 1))
        matrix[:, broadcast] = 1
    named = draw(st.booleans())
    names = [f"owner-{j}" for j in range(n)] if named else None
    return matrix, names


@given(data=published_matrices())
@settings(max_examples=200, deadline=None)
def test_postings_equivalent_to_dense_index(data):
    matrix, names = data
    dense = PPIIndex(matrix, owner_names=names)
    csr = PostingsIndex.from_dense(matrix, owner_names=names)

    assert csr.n_providers == dense.n_providers
    assert csr.n_owners == dense.n_owners
    assert csr.owner_names == dense.owner_names
    assert csr.stats() == dense.stats()
    for j in range(dense.n_owners):
        assert csr.query(j) == dense.query(j)
        assert csr.result_size(j) == dense.result_size(j)
        assert csr.published_frequency(j) == dense.published_frequency(j)
    if names:
        for name in names:
            assert csr.query_by_name(name) == dense.query_by_name(name)


@given(data=published_matrices(), seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=200, deadline=None)
def test_query_many_equivalent_including_duplicates(data, seed):
    matrix, names = data
    if matrix.shape[1] == 0:
        return
    dense = PPIIndex(matrix, owner_names=names)
    csr = PostingsIndex.from_dense(matrix, owner_names=names)
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, matrix.shape[1], size=int(rng.integers(1, 40)))
    assert csr.query_many(ids) == dense.query_many(ids)
    assert csr.query_many([]) == dense.query_many([]) == []
    counts, flat = csr.query_many_arrays(ids)
    nested = dense.query_many(ids)
    assert counts.tolist() == [len(ps) for ps in nested]
    assert flat.tolist() == [p for ps in nested for p in ps]


@given(data=published_matrices())
@settings(max_examples=100, deadline=None)
def test_errors_match_dense_index(data):
    matrix, names = data
    dense = PPIIndex(matrix, owner_names=names)
    csr = PostingsIndex.from_dense(matrix, owner_names=names)
    n = matrix.shape[1]
    for bad in (-1, n, n + 7):
        with pytest.raises(ModelError):
            dense.query(bad)
        with pytest.raises(ModelError):
            csr.query(bad)
        with pytest.raises(ModelError):
            csr.query_many([0, bad] if n else [bad])
    with pytest.raises(ModelError):
        csr.query_by_name("no-such-owner")


@given(data=published_matrices())
@settings(max_examples=100, deadline=None)
def test_round_trips_preserve_equivalence(data):
    matrix, names = data
    dense = PPIIndex(matrix, owner_names=names)
    csr = PostingsIndex.from_dense(matrix, owner_names=names)
    assert np.array_equal(csr.to_dense(), matrix)
    back = csr.to_index()
    assert np.array_equal(back.matrix, matrix)
    assert back.owner_names == dense.owner_names
    again = PostingsIndex.from_index(back)
    assert again.stats() == csr.stats()
    rows = PostingsIndex.from_provider_rows(
        list(matrix), matrix.shape[1], owner_names=names
    )
    assert np.array_equal(rows.to_dense(), matrix)
    assert rows.stats() == csr.stats()


@given(data=published_matrices(), mmap=st.booleans())
@settings(max_examples=60, deadline=None)
def test_snapshot_v2_round_trip_equivalence(data, mmap, tmp_path_factory):
    matrix, names = data
    path = str(tmp_path_factory.mktemp("snap") / "index.npz")
    save_snapshot(PPIIndex(matrix, owner_names=names), path)
    loaded = load_postings(path, mmap=mmap)
    dense = PPIIndex(matrix, owner_names=names)
    assert loaded.stats() == dense.stats()
    assert loaded.owner_names == dense.owner_names
    for j in range(dense.n_owners):
        assert loaded.query(j) == dense.query(j)


class TestStructuralValidation:
    """Malformed CSR inputs are rejected up front (validate=True path)."""

    def test_bad_indptr_bounds(self):
        with pytest.raises(ModelError, match="indptr"):
            PostingsIndex(np.array([1, 2]), np.array([0, 1]), 4)

    def test_non_monotone_indptr(self):
        with pytest.raises(ModelError, match="monotonically"):
            PostingsIndex(np.array([0, 2, 1, 3]), np.array([0, 1, 2]), 4)

    def test_out_of_range_provider(self):
        with pytest.raises(ModelError, match="out of range"):
            PostingsIndex(np.array([0, 2]), np.array([0, 9]), 4)

    def test_unsorted_postings_rejected(self):
        with pytest.raises(ModelError, match="sorted"):
            PostingsIndex(np.array([0, 2]), np.array([3, 1]), 4)

    def test_duplicate_postings_rejected(self):
        with pytest.raises(ModelError, match="sorted"):
            PostingsIndex(np.array([0, 2]), np.array([1, 1]), 4)

    def test_boundary_resets_are_legal(self):
        # [0..3] then [0..1]: the drop at the slice boundary must pass.
        idx = PostingsIndex(np.array([0, 2, 4]), np.array([2, 3, 0, 1]), 4)
        assert idx.query(0) == [2, 3] and idx.query(1) == [0, 1]

    def test_name_count_mismatch(self):
        with pytest.raises(ModelError, match="names"):
            PostingsIndex(np.array([0, 1]), np.array([0]), 2, owner_names=["a", "b"])

    def test_validate_false_skips_checks(self):
        # Trusted-source path: structurally wrong arrays are accepted.
        idx = PostingsIndex(
            np.array([0, 2]), np.array([9, 1]), 4, validate=False
        )
        assert idx.query(0) == [9, 1]
