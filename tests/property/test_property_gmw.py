"""Property-based tests for the GMW engine over randomly generated circuits."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc.circuits import Circuit, CircuitBuilder, evaluate
from repro.mpc.gmw import GMWProtocol


def random_circuit(n_inputs: int, n_gates: int, seed: int) -> Circuit:
    """A random well-formed circuit mixing all gate kinds."""
    rng = random.Random(seed)
    b = CircuitBuilder()
    wires = [b.input_bit() for _ in range(n_inputs)]
    wires.append(b.zero())
    wires.append(b.one())
    for _ in range(n_gates):
        op = rng.choice(["xor", "and", "or", "not", "mux"])
        if op == "not":
            wires.append(b.not_(rng.choice(wires)))
        elif op == "mux":
            wires.append(b.mux(rng.choice(wires), rng.choice(wires), rng.choice(wires)))
        else:
            x, y = rng.choice(wires), rng.choice(wires)
            fn = {"xor": b.xor, "and": b.and_, "or": b.or_}[op]
            wires.append(fn(x, y))
    # A handful of outputs from the deepest wires.
    for w in wires[-min(4, len(wires)):]:
        b.output(w)
    return b.build()


@given(
    n_inputs=st.integers(min_value=1, max_value=8),
    n_gates=st.integers(min_value=1, max_value=40),
    circuit_seed=st.integers(min_value=0, max_value=10**6),
    input_seed=st.integers(min_value=0, max_value=10**6),
    parties=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=80, deadline=None)
def test_gmw_matches_plaintext_on_random_circuits(
    n_inputs, n_gates, circuit_seed, input_seed, parties
):
    """DESIGN.md invariant 6 over the whole circuit space, not just the
    arithmetic building blocks."""
    circuit = random_circuit(n_inputs, n_gates, circuit_seed)
    rng = random.Random(input_seed)
    inputs = [rng.getrandbits(1) for _ in range(n_inputs)]
    expected = evaluate(circuit, inputs)
    result = GMWProtocol(circuit, parties, random.Random(input_seed + 1)).run(inputs)
    assert result.outputs == expected


@given(
    n_inputs=st.integers(min_value=1, max_value=6),
    n_gates=st.integers(min_value=1, max_value=30),
    circuit_seed=st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=60, deadline=None)
def test_gmw_stats_consistent(n_inputs, n_gates, circuit_seed):
    """Triples consumed == AND gates; rounds bounded by AND count + 1."""
    circuit = random_circuit(n_inputs, n_gates, circuit_seed)
    result = GMWProtocol(circuit, 3, random.Random(7)).run([0] * n_inputs)
    and_count = circuit.stats().and_
    assert result.stats.and_gates == and_count
    assert result.stats.triples_consumed == and_count
    assert result.stats.rounds <= and_count + 1


@given(
    n_inputs=st.integers(min_value=1, max_value=6),
    n_gates=st.integers(min_value=1, max_value=25),
    circuit_seed=st.integers(min_value=0, max_value=10**6),
    seed_a=st.integers(min_value=0, max_value=10**6),
    seed_b=st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=40, deadline=None)
def test_gmw_output_independent_of_randomness(
    n_inputs, n_gates, circuit_seed, seed_a, seed_b
):
    """Different protocol randomness must never change the outputs."""
    circuit = random_circuit(n_inputs, n_gates, circuit_seed)
    inputs = [1] * n_inputs
    out_a = GMWProtocol(circuit, 3, random.Random(seed_a)).run(inputs).outputs
    out_b = GMWProtocol(circuit, 3, random.Random(seed_b)).run(inputs).outputs
    assert out_a == out_b


@given(
    n_inputs=st.integers(min_value=1, max_value=8),
    n_gates=st.integers(min_value=1, max_value=50),
    circuit_seed=st.integers(min_value=0, max_value=10**6),
    input_seed=st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=100, deadline=None)
def test_optimizer_preserves_semantics(n_inputs, n_gates, circuit_seed, input_seed):
    """The optimizer must be a semantics-preserving transformation on any
    circuit, with never-increasing gate counts."""
    from repro.mpc.circuits.optimize import optimize

    circuit = random_circuit(n_inputs, n_gates, circuit_seed)
    optimized, report = optimize(circuit)
    assert report.after_total <= report.before_total
    assert report.after_and <= report.before_and
    assert optimized.n_inputs == circuit.n_inputs
    rng = random.Random(input_seed)
    for _ in range(8):
        inputs = [rng.getrandbits(1) for _ in range(n_inputs)]
        assert evaluate(optimized, inputs) == evaluate(circuit, inputs)
