"""Property suite: wire protocol v2 is a lossless, fault-tight codec.

Four invariants, over arbitrary messages and arbitrary byte streams:

* **identity** -- encode -> decode is the identity for every verb, both
  the packed binary forms (ping/query/query-batch) and the JSON fallback
  (operational verbs, extension verbs, unexpressible field values);
* **framing** -- decoding is invariant under how TCP chunks the stream:
  one feed, byte-at-a-time, or arbitrary split points all yield the same
  frame sequence, and a truncated frame is "not yet", never an error;
* **integrity** -- any single corrupted payload byte is caught by the
  crc32 (no silently wrong message ever comes out);
* **robustness** -- ``FrameDecoder.feed`` never raises, whatever bytes
  arrive, and an oversized length announcement is refused from the header
  alone.
"""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.protocol import MAX_FRAME_BYTES
from repro.serving.protocol_v2 import (
    HEADER,
    MAGIC,
    PROTOCOL_V2,
    FrameDecoder,
    encode_reply_v2,
    encode_request_v2,
)

u64 = st.integers(min_value=0, max_value=2**64 - 1)
u32 = st.integers(min_value=0, max_value=2**32 - 1)

#: JSON-safe field values (the payload universe of the operational verbs)
json_values = st.recursive(
    st.none() | st.booleans() | st.integers(-(2**53), 2**53) | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=8,
)

#: field names that never collide with the envelope keys
field_names = st.text(min_size=1, max_size=12).filter(
    lambda k: k not in ("id", "verb", "ok")
)
json_fields = st.dictionaries(field_names, json_values, max_size=4)

verb_names = st.sampled_from(
    ["ping", "stats", "info", "query", "query-batch", "reload", "search"]
) | st.text(min_size=1, max_size=16).filter(lambda v: v not in ("",))


@st.composite
def request_messages(draw):
    """Arbitrary v1-shaped requests: binary-codec verbs and JSON ones."""
    rid = draw(u64)
    kind = draw(st.sampled_from(["ping", "query", "query-batch", "json", "ext"]))
    if kind == "ping":
        return {"id": rid, "verb": "ping"}
    if kind == "query":
        # u64 owners pack; anything else (strings, negatives) rides JSON.
        owner = draw(u64 | st.integers(-100, -1) | st.text(max_size=8))
        return {"id": rid, "verb": "query", "owner": owner}
    if kind == "query-batch":
        owners = draw(st.lists(u64, max_size=20))
        return {"id": rid, "verb": "query-batch", "owners": owners}
    verb = draw(verb_names if kind == "ext" else st.sampled_from(["stats", "info", "reload", "search"]))
    return {"id": rid, "verb": verb, **draw(json_fields)}


@st.composite
def response_messages(draw):
    """Arbitrary v1-shaped responses, including error replies."""
    rid = draw(u64)
    verb = draw(verb_names)
    if draw(st.booleans()):
        fields = draw(json_fields)
        fields.update(code=draw(st.sampled_from(["bad-request", "wrong-shard", "internal"])))
        return verb, {"id": rid, "ok": False, **fields}
    kind = draw(st.sampled_from(["query", "batch", "json"]))
    if kind == "query":
        return "query", {
            "id": rid,
            "ok": True,
            "owner": draw(u64),
            "providers": draw(st.lists(u32 | st.integers(2**32, 2**40), max_size=12)),
            "epoch": draw(u64),
        }
    if kind == "batch":
        results = {
            str(draw(u64)): draw(st.lists(u32, max_size=6))
            for _ in range(draw(st.integers(0, 4)))
        }
        return "query-batch", {
            "id": rid,
            "ok": True,
            "results": results,
            "epoch": draw(u64),
        }
    return verb, {"id": rid, "ok": True, **draw(json_fields)}


def decode_all(blob: bytes):
    decoder = FrameDecoder()
    frames = decoder.feed(blob)
    assert decoder.error is None, decoder.error
    assert decoder.buffered == 0
    return frames


@given(message=request_messages())
@settings(max_examples=300, deadline=None)
def test_request_encode_decode_is_the_identity(message):
    (frame,) = decode_all(encode_request_v2(message))
    assert frame.protocol == PROTOCOL_V2
    assert frame.message == message


@given(data=response_messages())
@settings(max_examples=300, deadline=None)
def test_response_encode_decode_is_the_identity(data):
    verb, response = data
    (frame,) = decode_all(b"".join(encode_reply_v2(verb, response)))
    assert frame.protocol == PROTOCOL_V2
    assert frame.message == response


@given(messages=st.lists(request_messages(), min_size=1, max_size=5), data=st.data())
@settings(max_examples=100, deadline=None)
def test_decoding_is_invariant_under_tcp_chunking(messages, data):
    blob = b"".join(encode_request_v2(m) for m in messages)
    expected = [f.message for f in decode_all(blob)]
    assert expected == messages

    # Arbitrary split points, drawn by hypothesis.
    n_cuts = data.draw(st.integers(0, min(8, len(blob))))
    cuts = sorted(
        data.draw(
            st.lists(
                st.integers(0, len(blob)), min_size=n_cuts, max_size=n_cuts
            )
        )
    )
    decoder = FrameDecoder()
    frames = []
    for lo, hi in zip([0, *cuts], [*cuts, len(blob)]):
        frames.extend(decoder.feed(blob[lo:hi]))
    assert decoder.error is None and [f.message for f in frames] == messages

    # The worst case: one byte per read().
    decoder = FrameDecoder()
    frames = []
    for i in range(len(blob)):
        frames.extend(decoder.feed(blob[i : i + 1]))
    assert decoder.error is None and [f.message for f in frames] == messages


@given(message=request_messages(), data=st.data())
@settings(max_examples=200, deadline=None)
def test_truncation_is_never_an_error_until_the_bytes_complete(message, data):
    blob = encode_request_v2(message)
    cut = data.draw(st.integers(0, len(blob) - 1))
    decoder = FrameDecoder()
    assert decoder.feed(blob[:cut]) == []
    assert decoder.error is None  # "not yet", never "malformed"
    assert decoder.buffered == cut
    (frame,) = decoder.feed(blob[cut:])
    assert frame.message == message


@given(message=request_messages(), data=st.data())
@settings(max_examples=200, deadline=None)
def test_any_corrupted_payload_byte_is_caught_by_the_crc(message, data):
    blob = bytearray(encode_request_v2(message))
    if len(blob) == HEADER.size:  # empty payload: nothing to corrupt
        return
    offset = data.draw(st.integers(HEADER.size, len(blob) - 1))
    bit = data.draw(st.integers(0, 7))
    blob[offset] ^= 1 << bit
    decoder = FrameDecoder()
    assert decoder.feed(bytes(blob)) == []  # never a silently wrong frame
    assert decoder.error is not None
    assert decoder.error.code == "bad-crc"
    assert decoder.error.protocol == PROTOCOL_V2


@given(chunks=st.lists(st.binary(max_size=64), max_size=8))
@settings(max_examples=300, deadline=None)
def test_feed_never_raises_on_arbitrary_bytes(chunks):
    decoder = FrameDecoder()
    for chunk in chunks:
        frames = decoder.feed(chunk)
        assert isinstance(frames, list)
    # Either still waiting for bytes, cleanly decoded, or typed-poisoned --
    # there is no fourth state.
    assert decoder.error is None or decoder.error.code


@given(
    length=st.integers(MAX_FRAME_BYTES + 1, 2**32 - 1),
    verb_id=st.integers(0, 255),
    rid=u64,
)
@settings(max_examples=100, deadline=None)
def test_oversized_length_is_refused_from_the_header_alone(length, verb_id, rid):
    header = HEADER.pack(MAGIC, 2, verb_id, 0, rid, length, 0)
    decoder = FrameDecoder()
    assert decoder.feed(header) == []
    assert decoder.error is not None
    assert decoder.error.code == "frame-too-large"


@given(length=st.integers(MAX_FRAME_BYTES + 1, 2**32 - 1), tail=st.binary(max_size=16))
@settings(max_examples=100, deadline=None)
def test_oversized_v1_length_is_refused_too(length, tail):
    decoder = FrameDecoder()
    decoder.feed(struct.pack(">I", length) + tail)
    assert decoder.error is not None
    assert decoder.error.protocol == 1 and decoder.error.code == "bad-request"
