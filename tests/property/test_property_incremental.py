"""Property suite: incremental secure maintenance equals a from-scratch run.

Two contracts carry PR 8's tentpole:

* **exactness** -- for any initial universe and any sequence of dirty-set
  updates, chaining ``secure_beta_update`` over a held state produces a β
  vector, selection bits, and opened frequencies *byte-identical* to one
  from-scratch ``secure_beta_calculation`` over the final inputs with the
  held state's persisted decoy coins replayed;
* **intersection closure of republication** -- when a drift-triggered
  refresh lands changed β through the sticky republication path, the
  false-positive part of old∩new rows is exactly the keyed noise set at
  ``min(β_old, β_new)``: intersecting index versions never strips a
  standing noise bit.

The λ-drift closure spec (``selection_closure``) is pinned against an
independent re-derivation of its three monotonicity cases.
"""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import BasicPolicy
from repro.mpc.betacalc import (
    secure_beta_calculation,
    secure_beta_update,
    selection_closure,
)
from repro.updates import BetaRefresher, StickyOwnerStream
from repro.updates.deltalog import OwnerDelta

KEY = b"\x0b" * 16
C = 3


@st.composite
def churn_scenarios(draw):
    """An initial bit universe plus 1-3 rounds of dirty-column rewrites."""
    m = draw(st.integers(min_value=C, max_value=6))  # SecSumShare needs m >= c
    n = draw(st.integers(min_value=4, max_value=14))
    bits = draw(
        st.lists(
            st.lists(st.integers(0, 1), min_size=n, max_size=n),
            min_size=m,
            max_size=m,
        )
    )
    eps = draw(
        st.lists(
            st.sampled_from([0.15, 0.3, 0.6]), min_size=n, max_size=n
        )
    )
    rounds = draw(
        st.lists(
            st.dictionaries(
                st.integers(min_value=0, max_value=n - 1),
                st.sets(st.integers(min_value=0, max_value=m - 1), max_size=m),
                min_size=1,
                max_size=n,
            ),
            min_size=1,
            max_size=3,
        )
    )
    return m, n, bits, eps, rounds


@given(data=churn_scenarios())
@settings(max_examples=25, deadline=None)
def test_incremental_chain_equals_coin_replayed_scratch(data):
    m, n, bits, eps, rounds = data
    policy = BasicPolicy()
    held = secure_beta_calculation(
        bits, eps, policy, C, random.Random(0), engine="batch", keep_state=True
    )
    state = held.state
    for round_no, new_columns in enumerate(rounds):
        dirty = sorted(new_columns)
        for j, members in new_columns.items():
            for i in range(m):
                bits[i][j] = 1 if i in members else 0
        result = secure_beta_update(
            state, bits, dirty, random.Random(round_no + 1)
        )
        # The pass's bookkeeping is sound: closure covers the dirty set,
        # and everything else is within the universe.
        assert set(result.incremental.dirty) <= set(result.incremental.closure)
        assert all(0 <= j < n for j in result.incremental.closure)

    scratch = secure_beta_calculation(
        bits,
        eps,
        policy,
        C,
        random.Random(999),
        engine="batch",
        coins=state.coins,
    )
    assert np.array_equal(state.betas, scratch.betas)
    assert state.publish_as_one == scratch.publish_as_one
    assert state.opened_frequencies == scratch.opened_frequencies
    assert state.lambda_ == scratch.lambda_
    # Group assignment (selected decoys vs opened-frequency identities) is
    # identical: every unselected identity opened the same frequency.
    for j in range(n):
        if not state.publish_as_one[j]:
            true_freq = sum(bits[i][j] for i in range(m))
            assert state.opened_frequencies[j] == true_freq


@given(data=churn_scenarios())
@settings(max_examples=15, deadline=None)
def test_refresh_republication_stays_intersection_closed(data):
    """Republication after an incremental refresh reuses each owner's
    sticky coins, so intersecting pre/post rows reveals only the keyed
    noise floor at the weaker β -- never which standing bits are noise."""
    m, n, bits, eps, rounds = data
    policy = BasicPolicy()
    held = secure_beta_calculation(
        bits, eps, policy, C, random.Random(0), engine="batch", keep_state=True
    )
    state = held.state
    stream = StickyOwnerStream(KEY)
    betas_before = state.betas.copy()
    truth_before = {
        j: {i for i in range(m) if bits[i][j]} for j in range(n)
    }
    rows_before = {
        j: set(
            stream.publish_row(
                j, sorted(truth_before[j]), float(betas_before[j]), m
            ).tolist()
        )
        for j in range(n)
    }

    refresher = BetaRefresher(state, bits, drift_threshold=1e-9)
    for new_columns in rounds:
        refresher.fold(
            {
                j: OwnerDelta(j, providers=set(members))
                for j, members in new_columns.items()
            }
        )
    outcome = refresher.refresh(random.Random(1))

    for j in outcome.republished:
        truth_now = {i for i in range(m) if bits[i][j]}
        row_now = set(
            stream.publish_row(
                j, sorted(truth_now), float(state.betas[j]), m
            ).tolist()
        )
        # Recall: every true bit is published.
        assert truth_now <= row_now
        # β-monotonicity on unchanged truth: coins compared, never redrawn.
        if truth_now == truth_before[j]:
            if state.betas[j] >= betas_before[j]:
                assert rows_before[j] <= row_now
            else:
                assert row_now <= rows_before[j]
        # Intersection closure: the non-true part of old∩new is exactly
        # the deterministic noise set at min(β_old, β_new).
        coins = stream.coins(j, m)
        beta_min = min(float(betas_before[j]), float(state.betas[j]))
        noise_floor = {p for p in range(m) if coins[p] < beta_min}
        truth_union = truth_before[j] | truth_now
        assert (rows_before[j] & row_now) - truth_union == (
            noise_floor - truth_union
        )
    # Owners outside the closure were not republished at all.
    assert set(outcome.republished) <= set(outcome.closure)


@given(
    publish=st.lists(st.integers(0, 1), min_size=1, max_size=40),
    dirty_mask=st.lists(st.booleans(), min_size=1, max_size=40),
    lam_before=st.integers(min_value=0, max_value=1 << 16),
    lam_after=st.integers(min_value=0, max_value=1 << 16),
)
@settings(max_examples=150, deadline=None)
def test_selection_closure_matches_its_spec(
    publish, dirty_mask, lam_before, lam_after
):
    n = len(publish)
    dirty = [j for j in range(n) if j < len(dirty_mask) and dirty_mask[j]]
    closure = selection_closure(dirty, publish, lam_before, lam_after)
    # Sorted, unique, in range, and a superset of the dirty set.
    assert closure == sorted(set(closure))
    assert set(dirty) <= set(closure)
    assert all(0 <= j < n for j in closure)
    # Independent re-derivation of the λ-monotonicity cases.
    expected = set(dirty)
    if lam_after > lam_before:
        expected |= {j for j in range(n) if not publish[j]}
    elif lam_after < lam_before:
        expected |= {j for j in range(n) if publish[j]}
    assert set(closure) == expected
    # λ unchanged: nothing clean can move.
    if lam_before == lam_after:
        assert closure == sorted(set(dirty))
