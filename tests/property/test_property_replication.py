"""Property: a streamed-and-compacted follower is byte-identical.

The replication plane's central claim: a follower that downloads the
leader's sealed segments and folds each completed epoch's segment set with
the same ``compact_snapshot`` merge produces, at every epoch boundary, a
snapshot whose *bytes* equal the leader's -- not merely an equivalent
index.  Hypothesis drives arbitrary multi-epoch histories (upserts,
removes, multiple segments per epoch) through both sides and compares the
files.
"""

import asyncio
import os
import shutil
import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import PPIIndex
from repro.replication import ReplicaApplier
from repro.serving.snapshot import save_snapshot, snapshot_epoch
from repro.updates import DeltaLog, compact_snapshot, seal_segment

KEY = b"\x2a" * 16
N_PROVIDERS = 6
N_OWNERS = 16

NOWHERE = ("127.0.0.1", 1)  # never dialed: compaction is offline


@st.composite
def histories(draw):
    """A multi-epoch update history: ``history[e]`` is epoch ``e``'s list
    of segments, each a list of ops."""
    n_epochs = draw(st.integers(min_value=1, max_value=3))
    owners = st.integers(min_value=0, max_value=N_OWNERS - 1)
    providers = st.sets(
        st.integers(min_value=0, max_value=N_PROVIDERS - 1),
        min_size=1, max_size=4,
    )
    upsert = st.tuples(
        st.just("upsert"), owners, providers,
        st.sampled_from([0.25, 0.5, 0.75]),
    )
    remove = st.tuples(st.just("remove"), owners)
    segment = st.lists(st.one_of(upsert, remove), min_size=1, max_size=3)
    return [
        draw(st.lists(segment, min_size=1, max_size=2))
        for _ in range(n_epochs)
    ]


def base_index() -> PPIIndex:
    i, j = np.meshgrid(np.arange(N_PROVIDERS), np.arange(N_OWNERS), indexing="ij")
    return PPIIndex(((i * 2 + j) % 5 == 0).astype(np.uint8))


def seal_into(seg_dir: str, name: str, base_epoch: int, ops) -> str:
    log_path = os.path.join(seg_dir, f"{name}.log")
    seg_path = os.path.join(seg_dir, name)
    with DeltaLog.create(log_path, N_PROVIDERS, noise_key=KEY) as log:
        for op in ops:
            if op[0] == "upsert":
                log.upsert(op[1], sorted(op[2]), beta=op[3])
            else:
                log.remove(op[1])
        seal_segment(log, seg_path, base_epoch=base_epoch)
    os.unlink(log_path)
    return seg_path


@settings(max_examples=25, deadline=None)
@given(histories())
def test_streamed_follower_compaction_is_byte_identical(history):
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        leader = str(tmp / "leader.npz")
        follower = str(tmp / "follower.npz")
        leader_segs = str(tmp / "leader-segs")
        follower_segs = str(tmp / "follower-segs")
        os.makedirs(leader_segs)
        os.makedirs(follower_segs)
        save_snapshot(base_index(), leader, format_version=3, epoch=0)
        shutil.copyfile(leader, follower)  # the one-time seed transfer

        counter = 0
        for epoch, segments in enumerate(history):
            paths = []
            for ops in segments:
                counter += 1
                paths.append(
                    seal_into(leader_segs, f"{counter:06d}.seg.npz", epoch, ops)
                )
            # "Stream": the follower holds the same sealed bytes.
            for path in paths:
                shutil.copyfile(
                    path, os.path.join(follower_segs, os.path.basename(path))
                )
            # The leader folds this epoch's full segment set.
            compact_snapshot(leader, paths)

        applier = ReplicaApplier(NOWHERE, follower, segment_dir=follower_segs)
        try:
            applier.leader_epoch = len(history)
            taken = applier._maybe_compact(force=True)
            assert taken == len(history)
            assert applier.epoch == snapshot_epoch(leader) == len(history)
            assert applier.overlay_depth() == 0
            with open(leader, "rb") as f:
                leader_bytes = f.read()
            with open(follower, "rb") as f:
                follower_bytes = f.read()
            assert follower_bytes == leader_bytes
        finally:
            asyncio.run(applier.close())
