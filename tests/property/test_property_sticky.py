"""Property-based tests for sticky publication and intersection stability."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.intersection import intersection_attack
from repro.core.model import MembershipMatrix
from repro.core.sticky import StickyPublisher, sticky_publish_matrix


@given(
    provider_id=st.integers(min_value=0, max_value=1000),
    key=st.binary(min_size=1, max_size=32),
    owner_id=st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=150)
def test_coin_deterministic_and_in_unit_interval(provider_id, key, owner_id):
    p = StickyPublisher(provider_id, key)
    c1, c2 = p.coin(owner_id), p.coin(owner_id)
    assert c1 == c2
    assert 0.0 <= c1 < 1.0


@given(
    key=st.binary(min_size=1, max_size=16),
    betas_low=st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=5,
        max_size=20,
    ),
    bump=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
@settings(max_examples=100)
def test_publication_monotone_in_beta(key, betas_low, bump):
    """Raising any beta never removes a published cell (sticky property)."""
    p = StickyPublisher(0, key)
    low = np.array(betas_low)
    high = np.clip(low + bump, 0.0, 1.0)
    row = np.zeros(len(low), dtype=np.uint8)
    out_low = p.publish_row(row, low)
    out_high = p.publish_row(row, high)
    assert np.all(out_high[out_low == 1] == 1)


@given(
    cells=st.sets(
        st.tuples(
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=0, max_value=4),
        ),
        max_size=20,
    ),
    beta=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    versions=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=80)
def test_sticky_intersection_fixed_point(cells, beta, versions):
    """Any number of sticky republications intersect to the first version."""
    matrix = MembershipMatrix(10, 5)
    for pid, oid in cells:
        matrix.set(pid, oid)
    keys = [bytes([p + 1]) for p in range(10)]
    betas = np.full(5, beta)
    published = [
        sticky_publish_matrix(matrix, betas, keys) for _ in range(versions)
    ]
    result = intersection_attack(matrix, published)
    assert np.array_equal(result.intersection, published[0])


@given(
    cells=st.sets(
        st.tuples(
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=0, max_value=4),
        ),
        max_size=20,
    ),
    beta=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
@settings(max_examples=80)
def test_sticky_recall_invariant(cells, beta):
    """Sticky publication preserves the truthful rule like Eq. 2 does."""
    matrix = MembershipMatrix(10, 5)
    for pid, oid in cells:
        matrix.set(pid, oid)
    keys = [bytes([p + 1]) for p in range(10)]
    published = sticky_publish_matrix(matrix, np.full(5, beta), keys)
    dense = matrix.to_dense()
    assert np.all(published[dense == 1] == 1)
