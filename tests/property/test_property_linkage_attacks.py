"""Property-based tests: linkage similarity and attack invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.adversary import AdversaryKnowledge
from repro.attacks.primary import primary_attack_confidences
from repro.core.model import MembershipMatrix
from repro.linkage.bloom import BloomEncoder, dice_coefficient

names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=20,
)


@given(a=names, b=names, key=st.binary(min_size=1, max_size=8))
@settings(max_examples=150)
def test_dice_symmetric_and_bounded(a, b, key):
    enc = BloomEncoder(key=key)
    fa, fb = enc.encode(a), enc.encode(b)
    d_ab = dice_coefficient(fa, fb)
    d_ba = dice_coefficient(fb, fa)
    assert d_ab == d_ba
    assert 0.0 <= d_ab <= 1.0


@given(a=names, key=st.binary(min_size=1, max_size=8))
@settings(max_examples=100)
def test_dice_identity(a, key):
    enc = BloomEncoder(key=key)
    assert dice_coefficient(enc.encode(a), enc.encode(a)) == 1.0


@given(
    cells=st.sets(
        st.tuples(
            st.integers(min_value=0, max_value=11),
            st.integers(min_value=0, max_value=5),
        ),
        max_size=40,
    ),
    noise=st.sets(
        st.tuples(
            st.integers(min_value=0, max_value=11),
            st.integers(min_value=0, max_value=5),
        ),
        max_size=40,
    ),
)
@settings(max_examples=150)
def test_primary_confidence_bounds(cells, noise):
    """Exact primary-attack confidence is always a valid probability, is 1.0
    on a noise-free index and decreases (weakly) as noise is added."""
    matrix = MembershipMatrix(12, 6)
    for pid, oid in cells:
        matrix.set(pid, oid)
    clean = matrix.to_dense()
    noisy = clean.copy()
    for pid, oid in noise:
        noisy[pid, oid] = 1

    conf_clean = primary_attack_confidences(
        matrix, AdversaryKnowledge(published=clean)
    )
    conf_noisy = primary_attack_confidences(
        matrix, AdversaryKnowledge(published=noisy)
    )
    assert np.all((conf_clean >= 0) & (conf_clean <= 1))
    assert np.all((conf_noisy >= 0) & (conf_noisy <= 1))
    for j in range(6):
        if matrix.frequency(j) > 0:
            assert conf_clean[j] == 1.0
            assert conf_noisy[j] <= conf_clean[j] + 1e-12


@given(
    freqs=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=8),
    eps=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=100)
def test_publication_confidence_respects_complement(freqs, eps, seed):
    """For any published index, attacker confidence + fp rate == 1 on every
    attackable owner (the paper's core identity)."""
    from repro.core.policies import BasicPolicy
    from repro.core.privacy import published_false_positive_rates
    from repro.core.publication import publish_matrix
    from repro.datasets.synthetic import exact_frequency_matrix

    m = 15
    rng = np.random.default_rng(seed)
    matrix = exact_frequency_matrix(m, freqs, rng)
    sigmas = np.array([matrix.sigma(j) for j in range(len(freqs))])
    betas = BasicPolicy().beta_vector(sigmas, np.full(len(freqs), eps), m)
    published = publish_matrix(matrix, betas, rng)
    fp = published_false_positive_rates(matrix, published)
    conf = primary_attack_confidences(
        matrix, AdversaryKnowledge(published=published)
    )
    counts = published.sum(axis=0)
    for j in range(len(freqs)):
        if counts[j] > 0:
            assert conf[j] + fp[j] == 1.0
