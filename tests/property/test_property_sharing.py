"""Property-based tests (hypothesis) for the secret-sharing layer."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc.additive import AdditiveSharing
from repro.mpc.field import Zq, default_modulus_for_sum
from repro.mpc.secsum import SecSumShare
from repro.mpc.shamir import ShamirSharing


@given(
    secret=st.integers(min_value=0, max_value=10**9),
    count=st.integers(min_value=2, max_value=8),
    q_exp=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=150)
def test_additive_roundtrip(secret, count, q_exp, seed):
    """reconstruct(share(v)) == v mod q for any parameters."""
    ring = Zq(1 << q_exp)
    scheme = AdditiveSharing(ring, count)
    shares = scheme.share(secret, random.Random(seed))
    assert scheme.reconstruct(shares) == secret % ring.q


@given(
    a=st.integers(min_value=0, max_value=10**6),
    b=st.integers(min_value=0, max_value=10**6),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=100)
def test_additive_homomorphism(a, b, seed):
    ring = Zq(1 << 20)
    scheme = AdditiveSharing(ring, 3)
    rng = random.Random(seed)
    sa, sb = scheme.share(a, rng), scheme.share(b, rng)
    assert scheme.reconstruct(scheme.add(sa, sb)) == (a + b) % ring.q


@given(
    secret=st.integers(min_value=0, max_value=10**12),
    threshold=st.integers(min_value=1, max_value=5),
    extra=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=100)
def test_shamir_roundtrip_any_threshold_subset(secret, threshold, extra, seed):
    parties = threshold + extra
    scheme = ShamirSharing(threshold, parties)
    rng = random.Random(seed)
    shares = scheme.share(secret, rng)
    # Pick a random threshold-sized subset.
    subset = rng.sample(shares, threshold)
    assert scheme.reconstruct(subset) == secret


@given(
    bits=st.lists(
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=5),
        min_size=3,
        max_size=10,
    ),
    c=st.integers(min_value=2, max_value=3),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=100)
def test_secsum_always_sums_correctly(bits, c, seed):
    """SecSumShare invariant 3 (DESIGN.md): coordinator shares always sum to
    the per-identity column totals, for any m >= c and any inputs."""
    n = min(len(row) for row in bits)
    inputs = [row[:n] for row in bits]
    m = len(inputs)
    ring = Zq(default_modulus_for_sum(m))
    result = SecSumShare(m, c, ring, random.Random(seed)).run(inputs)
    for j in range(n):
        assert result.reconstruct(ring, j) == sum(row[j] for row in inputs)
