"""Property tests for the dealerless offline subsystem.

Three contracts, over randomized shapes:

* every lane of every produced word reconstructs to ``c == a & b``, for
  both triple kernels and any party count / lane mask;
* share marginals are unbiased -- no party's share column leaks the
  reconstructed secret statistically;
* triple provenance never shows in results: a factory-fed secure β
  calculation is byte-identical to the dealer-fed run over the same
  inputs, seeds, and engine.
"""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import BasicPolicy
from repro.mpc.betacalc import secure_beta_calculation
from repro.mpc.offline.generator import DealerlessTripleGenerator


def _reconstruct(block):
    a = np.bitwise_xor.reduce(block.a, axis=1)
    b = np.bitwise_xor.reduce(block.b, axis=1)
    c = np.bitwise_xor.reduce(block.c, axis=1)
    return a, b, c


@given(
    parties=st.integers(min_value=2, max_value=6),
    words=st.integers(min_value=1, max_value=48),
    lanes=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**32),
    kernel=st.sampled_from(["fast", "hashed"]),
)
@settings(max_examples=60, deadline=None)
def test_every_lane_is_a_beaver_triple(parties, words, lanes, seed, kernel):
    """c == a & b holds on every live lane; dead lanes are all-zero."""
    gen = DealerlessTripleGenerator(parties, seed=seed, kernel=kernel)
    block = gen.generate(words, lanes=lanes)
    a, b, c = _reconstruct(block)
    live = np.uint64(((1 << lanes) - 1) & 0xFFFFFFFFFFFFFFFF)
    assert np.array_equal(c, a & b)
    for arr in (block.a, block.b, block.c):
        assert not np.any(arr & ~live)
    assert block.triples == words * lanes


@given(
    parties=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**32),
)
@settings(max_examples=15, deadline=None)
def test_share_marginals_are_unbiased(parties, seed):
    """Each party's share column is ~uniform: bit density in [0.45, 0.55].

    512 words = 32768 bits per column, so a fair coin lands inside the
    band with overwhelming margin (the bound sits ~18 sigma out).
    """
    gen = DealerlessTripleGenerator(parties, seed=seed)
    block = gen.generate(512)
    n_bits = 512 * 64
    for arr in (block.a, block.b, block.c):
        for p in range(parties):
            col = np.ascontiguousarray(arr[:, p])
            ones = int(np.unpackbits(col.view(np.uint8)).sum())
            assert 0.45 < ones / n_bits < 0.55
    # The reconstructed AND output is biased toward 0 (~25% ones) -- that
    # bias must live only in the *joint* distribution, never per share.
    _, _, c = _reconstruct(block)
    c_ones = int(np.unpackbits(c.view(np.uint8)).sum())
    assert 0.20 < c_ones / n_bits < 0.30


@given(
    m=st.integers(min_value=3, max_value=10),
    n_ids=st.integers(min_value=4, max_value=20),
    seed=st.integers(min_value=0, max_value=10**6),
    engine=st.sampled_from(["scalar", "batch"]),
)
@settings(max_examples=10, deadline=None)
def test_factory_fed_equals_dealer_fed(m, n_ids, seed, engine):
    """Triple provenance is invisible: identical β, bits, and rounds."""
    rng = random.Random(seed)
    bits = [[rng.randint(0, 1) for _ in range(n_ids)] for _ in range(m)]
    epsilons = [rng.random() for _ in range(n_ids)]

    def run(**kwargs):
        return secure_beta_calculation(
            bits,
            epsilons,
            BasicPolicy(),
            c=3,
            rng=random.Random(seed + 1),
            engine=engine,
            **kwargs,
        )

    dealer = run()
    factory = run(triple_source="factory", offline_producers=1)
    assert np.array_equal(dealer.betas, factory.betas)
    assert dealer.publish_as_one == factory.publish_as_one
    assert dealer.lambda_ == factory.lambda_
    assert dealer.count_result.stats == factory.count_result.stats
    assert dealer.selection_result.stats == factory.selection_result.stats
    assert dealer.phases is None and factory.phases is not None
    assert factory.phases.triple_words_consumed > 0
