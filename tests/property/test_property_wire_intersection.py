"""Property: over-the-wire intersection equals the keyed-noise floor.

For sticky publication the noise set ``N(owner)`` is a pure function of the
owner and the key -- never of the epoch.  So for ANY churn history
``T_0, T_1, ..., T_k`` of an owner's true provider sets, the adversary who
harvests every republished row **over real sockets** and intersects them
must land exactly on

    ∩_e (T_e ∪ N)  ==  N ∪ ∩_e T_e

-- the keyed-noise floor.  Nothing more (sticky coins never flap, so no
noise bit ever dies) and nothing less (recall: true and noise bits always
survive every version they appear in).  Hypothesis drives arbitrary churn
histories through a live :class:`PPIServer`, epoch by epoch, and checks
the identity per owner on what actually came back over TCP.
"""

import asyncio

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.postings import PostingsIndex
from repro.redteam import LongitudinalIntersectionAttacker
from repro.redteam.observations import LiveObserver, ObservationLog
from repro.serving.client import LocatorClient, RetryPolicy
from repro.serving.server import PPIServer
from repro.updates.noise import StickyOwnerStream

N_PROVIDERS = 10
BETAS = [0.1, 0.3, 0.5]


@st.composite
def churn_histories(draw):
    n_owners = draw(st.integers(min_value=1, max_value=3))
    epochs = draw(st.integers(min_value=2, max_value=4))
    key = draw(st.binary(min_size=1, max_size=8))
    betas = [
        draw(st.sampled_from(BETAS)) for _ in range(n_owners)
    ]
    history = [
        [
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=N_PROVIDERS - 1),
                    max_size=4,
                )
            )
            for _ in range(n_owners)
        ]
        for _ in range(epochs)
    ]
    return key, betas, history


def publish_epoch(stream, betas, truth):
    dense = np.zeros((N_PROVIDERS, len(truth)), dtype=np.uint8)
    for owner, true in enumerate(truth):
        row = stream.publish_row(
            owner, sorted(true), betas[owner], N_PROVIDERS
        )
        dense[row, owner] = 1
    return dense


async def harvest_campaign(stream, betas, history):
    """Serve every epoch of the history for real; return the wire log."""
    log = ObservationLog()
    server = await PPIServer(
        PostingsIndex.from_dense(publish_epoch(stream, betas, history[0]))
    ).start()
    client = LocatorClient(
        servers=[server.address],
        cache_size=0,
        retry=RetryPolicy(max_retries=2, timeout_s=5.0),
    )
    observer = LiveObserver(client, log)
    try:
        await observer.harvest(range(len(history[0])))
        for epoch, truth in enumerate(history[1:], start=1):
            server.swap_index(
                PostingsIndex.from_dense(publish_epoch(stream, betas, truth)),
                epoch=epoch,
            )
            await observer.harvest(range(len(truth)))
    finally:
        await client.close()
        await server.stop()
    return log


@given(churn_histories())
@settings(max_examples=12, deadline=None)
def test_wire_intersection_is_the_keyed_noise_floor(case):
    key, betas, history = case
    stream = StickyOwnerStream(key)
    log = asyncio.run(harvest_campaign(stream, betas, history))

    assert log.epochs() == list(range(len(history)))
    survivors = LongitudinalIntersectionAttacker(log).survivors()
    for owner, beta in enumerate(betas):
        noise = {
            int(p)
            for p in np.nonzero(
                stream.coins(owner, N_PROVIDERS) < beta
            )[0]
        }
        truth_floor = set.intersection(
            *(set(truth[owner]) for truth in history)
        )
        assert survivors[owner] == frozenset(noise | truth_floor), (
            f"owner {owner}: wire intersection diverged from the "
            f"keyed-noise floor under history {history}"
        )
