"""Property tests for the serving wire protocol (framing layer).

The framing invariants the whole runtime leans on:

* any JSON-object message survives encode -> read_frame verbatim;
* a frame truncated at *any* byte boundary is a clean
  :class:`ConnectionClosed`, never a hang or a garbage message;
* announced lengths above the 16 MiB cap are refused before allocation;
* arbitrary garbage bytes either parse to a dict or raise
  :class:`ProtocolError` -- ``read_frame`` never returns a non-dict and
  never dies with an unexpected exception type.
"""

import asyncio
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.protocol import (
    MAX_FRAME_BYTES,
    ConnectionClosed,
    FrameTooLarge,
    ProtocolError,
    encode_frame,
    read_frame,
)

# JSON-representable values; keys must be strings for a JSON object.
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=40),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=20,
)
json_objects = st.dictionaries(st.text(max_size=10), json_values, max_size=6)


def read_from_bytes(data: bytes, eof: bool = True):
    """Run ``read_frame`` against a fed-and-closed in-memory stream."""

    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        if eof:
            reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(main())


class TestRoundTrip:
    @given(message=json_objects)
    @settings(max_examples=60, deadline=None)
    def test_encode_then_read_is_identity(self, message):
        assert read_from_bytes(encode_frame(message)) == message

    @given(first=json_objects, second=json_objects)
    @settings(max_examples=20, deadline=None)
    def test_frames_are_self_delimiting(self, first, second):
        data = encode_frame(first) + encode_frame(second)

        async def main():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            return await read_frame(reader), await read_frame(reader)

        assert asyncio.run(main()) == (first, second)


class TestTruncation:
    @given(message=json_objects, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_truncation_is_connection_closed(self, message, data):
        frame = encode_frame(message)
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        with pytest.raises(ConnectionClosed):
            read_from_bytes(frame[:cut])

    def test_clean_eof_between_frames(self):
        with pytest.raises(ConnectionClosed):
            read_from_bytes(b"")


class TestOversize:
    @given(extra=st.integers(min_value=1, max_value=2**31 - 1 - MAX_FRAME_BYTES))
    @settings(max_examples=30, deadline=None)
    def test_announced_oversize_refused_before_allocation(self, extra):
        header = struct.pack(">I", MAX_FRAME_BYTES + extra)
        # No body bytes follow: the cap must trip on the header alone.
        with pytest.raises(FrameTooLarge):
            read_from_bytes(header, eof=False)

    def test_encode_refuses_oversized_payload(self):
        with pytest.raises(FrameTooLarge):
            encode_frame({"blob": "x" * MAX_FRAME_BYTES})

    def test_exactly_at_cap_is_announced_ok(self):
        # A frame announcing exactly MAX_FRAME_BYTES passes the header
        # check (then fails as truncated -- we never feed the body).
        with pytest.raises(ConnectionClosed):
            read_from_bytes(struct.pack(">I", MAX_FRAME_BYTES))


class TestGarbage:
    @given(garbage=st.binary(min_size=0, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_garbage_body_never_yields_a_non_dict(self, garbage):
        framed = struct.pack(">I", len(garbage)) + garbage
        try:
            result = read_from_bytes(framed)
        except ProtocolError:
            return  # rejected cleanly (includes ConnectionClosed subclass)
        assert isinstance(result, dict)

    @given(prefix=st.binary(min_size=4, max_size=64), message=json_objects)
    @settings(max_examples=40, deadline=None)
    def test_garbage_prefix_cannot_smuggle_a_frame(self, prefix, message):
        """Whatever the prefix decodes to, it is consumed as one frame:
        either it errors, or it yields some dict -- never the trailing
        legitimate frame."""
        (announced,) = struct.unpack(">I", prefix[:4])
        data = prefix + encode_frame(message)
        if announced > MAX_FRAME_BYTES:
            with pytest.raises(FrameTooLarge):
                read_from_bytes(data)
            return
        try:
            result = read_from_bytes(data)
        except ProtocolError:
            return
        assert isinstance(result, dict)
