"""Property suite: the live-update pipeline equals a from-scratch rebuild.

The contract that makes segments + compaction safe to serve is exact
equivalence: for any base index and any sequence of delta operations,
``OverlayIndex(base, segments)`` must answer every owner exactly as a
from-scratch republication with the same sticky streams would -- and the
compacted snapshot must answer identically to the overlay it replaced.

The sticky-noise properties (prefix-stable coins, β-monotone rows, and
republication intersections that reveal only true-bit changes) are what
the paper's multi-version intersection analysis needs from the update
path; they are asserted directly here.
"""

import os
import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import PPIIndex
from repro.serving.snapshot import load_postings, save_snapshot, snapshot_epoch
from repro.updates import (
    DeltaLog,
    OverlayIndex,
    StickyOwnerStream,
    compact_snapshot,
    load_segment,
    seal_segment,
)

KEY = b"\x07" * 16


@st.composite
def update_scenarios(draw):
    """A published base matrix plus 1-3 segments' worth of delta ops."""
    m = draw(st.integers(min_value=2, max_value=8))
    n = draw(st.integers(min_value=1, max_value=12))
    bits = draw(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=1), min_size=n, max_size=n),
            min_size=m,
            max_size=m,
        )
    )
    matrix = np.array(bits, dtype=np.uint8).reshape(m, n)
    max_owner = n + draw(st.integers(min_value=0, max_value=3))

    owner_ids = st.integers(min_value=0, max_value=max_owner - 1)
    provider_sets = st.sets(
        st.integers(min_value=0, max_value=m - 1), max_size=m
    )
    betas = st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0])
    ops = st.one_of(
        st.tuples(st.just("upsert"), owner_ids, provider_sets, betas),
        st.tuples(st.just("remove"), owner_ids),
        st.tuples(st.just("flip"), owner_ids, provider_sets, provider_sets, betas),
    )
    segments = draw(
        st.lists(
            st.lists(ops, min_size=1, max_size=6), min_size=1, max_size=3
        )
    )
    return matrix, segments


def _apply_ops(log: DeltaLog, ops) -> None:
    for op in ops:
        if op[0] == "upsert":
            log.upsert(op[1], sorted(op[2]), beta=op[3])
        elif op[0] == "remove":
            log.remove(op[1])
        else:
            log.flip(op[1], sorted(op[2]), sorted(op[3]), beta=op[4])


def _expected_rows(base: PPIIndex, states, n_owners: int) -> dict:
    """From-scratch republication: newest delta wins, sticky streams fixed."""
    final = {}
    for state in states:  # oldest -> newest
        final.update(state)
    stream = StickyOwnerStream(KEY)
    expected = {}
    for owner in range(n_owners):
        if owner in final:
            delta = final[owner]
            expected[owner] = (
                []
                if delta.removed
                else stream.publish_row(
                    owner, sorted(delta.providers), delta.beta, base.n_providers
                ).tolist()
            )
        elif owner < base.n_owners:
            expected[owner] = base.query(owner)
        else:
            expected[owner] = []  # id gap: enrolled after this owner
    return expected


@given(data=update_scenarios())
@settings(max_examples=60, deadline=None)
def test_overlay_and_compaction_equal_a_from_scratch_rebuild(data):
    matrix, per_segment_ops = data
    base = PPIIndex(matrix)
    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "base.npz")
        save_snapshot(base, base_path, format_version=3, epoch=0)

        states, segment_paths = [], []
        for k, ops in enumerate(per_segment_ops):
            log_path = os.path.join(tmp, f"{k}.log")
            with DeltaLog.create(
                log_path, base.n_providers, noise_key=KEY
            ) as log:
                _apply_ops(log, ops)
                states.append(log.state())
                seg_path = os.path.join(tmp, f"{k:04d}.seg.npz")
                seal_segment(log, seg_path, base_epoch=0)
                segment_paths.append(seg_path)

        overlay = OverlayIndex(base, [load_segment(p) for p in segment_paths])
        expected = _expected_rows(base, states, overlay.n_owners)

        # 1. The overlay answers every owner exactly as the rebuild would.
        for owner in range(overlay.n_owners):
            assert overlay.query(owner) == expected[owner]
            assert overlay.result_size(owner) == len(expected[owner])

        # 2. Recall is 100%: every surviving true bit is published.
        final = {}
        for state in states:
            final.update(state)
        for owner, delta in final.items():
            if not delta.removed:
                assert delta.providers <= set(overlay.query(owner))

        # 3. The materialized merge is row-identical to the overlay.
        merged = overlay.to_postings()
        assert merged.n_owners == overlay.n_owners
        for owner in range(overlay.n_owners):
            assert merged.query(owner) == expected[owner]

        # 4. So is the compacted snapshot, at the bumped epoch.
        out_path = os.path.join(tmp, "compacted.npz")
        compact_snapshot(base_path, segment_paths, out_path)
        assert snapshot_epoch(out_path) == 1
        compacted = load_postings(out_path)
        for owner in range(overlay.n_owners):
            assert compacted.query(owner) == expected[owner]


@given(
    owner=st.integers(min_value=0, max_value=2**32),
    n=st.integers(min_value=0, max_value=64),
    k=st.integers(min_value=0, max_value=64),
)
@settings(max_examples=100, deadline=None)
def test_coins_are_prefix_stable(owner, n, k):
    """Growing the provider universe never redraws earlier coins."""
    stream = StickyOwnerStream(KEY)
    lo, hi = sorted((n, k))
    assert np.array_equal(stream.coins(owner, hi)[:lo], stream.coins(owner, lo))


@st.composite
def republications(draw):
    m = draw(st.integers(min_value=1, max_value=16))
    truths = draw(
        st.lists(
            st.sets(st.integers(min_value=0, max_value=m - 1), max_size=m),
            min_size=2,
            max_size=4,
        )
    )
    beta = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    owner = draw(st.integers(min_value=0, max_value=1000))
    return m, truths, beta, owner


@given(data=republications())
@settings(max_examples=100, deadline=None)
def test_republication_intersection_reveals_only_true_bits(data):
    """The paper's multi-version attack surface, on the update path: the
    false-positive set is a deterministic function of (key, owner, β), so
    intersecting any republications of the same owner yields exactly the
    publication of the intersected truths -- noise never erodes."""
    m, truths, beta, owner = data
    stream = StickyOwnerStream(KEY)
    published = [
        set(stream.publish_row(owner, sorted(t), beta, m).tolist())
        for t in truths
    ]
    intersected_truth = set.intersection(*map(set, truths))
    expected = set(
        stream.publish_row(owner, sorted(intersected_truth), beta, m).tolist()
    )
    assert set.intersection(*published) == expected
    # And each publication individually achieves 100% recall.
    for truth, pub in zip(truths, published):
        assert truth <= pub


@given(
    beta_lo=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    beta_hi=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    owner=st.integers(min_value=0, max_value=1000),
    m=st.integers(min_value=1, max_value=32),
)
@settings(max_examples=100, deadline=None)
def test_rows_are_monotone_in_beta(beta_lo, beta_hi, owner, m):
    """Coins are compared, never redrawn: raising β only adds positives."""
    if beta_lo > beta_hi:
        beta_lo, beta_hi = beta_hi, beta_lo
    stream = StickyOwnerStream(KEY)
    lo = set(stream.publish_row(owner, [], beta_lo, m).tolist())
    hi = set(stream.publish_row(owner, [], beta_hi, m).tolist())
    assert lo <= hi
